"""Extension bench: batching strategies (§3.2 motivation, quantified).

Shapes: fragmenting a logical batch into per-item requests inflates
completion time, and the penalty is far larger for reconfiguration-
dominated benchmarks (imgc, 18 ms tasks) than compute-dominated ones
(optical flow, 510 ms tasks).
"""

from __future__ import annotations

from repro.experiments import ext_batching

from conftest import emit


def test_ext_batching_strategies(benchmark):
    result = benchmark.pedantic(ext_batching.run, rounds=1, iterations=1)
    for name in result.benchmarks:
        assert result.fragmentation_penalty(name) > 1.0
    assert result.fragmentation_penalty("imgc") > result.fragmentation_penalty(
        "of"
    )
    emit(ext_batching.format_result(result))
