"""Extension bench: scale-out across a fleet of virtualized FPGAs (§1).

Shape: mean response improves with fleet size (sub-linearly), and
least-loaded dispatch is at least as good as round-robin at the largest
fleet because the workload mixes second- and kilosecond-scale apps.
"""

from __future__ import annotations

from repro.experiments import ext_scaleout

from conftest import emit


def test_ext_scaleout(benchmark, settings):
    result = benchmark.pedantic(
        lambda: ext_scaleout.run(settings=settings),
        rounds=1, iterations=1,
    )
    biggest = max(
        devices for devices, _ in result.mean_response_ms
    )
    for dispatch in ("round_robin", "least_loaded"):
        assert result.speedup(biggest, dispatch) > 1.0
    emit(ext_scaleout.format_result(result))
