"""Cluster bench: the fleet tier's sharded simulation and its guarantees.

Measures the 1 -> N board scaling sweep (`repro.experiments.ext_cluster`)
and proves the two determinism contracts on every run:

* a sharded (``--jobs N``) cluster run merges byte-identically to the
  serial run (down to the snapshot digest);
* a single-board fleet reproduces the bare hypervisor's trace
  byte-for-byte.

Standalone usage::

    # CI smoke: determinism contracts at reduced scale
    python benchmarks/bench_cluster.py --fast

    # deterministic sweep dump (CI diffs --jobs 1 vs --jobs 4 output)
    python benchmarks/bench_cluster.py --out cluster.json --jobs 4

    # timing run: appends a "cluster" entry to BENCH_sweep.json
    python benchmarks/bench_cluster.py --bench [--jobs N]

``--bench`` appends one ``"bench": "cluster"`` entry to the shared
``BENCH_sweep.json`` history (repo root) alongside the sweep harness's
own trajectory.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from repro.experiments.runner import ExperimentSettings

#: Shared trajectory file (discriminated by the per-entry "bench" field).
DEFAULT_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
)

#: Scale of the standalone sweeps (kept small: every cell is a fleet).
FAST_FLEETS = (1, 2, 4)
FULL_FLEETS = (1, 2, 4, 8, 16)
BENCH_PLACEMENTS = ("round_robin", "least_loaded", "power_aware")


def cluster_payload(
    settings: ExperimentSettings,
    jobs: Optional[int],
    fleet_sizes=FAST_FLEETS,
) -> Dict:
    """Deterministic fleet-sweep JSON; byte-identical at any ``jobs``."""
    from repro.experiments import ext_cluster

    result = ext_cluster.run(
        settings=settings,
        jobs=jobs,
        fleet_sizes=fleet_sizes,
        placements=BENCH_PLACEMENTS,
    )
    return {
        "sweep": "fleet sizes x placement policies",
        "scheduler": result.scheduler,
        "rate": result.rate,
        "mix": list(result.mix),
        "fleet_sizes": list(result.fleet_sizes),
        "placements": list(result.placements),
        "throughput_items_per_s": {
            f"{size}/{placement}": result.throughput[(size, placement)]
            for size in result.fleet_sizes
            for placement in result.placements
        },
        "p99_ms": {
            f"{size}/{placement}": result.p99_ms[(size, placement)]
            for size in result.fleet_sizes
            for placement in result.placements
        },
        "snapshot_digests": {
            f"{size}/{placement}": result.digests[(size, placement)]
            for size in result.fleet_sizes
            for placement in result.placements
        },
    }


def render_payload(payload: Dict) -> str:
    """Canonical JSON text (byte-identical across identical sweeps)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def check_determinism(num_events: int = 8, jobs: int = 4) -> None:
    """The two cluster determinism contracts, asserted at small scale."""
    from repro.cluster import (
        Cluster,
        ZCU106_BOARD,
        board_label,
        fleet_profiles,
        trace_digest,
    )
    from repro.hypervisor.hypervisor import Hypervisor
    from repro.schedulers.registry import make_scheduler
    from repro.workload.generator import EventGenerator

    events = EventGenerator(23).sequence(
        num_events=num_events, label="bench"
    )

    def fleet_run(jobs_value):
        fleet = Cluster(fleet_profiles(4), placement="least_loaded", seed=2)
        fleet.submit_sequence(events)
        return fleet.run(jobs=jobs_value)

    serial = fleet_run(1)
    sharded = fleet_run(jobs)
    assert serial.to_dict() == sharded.to_dict(), (
        "sharded cluster run diverged from serial"
    )
    assert serial.snapshot_digest() == sharded.snapshot_digest()

    single = Cluster((ZCU106_BOARD,))
    single.submit_sequence(events)
    report = single.run(jobs=1)
    bare = Hypervisor(
        make_scheduler("nimblock"), config=ZCU106_BOARD.system_config()
    )
    for spec in events:
        bare.submit(spec.to_request())
    bare.run()
    assert report.boards[0]["trace_digest"] == trace_digest(
        bare.trace, board_label(0)
    ), "single-board fleet diverged from the bare hypervisor"


# -- pytest-benchmark entry point -------------------------------------------
def test_cluster_scaling(benchmark, settings):
    from repro.experiments import ext_cluster

    from conftest import emit

    result = benchmark.pedantic(
        lambda: ext_cluster.run(
            settings=settings,
            fleet_sizes=FAST_FLEETS,
            placements=BENCH_PLACEMENTS,
        ),
        rounds=1, iterations=1,
    )
    biggest = result.fleet_sizes[-1]
    for placement in result.placements:
        assert result.scaling(placement)[-1] > 1.0, (
            f"{placement}: no throughput scaling at {biggest} boards"
        )
    check_determinism()
    emit(ext_cluster.format_result(result))


# -- standalone modes -------------------------------------------------------
def _bench(settings: ExperimentSettings, jobs: int, out: Path) -> int:
    print(
        f"cluster bench: fleets {FULL_FLEETS}, "
        f"{len(BENCH_PLACEMENTS)} placements, "
        f"{settings.num_events} events/board, jobs={jobs}"
    )
    start = time.perf_counter()
    serial = cluster_payload(settings, jobs=1, fleet_sizes=FULL_FLEETS)
    serial_s = time.perf_counter() - start
    print(f"serial cold:  {serial_s:8.2f}s")
    start = time.perf_counter()
    sharded = cluster_payload(settings, jobs=jobs, fleet_sizes=FULL_FLEETS)
    sharded_s = time.perf_counter() - start
    print(f"sharded cold: {sharded_s:8.2f}s")
    identical = render_payload(serial) == render_payload(sharded)
    assert identical, "sharded cluster sweep diverged from serial"
    check_determinism()

    entry = {
        "bench": "cluster",
        "recorded": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "scale": {
            "fleet_sizes": list(FULL_FLEETS),
            "placements": len(BENCH_PLACEMENTS),
            "events_per_board": settings.num_events,
        },
        "jobs": jobs,
        "cpus_available": len(os.sched_getaffinity(0)),
        "serial_cold_s": round(serial_s, 3),
        "sharded_cold_s": round(sharded_s, 3),
        "sharded_speedup": round(serial_s / sharded_s, 3),
        "sharded_matches_serial": identical,
        "top_throughput_items_per_s": max(
            serial["throughput_items_per_s"].values()
        ),
    }
    if out.exists():
        trajectory = json.loads(out.read_text(encoding="utf-8"))
    else:
        trajectory = {"bench": "sweep", "unit": "seconds", "history": []}
    trajectory["history"].append(entry)
    out.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\nrecorded trajectory entry -> {out}")
    print(f"sharded speedup {entry['sharded_speedup']}x, "
          f"matches serial: {identical}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Cluster bench: sharded fleet simulation."
    )
    parser.add_argument("--events", type=int, default=6,
                        help="events per board (default: 6)")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the deterministic fleet-sweep JSON here and exit",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help="time serial/sharded sweeps and append to BENCH_sweep.json",
    )
    parser.add_argument(
        "--bench-out", default=str(DEFAULT_BENCH_PATH),
        help="trajectory file for --bench (default: BENCH_sweep.json)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="CI smoke: assert the determinism contracts and exit",
    )
    args = parser.parse_args(argv)

    from repro.experiments.parallel import effective_jobs

    jobs = effective_jobs(args.jobs)
    settings = ExperimentSettings(
        num_sequences=1, num_events=args.events
    )
    if args.fast:
        started = time.perf_counter()
        check_determinism(num_events=args.events, jobs=max(jobs, 2))
        print(
            "cluster smoke: sharded==serial and single-board==bare "
            f"hypervisor held ({time.perf_counter() - started:.1f}s)"
        )
        return 0
    if args.bench:
        return _bench(settings, jobs=max(jobs, 2), out=Path(args.bench_out))
    if args.out:
        payload = cluster_payload(settings, jobs=jobs)
        Path(args.out).write_text(
            render_payload(payload), encoding="utf-8"
        )
        print(f"{args.out}: fleets {payload['fleet_sizes']}, jobs={jobs}")
        return 0
    parser.error("choose a mode: --fast, --out FILE or --bench")
    return 2


if __name__ == "__main__":
    sys.exit(main())
