"""Regenerate Figure 2: the three sharing modes as executable timelines.

Shape: makespan strictly improves from temporal multiplexing to
task-parallel sharing to fine-grained pipelined sharing.
"""

from __future__ import annotations

from repro.experiments import fig2_modes

from conftest import emit


def test_fig2_sharing_modes(benchmark):
    result = benchmark(fig2_modes.run)
    labels = [label for label, _, _ in fig2_modes.MODES]
    makespans = [result.makespan(label) for label in labels]
    assert makespans[0] > makespans[1] > makespans[2], (
        "sharing modes must strictly improve makespan"
    )
    emit(fig2_modes.format_result(result))
