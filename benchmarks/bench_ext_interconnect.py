"""Extension bench: PS-routed vs NoC inter-slot transfers (paper §7).

Shape: explicit PS routing inflates short-benchmark responses; the NoC
recovers nearly all of the penalty.
"""

from __future__ import annotations

from repro.experiments import ext_interconnect

from conftest import emit


def test_ext_interconnect(benchmark, settings):
    result = benchmark.pedantic(
        lambda: ext_interconnect.run(settings=settings),
        rounds=1, iterations=1,
    )
    assert result.overhead_vs_free("ps_routed") >= 1.0
    assert result.overhead_vs_free("noc") <= result.overhead_vs_free(
        "ps_routed"
    )
    emit(ext_interconnect.format_result(result))
