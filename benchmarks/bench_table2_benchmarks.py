"""Regenerate Table 2: benchmark task/edge counts (must match the paper)."""

from __future__ import annotations

from repro.experiments import table2

from conftest import emit


def test_table2_benchmark_sizes(benchmark):
    result = benchmark(table2.run)
    assert result.all_match
    emit(table2.format_result(result))
