#!/usr/bin/env python3
"""Invariant-checker bench: what paranoia costs, and that "off" is free.

Three claims are pinned here:

* **Disabled is free.** A hypervisor built without a checker executes no
  invariant code — the checker rides the existing ``observer=`` hook, so
  the off path is the same ``if observer is not None`` guards the
  observability layer already pays for, and no ``repro.invariants``
  module is imported on a plain run (checked in a subprocess).
* **Checking never perturbs.** A checked run produces the byte-identical
  trace digest of the plain run: the checker only reads state.
* **Enabled is bounded.** The full suite (slot exclusion, port
  serialization, allocation discipline, token conservation, queue
  consistency) runs after every scheduler pass; its wall-time overhead
  versus the plain run must stay under ``GUARD_OVERHEAD`` — paranoid
  mode is meant to be left on in CI, not sampled.

Standalone usage::

    python benchmarks/bench_invariants.py --bench [--fast]  # record timings
    python benchmarks/bench_invariants.py --guard [--fast]  # CI overhead guard

``--bench`` appends one entry to ``BENCH_invariants.json`` (repo root).
``--guard`` exits non-zero if the structural check, the digest identity
or the overhead bound fails.
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.hypervisor.hypervisor import Hypervisor
from repro.invariants import InvariantChecker
from repro.schedulers.registry import make_scheduler
from repro.workload.scenarios import STRESS, scenario_sequence

#: Default output of ``--bench`` mode.
DEFAULT_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_invariants.json"
)

#: The unchecked path must cost at most this fraction of the checked path
#: (i.e. attaching the checker is the only thing that may cost).
GUARD_THRESHOLD = 1.05

#: Upper bound on the checked/unchecked wall-time ratio. The full suite
#: after every pass costs ~1.7-1.9x in practice; the slack absorbs CI
#: machine noise while still catching an accidentally quadratic check.
GUARD_OVERHEAD = 2.5

#: Subprocess probe: a plain run must not import any invariants module.
_STRUCTURAL_PROBE = """
import sys
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.workload.scenarios import STRESS, scenario_sequence
hv = Hypervisor(make_scheduler('nimblock'))
for r in scenario_sequence(STRESS, 1, 6).to_requests():
    hv.submit(r)
hv.run()
bad = sorted(m for m in sys.modules if 'invariants' in m)
if bad:
    raise SystemExit('invariants modules loaded on a plain run: %s' % bad)
"""


def run_workload(seeds, num_events: int, checked: bool) -> float:
    """Wall time of one serial stress sweep, checked or not."""
    started = time.perf_counter()
    for seed in seeds:
        observer = InvariantChecker() if checked else None
        hypervisor = Hypervisor(
            make_scheduler("nimblock"), observer=observer
        )
        for request in scenario_sequence(
            STRESS, seed, num_events
        ).to_requests():
            hypervisor.submit(request)
        hypervisor.run()
    return time.perf_counter() - started


def digest_identity(num_events: int) -> None:
    """Checked and plain runs must produce identical traces (raises)."""
    import hashlib

    from repro.sim.trace_export import trace_to_dict

    digests = []
    for checked in (False, True):
        observer = InvariantChecker() if checked else None
        hypervisor = Hypervisor(
            make_scheduler("nimblock"), observer=observer
        )
        for request in scenario_sequence(
            STRESS, 1, num_events
        ).to_requests():
            hypervisor.submit(request)
        hypervisor.run()
        blob = json.dumps(
            trace_to_dict(hypervisor.trace, label="bench"), sort_keys=True
        )
        digests.append(hashlib.sha256(blob.encode()).hexdigest())
    if digests[0] != digests[1]:
        raise SystemExit(
            f"invariant checker perturbed the run: plain digest "
            f"{digests[0]} != checked digest {digests[1]}"
        )


def measure(fast: bool) -> Dict[str, float]:
    """Interleaved unchecked/checked medians (interleaving absorbs drift)."""
    seeds = (1, 2) if fast else (1, 2, 3, 4)
    num_events = 8 if fast else 16
    repetitions = 3 if fast else 5
    run_workload(seeds, num_events, checked=False)  # warm caches
    unchecked: List[float] = []
    checked: List[float] = []
    for _ in range(repetitions):
        unchecked.append(run_workload(seeds, num_events, checked=False))
        checked.append(run_workload(seeds, num_events, checked=True))
    unchecked_s = statistics.median(unchecked)
    checked_s = statistics.median(checked)
    return {
        "unchecked_s": unchecked_s,
        "checked_s": checked_s,
        "checked_overhead_pct": 100.0 * (checked_s / unchecked_s - 1.0),
    }


def structural_check() -> None:
    """A plain run must not load repro.invariants (raises on failure)."""
    subprocess.run(
        [sys.executable, "-c", _STRUCTURAL_PROBE],
        check=True,
    )


def paranoid_sweep(fast: bool) -> int:
    """Checked runs across schedulers, chaos scenarios and admission.

    Every registry scheduler on a clean stress run, the three liveliest
    chaos scenarios at full fault rate, and every admission policy on
    the 4x overload regime — all with the invariant checker attached.
    Any breach raises :class:`~repro.errors.InvariantViolation` (exit 1
    with the trace window in the message).
    """
    from repro.admission import ADMISSION_POLICIES, AdmissionController
    from repro.experiments.ext_overload import OVERLOAD_WORKLOAD, study_sequence
    from repro.invariants import checked_run
    from repro.schedulers.registry import ALL_SCHEDULERS
    from repro.workload.scenarios import chaos_scenario

    num_events = 8 if fast else 16
    for name in ALL_SCHEDULERS:
        _, checker = checked_run(
            name, scenario_sequence(STRESS, 7, num_events)
        )
        print(
            f"paranoid scheduler={name}: {checker.passes_checked} passes "
            "checked, 0 violations"
        )
    for scenario in ("transient", "reconfig", "mixed"):
        cfg = chaos_scenario(scenario).fault_config(1.0, seed=7)
        _, checker = checked_run(
            "nimblock", scenario_sequence(STRESS, 7, num_events),
            fault_config=cfg,
        )
        print(
            f"paranoid chaos={scenario}: {checker.passes_checked} passes "
            "checked, 0 violations"
        )
    overload = study_sequence(OVERLOAD_WORKLOAD, 7, 4 * num_events, 4.0)
    for policy in ADMISSION_POLICIES:
        _, checker = checked_run(
            "fcfs", overload,
            admission=AdmissionController(policy, seed=7),
        )
        print(
            f"paranoid admission={policy}: {checker.passes_checked} passes "
            "checked, 0 violations"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", action="store_true",
                        help="record a timing entry to BENCH_invariants.json")
    parser.add_argument("--guard", action="store_true",
                        help="CI mode: fail on structural/digest/overhead "
                             "drift")
    parser.add_argument("--paranoid", action="store_true",
                        help="checked runs across schedulers, chaos "
                             "scenarios and admission policies; any "
                             "invariant violation fails")
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale for CI")
    parser.add_argument("--out", type=Path, default=DEFAULT_BENCH_PATH)
    args = parser.parse_args(argv)

    if args.paranoid:
        return paranoid_sweep(args.fast)

    structural_check()
    print("structural check: plain runs import no invariants module")
    digest_identity(8 if args.fast else 12)
    print("digest identity: checked runs are byte-identical to plain runs")

    timings = measure(args.fast)
    print(
        f"unchecked {timings['unchecked_s'] * 1e3:8.1f} ms   "
        f"checked {timings['checked_s'] * 1e3:8.1f} ms   "
        f"invariant overhead {timings['checked_overhead_pct']:+.1f}%"
    )

    if args.guard:
        off_ratio = timings["unchecked_s"] / timings["checked_s"]
        if off_ratio > GUARD_THRESHOLD:
            print(
                f"GUARD FAILED: unchecked path at {off_ratio:.3f}x of "
                f"checked (limit {GUARD_THRESHOLD}) — the no-checker path "
                "is doing invariant work",
                file=sys.stderr,
            )
            return 1
        on_ratio = timings["checked_s"] / timings["unchecked_s"]
        if on_ratio > GUARD_OVERHEAD:
            print(
                f"GUARD FAILED: checked path at {on_ratio:.3f}x of "
                f"unchecked (limit {GUARD_OVERHEAD}) — the invariant "
                "suite became too expensive for paranoid CI",
                file=sys.stderr,
            )
            return 1
        print(
            f"overhead guard OK (off {off_ratio:.3f}, on {on_ratio:.3f}x "
            f"<= {GUARD_OVERHEAD}x)"
        )

    if args.bench:
        entry = {
            "timestamp": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "fast": args.fast,
            **{k: round(v, 6) for k, v in timings.items()},
        }
        history = []
        if args.out.exists():
            history = json.loads(args.out.read_text())
        history.append(entry)
        args.out.write_text(json.dumps(history, indent=2) + "\n")
        print(f"recorded -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
