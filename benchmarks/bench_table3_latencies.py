"""Regenerate Table 3: benchmark latencies and per-algorithm responses.

Workload: fixed batch size 5, 500 ms between arrivals, all five
algorithms. Paper shapes: baseline responses inflated by head-of-line
blocking; short benchmarks collapse to seconds under sharing; Nimblock
leads on optical flow and AlexNet.
"""

from __future__ import annotations

from repro.experiments import table3

from conftest import emit


def test_table3_latencies_and_responses(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: table3.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    # Shape: sharing must beat the baseline for the short benchmarks.
    for name in ("lenet", "imgc", "3dr"):
        assert result.response("nimblock", name) < result.response(
            "baseline", name
        )
    emit(table3.format_result(result))
