"""Extension bench: EDF and DML-static against PREMA and Nimblock.

Shapes: Nimblock keeps the best average reduction; DML-static (no
reallocation, no preemption, priority-blind) misses far more
high-priority deadlines than Nimblock; EDF meets the most deadlines
overall but only by ignoring priorities.
"""

from __future__ import annotations

from repro.experiments import ext_schedulers

from conftest import emit


def test_ext_scheduler_comparison(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: ext_schedulers.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    for scenario in result.scenarios:
        assert result.reduction(scenario, "nimblock") >= result.reduction(
            scenario, "dml_static"
        )
        nb9 = result.tight_rate(scenario, "nimblock", 9)
        dml9 = result.tight_rate(scenario, "dml_static", 9)
        if nb9 == nb9 and dml9 == dml9:  # both populations non-empty
            assert nb9 <= dml9
    emit(ext_schedulers.format_result(result))
