"""Regenerate Figure 6: 95th/99th percentile tail response (normalized).

Paper shapes: Nimblock best at the 95th percentile in all scenarios; RR
and FCFS collapse at the 99th percentile of the real-time test.
"""

from __future__ import annotations

from repro.experiments import fig6_tail

from conftest import emit


def test_fig6_tail_response(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: fig6_tail.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    for scenario in result.scenarios:
        assert result.best_scheduler(scenario, 95.0) == "nimblock"
    # Real-time 99th percentile: Nimblock must beat RR by a wide margin.
    assert result.tail("realtime", 99.0, "nimblock") < result.tail(
        "realtime", 99.0, "rr"
    )
    emit(fig6_tail.format_result(result))
