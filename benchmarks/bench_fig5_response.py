"""Regenerate Figure 5: average response-time reduction vs the baseline.

Paper shapes: Nimblock wins every scenario (4.7x standard, 5.7x stress,
3.1x real-time over the baseline; 1.4-2.1x over PREMA); RR trails.
"""

from __future__ import annotations

from repro.experiments import fig5_response

from conftest import emit


def test_fig5_response_reduction(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: fig5_response.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    for scenario in result.scenarios:
        assert result.best_scheduler(scenario) == "nimblock"
        assert result.reduction(scenario, "nimblock") > 1.0
    emit(fig5_response.format_result(result))
