"""Extension bench: heterogeneous fleets (Hetero-ViTAL's setting).

Shapes: the big+edge pair improves on a single big board but not as much
as two big boards; capability-normalized dispatch places more work on the
big board.
"""

from __future__ import annotations

from repro.experiments import ext_hetero

from conftest import emit


def test_ext_heterogeneous_fleets(benchmark, settings):
    result = benchmark.pedantic(
        lambda: ext_hetero.run(settings=settings),
        rounds=1, iterations=1,
    )
    single = result.response("1x big")
    pair = result.response("2x big")
    hetero = result.response("big + edge")
    assert pair <= hetero * 1.05
    assert hetero <= single * 1.05
    big_count, edge_count = result.placements["big + edge"]
    assert big_count > edge_count
    emit(ext_hetero.format_result(result))
