"""Scheduler-overhead microbenchmarks.

The paper's design argument: heuristic scheduling must stay off the
expensive-ILP path (§1/§6). Here pytest-benchmark times a single Nimblock
decision pass against one exact branch-and-bound schedule solve, plus the
raw event-engine throughput as a sanity floor.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.experiments.overhead import _loaded_hypervisor
from repro.apps.catalog import get_benchmark
from repro.ilp.model import ScheduleProblem
from repro.ilp.solver import BranchAndBoundSolver
from repro.sim.engine import SimulationEngine

from conftest import emit


def test_nimblock_decision_pass(benchmark):
    hypervisor = _loaded_hypervisor(num_apps=12)
    ctx = hypervisor._ctx
    policy = hypervisor.scheduler
    benchmark(lambda: policy.decide(ctx))
    emit(
        "Nimblock decision pass under a 12-application load "
        "(see pytest-benchmark table for the timing)."
    )


def test_exact_ilp_substitute_solve(benchmark):
    problem = ScheduleProblem(
        graph=get_benchmark("of").graph,
        batch_size=5,
        num_slots=3,
        reconfig_ms=SystemConfig().reconfig_ms,
    )

    result = benchmark.pedantic(
        lambda: BranchAndBoundSolver(problem).solve(),
        rounds=3, iterations=1,
    )
    assert result.makespan_ms > 0
    emit(
        f"Exact solve of optical-flow/batch-5 on 3 slots: "
        f"{result.makespan_ms / 1000:.2f} s makespan, "
        f"{result.nodes_visited} nodes visited."
    )


def test_event_engine_throughput(benchmark):
    def run_10k_events():
        engine = SimulationEngine()
        counter = {"n": 0}

        def tick(now):
            counter["n"] += 1
            if counter["n"] < 10_000:
                engine.schedule_after(1.0, tick)

        engine.schedule_at(0.0, tick)
        engine.run()
        return counter["n"]

    assert benchmark(run_10k_events) == 10_000
