"""Regenerate Table 1: overlay slot/static utilization on the ZCU106."""

from __future__ import annotations

from repro.experiments import table1

from conftest import emit


def test_table1_overlay_utilization(benchmark):
    result = benchmark(table1.run)
    assert result.floorplan_valid
    emit(table1.format_result(result))
