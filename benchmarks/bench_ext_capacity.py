"""Extension bench: capacity planning (slot-count sweep under Nimblock).

Shapes: mean response improves with slot count and plateaus; the knee
finder reports where the workload stops paying for more slots.
"""

from __future__ import annotations

from repro.experiments import ext_capacity

from conftest import emit


def test_ext_capacity_planning(benchmark, settings):
    result = benchmark.pedantic(
        lambda: ext_capacity.run(
            settings=settings, slot_counts=(4, 6, 8, 10, 12)
        ),
        rounds=1, iterations=1,
    )
    assert result.response(12) <= result.response(4) * 1.05
    assert 4 <= result.knee() <= 12
    emit(ext_capacity.format_result(result))
