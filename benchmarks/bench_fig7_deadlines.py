"""Regenerate Figure 7: deadline failure rate vs scaling factor D_s.

Paper shapes: Nimblock has the lowest violation rate at tight deadlines
in all three scenarios (up to 49% fewer than PREMA/RR in the standard
test) and reaches the 10% error point at smaller D_s than PREMA in the
stress and real-time tests.
"""

from __future__ import annotations

from repro.experiments import fig7_deadlines

from conftest import emit


def test_fig7_deadline_failure_rate(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: fig7_deadlines.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    for scenario in result.scenarios:
        rates = result.tightest_rates(scenario)
        assert rates["nimblock"] <= min(
            rates[s] for s in result.schedulers if s != "nimblock"
        ) + 1e-9, f"Nimblock not best at tight deadlines in {scenario}"
    emit(fig7_deadlines.format_result(result))
