"""Extension bench: scheduler resilience under fault injection.

Sweeps the mixed chaos scenario's fault rate over every scheduler and
regenerates the degradation curves plus the reliability table of
``repro.experiments.ext_faults``.

Shapes: the zero-rate column is exactly 1.00 for every scheduler (a
disabled injector is byte-identical to the fault-free path), every
scheduler retires its whole workload at every swept rate (the recovery
machinery never wedges), and faults actually fire at the top rate.

Also runnable standalone as a CI smoke test::

    python benchmarks/bench_ext_faults.py --fast

which runs a reduced sweep (two schedulers, two rates, one short
sequence) in a few seconds and exits non-zero on any violated shape.
"""

from __future__ import annotations

import sys

from repro.experiments import ext_faults
from repro.experiments.runner import ExperimentSettings, RunCache


def _check_shapes(result) -> None:
    """The invariants any fault sweep must satisfy."""
    zero = result.fault_rates[0]
    top = result.fault_rates[-1]
    for scheduler in result.schedulers:
        if zero == 0.0:
            assert result.degradation[(scheduler, zero)] == 1.0, (
                f"{scheduler}: disabled injector must cost exactly nothing"
            )
            assert result.fault_counts[(scheduler, zero)] == 0
            assert result.work_lost[(scheduler, zero)] == 0.0
        if top > 0:
            assert result.fault_counts[(scheduler, top)] > 0, (
                f"{scheduler}: no faults fired at rate {top}"
            )
        for rate in result.fault_rates:
            assert result.goodput[(scheduler, rate)] > 0


def test_ext_fault_study(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: ext_faults.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    _check_shapes(result)

    from conftest import emit

    emit(ext_faults.format_result(result))


def _fast_smoke() -> int:
    """Reduced sweep for CI: seconds, not minutes."""
    result = ext_faults.run(
        cache=RunCache(),
        settings=ExperimentSettings(num_sequences=1, num_events=6),
        fault_rates=(0.0, 0.1),
        schedulers=("fcfs", "nimblock"),
    )
    _check_shapes(result)
    print(ext_faults.format_result(result))
    print("\nfault-injection smoke: OK")
    return 0


if __name__ == "__main__":
    if "--fast" in sys.argv[1:]:
        sys.exit(_fast_smoke())
    print("usage: python benchmarks/bench_ext_faults.py --fast", file=sys.stderr)
    sys.exit(2)
