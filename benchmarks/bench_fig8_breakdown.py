"""Regenerate Figure 8: run / PR / wait time proportions under Nimblock."""

from __future__ import annotations

from repro.experiments import fig8_breakdown

from conftest import emit


def test_fig8_time_breakdown(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: fig8_breakdown.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    # Shape: digit recognition is compute-dominated; the short benchmarks
    # spend a visible share of their life waiting or reconfiguring.
    if "dr" in result.breakdowns:
        dr = result.breakdowns["dr"]
        assert dr.run_fraction > dr.reconfig_fraction
    emit(fig8_breakdown.format_result(result))
