"""Regenerate Figure 10: AlexNet response time vs batch size (ablations).

Paper shapes: variants coincide at batch 1; the no-pipelining variants
overlap and are the slowest at larger batches; growth is sublinear.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig10_alexnet

from conftest import emit


def test_fig10_alexnet_response(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: fig10_alexnet.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    biggest = max(result.batch_sizes)
    assert result.response(biggest, "nimblock") <= result.response(
        biggest, "nimblock_no_pipe"
    )
    assert result.response(biggest, "nimblock_no_pipe") == pytest.approx(
        result.response(biggest, "nimblock_no_preempt_no_pipe"), rel=0.15
    )
    emit(fig10_alexnet.format_result(result))
