"""Shared infrastructure for the pytest-benchmark regeneration harness.

Every table and figure of the paper has one bench module. Each bench runs
its experiment (timing it once with ``benchmark.pedantic``) and prints the
regenerated rows — run with ``pytest benchmarks/ --benchmark-only -s`` to
see them inline.

Scale: benches default to 3 sequences x 20 events (the paper uses 10 x 20)
so a full harness run stays in the minutes range; set ``REPRO_SEQUENCES=10``
for full-fidelity runs. The simulation cache is session-scoped, so the
Figure 5/6/7/8 benches share one set of simulations exactly as the paper
derives those figures from the same stimuli.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentSettings, RunCache

#: Bench-default sequence count (paper: 10).
BENCH_SEQUENCES = int(os.environ.get("REPRO_SEQUENCES", "3"))
#: Bench-default events per sequence (paper: 20).
BENCH_EVENTS = int(os.environ.get("REPRO_EVENTS", "20"))
#: Parallel sweep workers (0/unset = serial; results are identical).
BENCH_JOBS = int(os.environ.get("REPRO_JOBS", "1"))
#: Persistent run cache directory (unset = memory-only).
BENCH_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Experiment scale used by every bench."""
    return ExperimentSettings(
        num_sequences=BENCH_SEQUENCES, num_events=BENCH_EVENTS
    )


@pytest.fixture(scope="session")
def cache() -> RunCache:
    """One simulation cache shared by all benches in the session.

    ``REPRO_JOBS=N`` fans cold simulations out over N worker processes;
    ``REPRO_CACHE_DIR=...`` persists completed runs so a second bench
    session performs zero new simulations for unchanged stimuli.
    """
    return RunCache(cache_dir=BENCH_CACHE_DIR, jobs=BENCH_JOBS)


def emit(text: str) -> None:
    """Print a regenerated table with a separating banner."""
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)
