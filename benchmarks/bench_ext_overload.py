"""Extension bench: overload protection under admission control.

Sweeps arrival-rate multipliers over every admission policy and
regenerates the protection-ratio and SLO tables of
``repro.experiments.ext_overload``.

Shapes: every policy's protection ratio is exactly 1.00 at the
uncongested base rate (it is normalized against itself there), the
``unbounded`` policy admits everything and never drops or sheds at any
rate, protecting policies keep their admission ratio a valid fraction,
and every cell sustains positive goodput — admission control degrades
throughput, it must never wedge it.

Also runnable standalone as a CI smoke test::

    python benchmarks/bench_ext_overload.py --fast

which runs a reduced sweep (two policies, two rates, one short sequence)
in a few seconds and exits non-zero on any violated shape.
"""

from __future__ import annotations

import math
import sys

from repro.experiments import ext_overload
from repro.experiments.runner import ExperimentSettings, RunCache


def _check_shapes(result) -> None:
    """The invariants any overload sweep must satisfy."""
    base = result.rate_multipliers[0]
    for policy in result.policies:
        ratio = result.protection[(policy, base)]
        assert math.isnan(ratio) or ratio == 1.0, (
            f"{policy}: base-rate protection must be 1.00, got {ratio}"
        )
        for rate in result.rate_multipliers:
            key = (policy, rate)
            assert 0.0 <= result.admission_ratio[key] <= 1.0
            assert result.goodput[key] > 0, (
                f"{policy} at {rate}x: zero goodput — the board wedged"
            )
            if policy == "unbounded":
                assert result.admission_ratio[key] == 1.0
                assert result.drops[key] == 0
                assert result.shed[key] == 0


def test_ext_overload_study(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: ext_overload.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    _check_shapes(result)

    from conftest import emit

    emit(ext_overload.format_result(result))


def _fast_smoke() -> int:
    """Reduced sweep for CI: seconds, not minutes."""
    result = ext_overload.run(
        cache=RunCache(),
        settings=ExperimentSettings(num_sequences=1, num_events=4),
        rate_multipliers=(1.0, 4.0),
        policies=("unbounded", "shed"),
    )
    _check_shapes(result)
    print(ext_overload.format_result(result))
    print("\noverload smoke: OK")
    return 0


if __name__ == "__main__":
    if "--fast" in sys.argv[1:]:
        sys.exit(_fast_smoke())
    print("usage: python benchmarks/bench_ext_overload.py --fast",
          file=sys.stderr)
    sys.exit(2)
