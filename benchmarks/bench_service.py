"""Service bench: open-loop throughput and memory of the service tier.

Drives :class:`repro.service.loop.ServiceLoop` with seeded Poisson
arrivals at sustained load and measures what the closed-run benches
cannot: engine events per second *while feeding incrementally*, arrivals
retired per second, and the peak resident set of a run whose submission
count dwarfs anything a materialized sequence could hold.

Standalone usage::

    # print throughput at the default scale (50k submissions)
    python benchmarks/bench_service.py

    # the acceptance drill: one million open-loop submissions, recorded
    # as a trajectory entry under "service_history" in BENCH_core.json
    python benchmarks/bench_service.py --bench

    # CI smoke: run two scales under tracemalloc and fail unless peak
    # traced memory stays flat (O(1) in the submission count)
    python benchmarks/bench_service.py --fast

The ``--fast`` memory check holds the *window* count constant across the
two scales (window width grows with the span) so it isolates per-
submission state: the windowed aggregates are the run's output and grow
with simulated time by design, while apps, trace rows and the engine
heap must not grow with submissions at all.
"""

from __future__ import annotations

import argparse
import datetime
import gc
import json
import resource
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Dict

from repro.service.loop import ServiceLoop
from repro.workload.arrivals import service_rate_process

#: Trajectory file shared with bench_core (separate top-level key).
DEFAULT_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: The acceptance drill: one million open-loop submissions.
DRILL_SUBMISSIONS = 1_000_000

#: Arrival rate of the drill (events/s). High enough that the board runs
#: saturated (shedding active), low enough that every window completes
#: work — the regime the service tier exists for.
DRILL_RATE_PER_S = 4.0

#: Maximum tolerated peak-memory growth between the --fast scales (4x
#: more submissions; flat is ~1.0, linear retention would be ~4).
FAST_MEMORY_RATIO = 2.0


def run_service(
    submissions: int,
    rate_per_s: float = DRILL_RATE_PER_S,
    window_ms: float = 60_000.0,
    scheduler: str = "nimblock",
    admission: str = "shed",
    seed: int = 1,
    mode: str = "full",
    disable_gc: bool = False,
    replay: bool = True,
):
    """One measured service run; returns the finished report.

    ``disable_gc`` suspends the cyclic collector for the measured run
    (restoring its previous state afterwards): the service tier's
    steady-state object population is refcount-managed — app runs and
    engine entries drop to zero references at retirement — so collector
    sweeps only add jitter to throughput measurements. Memory smokes
    must keep it off so leaks stay observable.
    """
    arrivals = service_rate_process(rate_per_s, seed=seed)
    loop = ServiceLoop(
        arrivals,
        scheduler,
        admission=admission,
        seed=seed,
        max_submissions=submissions,
        window_ms=window_ms,
        mode=mode,
        replay=replay,
    )
    if not disable_gc:
        return loop.run()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        return loop.run()
    finally:
        if was_enabled:
            gc.enable()


def _check_shapes(report, submissions: int) -> None:
    """The invariants any service run must satisfy."""
    assert report.arrived == submissions
    assert report.completed + report.shed + report.dropped \
        == report.arrived, "arrival ledger must balance"
    assert report.completed > 0, "a drill that completes nothing is noise"
    assert report.windows_closed > 0


def measure(
    submissions: int,
    rate_per_s: float = DRILL_RATE_PER_S,
    mode: str = "full",
    replay: bool = True,
) -> Dict:
    """One full measurement: throughput rates plus peak RSS."""
    report = run_service(
        submissions, rate_per_s=rate_per_s, mode=mode, disable_gc=True,
        replay=replay,
    )
    _check_shapes(report, submissions)
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    attempts = report.replay_hits + report.replay_misses
    return {
        "schema": 3,
        "mode": mode,
        "replay": replay,
        "replay_hits": report.replay_hits,
        "replay_misses": report.replay_misses,
        "replay_hit_rate": round(
            report.replay_hits / attempts if attempts else 0.0, 4
        ),
        "scale": {
            "submissions": submissions,
            "rate_per_s": rate_per_s,
            "scheduler": report.scheduler,
            "admission": report.admission,
            "window_ms": report.window_ms,
        },
        "engine_events": report.engine_events,
        "engine_events_per_sec": round(report.engine_events / report.wall_s),
        "arrivals_per_sec": round(report.arrived / report.wall_s),
        "completed": report.completed,
        "shed": report.shed,
        "windows_closed": report.windows_closed,
        "span_ms": round(report.span_ms),
        "wall_s": round(report.wall_s, 3),
        "peak_rss_kb": peak_rss_kb,
    }


def print_measurement(entry: Dict) -> None:
    scale = entry["scale"]
    print(
        f"service bench: {scale['submissions']:,} submissions at "
        f"{scale['rate_per_s']:g}/s ({scale['scheduler']}, "
        f"{scale['admission']}, mode={entry.get('mode', 'full')})"
    )
    if entry.get("schema", 2) >= 3:
        print(
            f"replay:     {entry['replay_hits']:>12,} hits / "
            f"{entry['replay_misses']:,} misses "
            f"(hit rate {entry['replay_hit_rate']:.2%})"
        )
    print(
        f"engine:     {entry['engine_events_per_sec']:>12,} events/sec "
        f"({entry['engine_events']:,} events in {entry['wall_s']}s)"
    )
    print(
        f"arrivals:   {entry['arrivals_per_sec']:>12,} retired/sec "
        f"({entry['completed']:,} completed, {entry['shed']:,} shed)"
    )
    print(
        f"memory:     {entry['peak_rss_kb']:>12,} kB peak RSS over "
        f"{entry['windows_closed']:,} windows "
        f"({entry['span_ms'] / 1000.0:,.0f}s simulated)"
    )


def test_service_throughput(benchmark):
    """pytest-benchmark entry: a mid-scale sustained run."""
    report = benchmark.pedantic(
        lambda: run_service(10_000), rounds=1, iterations=1,
    )
    _check_shapes(report, 10_000)

    from conftest import emit

    emit(report.format())


# -- standalone modes -------------------------------------------------------
def _bench(submissions: int, out: Path, mode: str = "full") -> int:
    entry = measure(submissions, mode=mode)
    print_measurement(entry)
    entry = {
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        **entry,
    }
    if out.exists():
        trajectory = json.loads(out.read_text(encoding="utf-8"))
    else:
        trajectory = {"bench": "core", "unit": "events/sec", "history": []}
    trajectory.setdefault("service_history", []).append(entry)
    out.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    print(f"\nrecorded service trajectory entry -> {out}")
    return 0


def _traced_peak(submissions: int, window_ms: float) -> int:
    """Peak traced allocation (bytes) of one service run."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    report = run_service(submissions, window_ms=window_ms)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    _check_shapes(report, submissions)
    return peak


def _fast_smoke() -> int:
    """CI smoke: O(1) memory in the submission count.

    4x the submissions with 4x the window width (same window count, so
    the output aggregates are held constant) must not come close to 4x
    the peak traced memory.
    """
    small, large = 2_000, 8_000
    small_peak = _traced_peak(small, window_ms=60_000.0)
    large_peak = _traced_peak(large, window_ms=240_000.0)
    ratio = large_peak / small_peak
    print(
        f"peak traced memory: {small:,} subs -> {small_peak / 1e6:.1f} MB, "
        f"{large:,} subs -> {large_peak / 1e6:.1f} MB "
        f"(ratio {ratio:.2f}, limit {FAST_MEMORY_RATIO})"
    )
    if ratio >= FAST_MEMORY_RATIO:
        print("service smoke: FAILED — memory grows with submissions")
        return 1
    print("service smoke: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Service bench: open-loop events/sec + peak RSS."
    )
    parser.add_argument(
        "--submissions", type=int, default=50_000,
        help="arrivals to feed (default 50k; --bench uses 1M)",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help=f"run the {DRILL_SUBMISSIONS:,}-submission drill and append "
             "a trajectory entry to BENCH_core.json",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="CI smoke: two tracemalloc'd scales, fail on memory growth",
    )
    parser.add_argument(
        "--bench-out", default=str(DEFAULT_BENCH_PATH),
        help="trajectory file (default: repo-root BENCH_core.json)",
    )
    parser.add_argument(
        "--mode", choices=("full", "metrics"), default="full",
        help="run mode: full records trace rows, metrics streams "
             "counters only (the fast path)",
    )
    args = parser.parse_args(argv)

    if args.fast:
        return _fast_smoke()
    if args.bench:
        return _bench(DRILL_SUBMISSIONS, Path(args.bench_out),
                      mode=args.mode)
    entry = measure(args.submissions, mode=args.mode)
    print_measurement(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
