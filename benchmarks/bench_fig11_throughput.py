"""Regenerate Figure 11: AlexNet throughput vs batch size (ablations).

Paper shapes: pipelining-enabled variants sustain the highest throughput;
gains flatten beyond batch size ~5.
"""

from __future__ import annotations

from repro.experiments import fig11_throughput

from conftest import emit


def test_fig11_alexnet_throughput(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: fig11_throughput.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    biggest = max(result.batch_sizes)
    assert result.items_per_s(biggest, "nimblock") >= result.items_per_s(
        biggest, "nimblock_no_pipe"
    )
    # Throughput grows from batch 1 to the largest batch when pipelining.
    assert result.items_per_s(biggest, "nimblock") > result.items_per_s(
        1, "nimblock"
    )
    emit(fig11_throughput.format_result(result))
