"""Extension bench: board utilization (§1's under-utilization motivation).

Shapes: the no-sharing baseline leaves most slot-time empty; Nimblock has
the highest compute share of slot-time and the shortest busy window.
"""

from __future__ import annotations

from repro.experiments import ext_utilization

from conftest import emit


def test_ext_board_utilization(benchmark, settings):
    result = benchmark.pedantic(
        lambda: ext_utilization.run(settings=settings),
        rounds=1, iterations=1,
    )
    assert result.compute_share("nimblock") == max(
        result.compute_share(s) for s in result.schedulers
    )
    assert result.compute_share("nimblock") > 2 * result.compute_share(
        "baseline"
    )
    nb = result.reports["nimblock"]
    base = result.reports["baseline"]
    assert nb.window_ms < base.window_ms
    emit(ext_utilization.format_result(result))
