#!/usr/bin/env python3
"""Observability bench: what instrumentation costs, and that "off" is free.

Two claims are pinned here:

* **Disabled is free.** A hypervisor built without an observer executes
  zero observability code: the only additions to the hot path are
  ``if observer is not None`` guards, and no ``repro.observe`` module is
  even imported (checked in a subprocess). The disabled-path wall time
  must stay within ``GUARD_THRESHOLD`` of the enabled path from below —
  i.e. turning instrumentation *on* is the only thing that may cost.
* **Enabled is cheap.** Live hooks are a token reading per scheduler pass
  plus an integer bump per engine event; the post-run trace fold happens
  once. The enabled/disabled gap is reported so regressions show up in
  the recorded trajectory.

Standalone usage::

    python benchmarks/bench_observe.py --bench [--fast]   # record timings
    python benchmarks/bench_observe.py --guard [--fast]   # CI overhead guard

``--bench`` appends one entry to ``BENCH_observe.json`` (repo root).
``--guard`` exits non-zero if the structural check fails or the disabled
path is not within ``GUARD_THRESHOLD`` of the enabled path.
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.hypervisor.hypervisor import Hypervisor
from repro.observe.instrument import Instrumentation
from repro.schedulers.registry import make_scheduler
from repro.workload.scenarios import STRESS, scenario_sequence

#: Default output of ``--bench`` mode.
DEFAULT_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_observe.json"

#: The disabled path must cost at most this fraction of the enabled path
#: (1.05 = within 5%; in practice it is strictly cheaper).
GUARD_THRESHOLD = 1.05

#: Subprocess probe: a plain run must not import any observe module.
_STRUCTURAL_PROBE = """
import sys
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.workload.scenarios import STRESS, scenario_sequence
hv = Hypervisor(make_scheduler('nimblock'))
for r in scenario_sequence(STRESS, 1, 6).to_requests():
    hv.submit(r)
hv.run()
bad = sorted(m for m in sys.modules if 'observe' in m)
if bad:
    raise SystemExit('observe modules loaded on a plain run: %s' % bad)
"""


def run_workload(seeds, num_events: int, observe: bool) -> float:
    """Wall time of one serial stress sweep, observed or not."""
    started = time.perf_counter()
    for seed in seeds:
        observer = Instrumentation() if observe else None
        hypervisor = Hypervisor(
            make_scheduler("nimblock"), observer=observer
        )
        for request in scenario_sequence(
            STRESS, seed, num_events
        ).to_requests():
            hypervisor.submit(request)
        hypervisor.run()
        if observer is not None:
            observer.finalize(hypervisor)
    return time.perf_counter() - started


def measure(fast: bool) -> Dict[str, float]:
    """Interleaved disabled/enabled medians (interleaving absorbs drift)."""
    seeds = (1, 2) if fast else (1, 2, 3, 4)
    num_events = 8 if fast else 16
    repetitions = 3 if fast else 5
    run_workload(seeds, num_events, observe=False)  # warm caches/JIT-alikes
    disabled: List[float] = []
    enabled: List[float] = []
    for _ in range(repetitions):
        disabled.append(run_workload(seeds, num_events, observe=False))
        enabled.append(run_workload(seeds, num_events, observe=True))
    disabled_s = statistics.median(disabled)
    enabled_s = statistics.median(enabled)
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead_pct": 100.0 * (enabled_s / disabled_s - 1.0),
    }


def structural_check() -> None:
    """A plain run must not load repro.observe (raises on failure)."""
    subprocess.run(
        [sys.executable, "-c", _STRUCTURAL_PROBE],
        check=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", action="store_true",
                        help="record a timing entry to BENCH_observe.json")
    parser.add_argument("--guard", action="store_true",
                        help="CI mode: fail on structural or overhead drift")
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale for CI")
    parser.add_argument("--out", type=Path, default=DEFAULT_BENCH_PATH)
    args = parser.parse_args(argv)

    structural_check()
    print("structural check: plain runs import no observe module")

    timings = measure(args.fast)
    print(
        f"disabled {timings['disabled_s'] * 1e3:8.1f} ms   "
        f"enabled {timings['enabled_s'] * 1e3:8.1f} ms   "
        f"instrumentation overhead {timings['enabled_overhead_pct']:+.1f}%"
    )

    if args.guard:
        ratio = timings["disabled_s"] / timings["enabled_s"]
        if ratio > GUARD_THRESHOLD:
            print(
                f"GUARD FAILED: disabled path at {ratio:.3f}x of enabled "
                f"(limit {GUARD_THRESHOLD}) — the no-observer path is "
                "doing observability work",
                file=sys.stderr,
            )
            return 1
        print(f"overhead guard OK (disabled/enabled = {ratio:.3f})")

    if args.bench:
        entry = {
            "timestamp": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "fast": args.fast,
            **{k: round(v, 6) for k, v in timings.items()},
        }
        history = []
        if args.out.exists():
            history = json.loads(args.out.read_text())
        history.append(entry)
        args.out.write_text(json.dumps(history, indent=2) + "\n")
        print(f"recorded -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
