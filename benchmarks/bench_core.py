"""Core bench: raw simulation throughput in engine events per second.

Where ``bench_sweep`` times the experiment *harness* (cache, process
fan-out), this bench isolates the simulation *core*: the event heap, the
hypervisor decision passes and the trace recorder. The rates reported
(schema 2 entries in BENCH_core.json):

* **engine schedule/sec** and **engine fire/sec** — an empty-callback
  timer storm through the raw array-native
  :meth:`~repro.sim.engine.SimulationEngine.schedule` path, with the
  enqueue phase and the dispatch (``run``) phase timed separately. The
  fire rate is the per-event overhead floor of the heap itself and the
  number held to the >=1M events/sec target;
* **sim events/sec** (``mode="full"``) and **sim metrics events/sec**
  (``mode="metrics"``) — full hypervisor simulations (every registry
  scheduler over deterministic generated sequences), counting the
  events the engine actually processed. Both run the same sequences,
  so the pair doubles as a coarse mode-overhead comparison.

Standalone usage::

    # print all rates at the default scale
    python benchmarks/bench_core.py

    # cProfile breakdown of the simulation hot path
    python benchmarks/bench_core.py --profile

    # append a trajectory entry to BENCH_core.json (repo root)
    python benchmarks/bench_core.py --bench

    # CI regression guard: fail if any guarded rate drops >30% below
    # the last committed BENCH_core.json entry
    python benchmarks/bench_core.py --guard

The guard compares *rates*, not totals. Per-run fixed costs make the
rate scale-sensitive, so CI guards at the same (default) scale the
committed baseline was recorded at; the 30% tolerance absorbs
machine-to-machine noise while still catching the order-of-magnitude
regressions the optimization work targets. Every rate key the baseline
entry carries is guarded; keys the baseline predates (schema 1 entries
lack the metrics-mode and phase-split rates) are skipped, so the guard
works against both old and new baselines.
"""

from __future__ import annotations

import argparse
import cProfile
import datetime
import json
import os
import pstats
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import ALL_SCHEDULERS, make_scheduler
from repro.workload.generator import EventGenerator

#: Default output of ``--bench`` mode: the core bench trajectory.
DEFAULT_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Maximum tolerated drop in any guarded rate before --guard fails.
GUARD_TOLERANCE = 0.30

#: Rate keys --guard compares when the baseline entry carries them.
#: ``sim_events_per_sec`` is present in every schema; the rest appear
#: from schema 2 on.
GUARD_KEYS = (
    "sim_events_per_sec",
    "sim_metrics_events_per_sec",
    "engine_fire_events_per_sec",
)

#: Scale of the service-tier guard proxy: a metrics-mode service run
#: small enough for CI but long enough to reach replay steady state.
#: Guarded only when the committed ``service_history`` carries a
#: schema-3 entry recorded at exactly this scale (older baselines are
#: skipped, keeping --guard backward-compatible).
SERVICE_GUARD_SUBMISSIONS = 20_000
SERVICE_GUARD_RATE_PER_S = 4.0
SERVICE_GUARD_MODE = "metrics"

#: Rate keys guarded in the matching service_history baseline entry.
SERVICE_GUARD_KEYS = ("engine_events_per_sec",)


def _service_guard_baseline(trajectory: Dict) -> Dict:
    """Latest schema-3 service entry recorded at the guard scale."""
    for entry in reversed(trajectory.get("service_history", [])):
        scale = entry.get("scale", {})
        if (
            entry.get("schema", 0) >= 3
            and entry.get("mode") == SERVICE_GUARD_MODE
            and scale.get("submissions") == SERVICE_GUARD_SUBMISSIONS
            and scale.get("rate_per_s") == SERVICE_GUARD_RATE_PER_S
        ):
            return entry
    return {}

#: Timer events for the raw-engine measurement.
ENGINE_STORM_EVENTS = 200_000


def engine_storm(num_events: int = ENGINE_STORM_EVENTS) -> Dict:
    """Raw engine throughput with the two phases timed separately.

    The storm goes through the raw array-native ``schedule`` path (plain
    4-tuple entries, no handle allocation) — the same path the
    hypervisor's hot loop uses. Returns per-phase and combined
    events/sec: ``schedule`` is pure enqueue cost, ``fire`` is the heap
    pop + dispatch cost of ``run()``. Event arguments are materialized
    before the clock starts so the timed region holds only engine work,
    not the bench's own arithmetic.
    """
    from repro.sim.engine import SimulationEngine

    engine = SimulationEngine()

    def noop(now: float) -> None:
        pass

    # Interleave two priorities so heap sifts exercise the tuple compare.
    events = [(float(i % 1024), i & 1) for i in range(num_events)]
    schedule = engine.schedule
    start = time.perf_counter()
    for event_time, priority in events:
        schedule(event_time, noop, priority)
    scheduled = time.perf_counter()
    engine.run()
    fired = time.perf_counter()
    assert engine.processed == num_events
    schedule_s = scheduled - start
    fire_s = fired - scheduled
    return {
        "engine_schedule_events_per_sec": round(num_events / schedule_s),
        "engine_fire_events_per_sec": round(num_events / fire_s),
        "engine_events_per_sec": round(num_events / (fired - start)),
    }


class _StubApp:
    """Minimal stand-in carrying the attributes PendingQueue touches."""

    __slots__ = ("app_id", "age_key", "first_item_start_ms")

    def __init__(self, app_id: int) -> None:
        self.app_id = app_id
        self.age_key = (float(app_id), app_id)
        self.first_item_start_ms = None


def queue_removal_per_op(num_apps: int) -> float:
    """Seconds per PendingQueue removal at the given queue size.

    Fills the queue, then removes every app oldest-first — the worst case
    for the old ``list.remove`` implementation, which shifted the whole
    tail on each call. With tombstoned removal the per-op cost must stay
    flat as the queue grows.
    """
    from repro.hypervisor.queues import PendingQueue

    queue = PendingQueue()
    for app_id in range(num_apps):
        queue.add(_StubApp(app_id))
    start = time.perf_counter()
    for app_id in range(num_apps):
        queue.remove(app_id)
    elapsed = time.perf_counter() - start
    queue.self_check()
    assert len(queue) == 0
    return elapsed / num_apps


#: Queue sizes compared by the O(1)-removal scaling assertion, and the
#: maximum tolerated per-op growth between them. A 10x larger queue costs
#: ~10x per removal under the old O(n) implementation; amortized O(1)
#: keeps the ratio near 1, and 4.0 absorbs timer noise.
QUEUE_SCALING_SIZES = (4_000, 40_000)
QUEUE_SCALING_MAX_RATIO = 4.0


def queue_scaling() -> Dict:
    """Measure removal cost at both sizes and assert O(1) scaling."""
    small, large = QUEUE_SCALING_SIZES
    queue_removal_per_op(small)  # warm-up
    small_s = min(queue_removal_per_op(small) for _ in range(3))
    large_s = min(queue_removal_per_op(large) for _ in range(3))
    ratio = large_s / small_s
    assert ratio <= QUEUE_SCALING_MAX_RATIO, (
        f"PendingQueue.remove is not O(1): {large:,}-app removals cost "
        f"{ratio:.1f}x the per-op time of {small:,}-app removals "
        f"(limit {QUEUE_SCALING_MAX_RATIO}x)"
    )
    return {
        "queue_remove_ns_small": round(small_s * 1e9, 1),
        "queue_remove_ns_large": round(large_s * 1e9, 1),
        "queue_remove_scaling": round(ratio, 3),
    }


def _sequences(num_sequences: int, num_events: int) -> List:
    return [
        EventGenerator(
            1000 + seed, benchmarks=("lenet", "imgc", "3dr", "of")
        ).sequence(
            num_events=num_events,
            delay_range_ms=(100.0, 400.0),
            batch_range=(2, 6),
            label=f"core-{seed}",
        )
        for seed in range(num_sequences)
    ]


def sim_throughput(
    num_sequences: int, num_events: int, mode: str = "full"
) -> Tuple[float, int, float]:
    """Full-simulation throughput over every registry scheduler.

    Returns ``(events_per_sec, total_engine_events, wall_seconds)``.
    The two run modes process identical event counts (pinned by
    ``tests/test_mode_equivalence.py``), so their rates compare the
    per-event trace cost directly.
    """
    sequences = _sequences(num_sequences, num_events)
    requests = [seq.to_requests() for seq in sequences]
    total_events = 0
    start = time.perf_counter()
    for name in ALL_SCHEDULERS:
        for reqs in requests:
            hv = Hypervisor(make_scheduler(name), mode=mode)
            for request in reqs:
                hv.submit(request)
            hv.run()
            total_events += hv.engine.processed
    elapsed = time.perf_counter() - start
    return total_events / elapsed, total_events, elapsed


def measure(num_sequences: int, num_events: int) -> Dict:
    """One full measurement: every rate plus the scale that produced it."""
    engine_rates = engine_storm()
    queue_stats = queue_scaling()
    sim_rate, sim_events, sim_wall = sim_throughput(
        num_sequences, num_events, mode="full"
    )
    metrics_rate, metrics_events, metrics_wall = sim_throughput(
        num_sequences, num_events, mode="metrics"
    )
    assert metrics_events == sim_events, (
        f"mode drift: full processed {sim_events} events, "
        f"metrics processed {metrics_events}"
    )
    return {
        "schema": 2,
        **queue_stats,
        "scale": {
            "schedulers": len(ALL_SCHEDULERS),
            "sequences": num_sequences,
            "events": num_events,
            "engine_storm_events": ENGINE_STORM_EVENTS,
        },
        "cpu_count": os.cpu_count(),
        **engine_rates,
        "sim_events_per_sec": round(sim_rate),
        "sim_metrics_events_per_sec": round(metrics_rate),
        "sim_events": sim_events,
        "sim_wall_s": round(sim_wall, 3),
        "sim_metrics_wall_s": round(metrics_wall, 3),
    }


def print_measurement(entry: Dict) -> None:
    scale = entry["scale"]
    print(
        f"core bench: {scale['schedulers']} schedulers x "
        f"{scale['sequences']} sequences x {scale['events']} events"
    )
    print(
        f"engine schedule: {entry['engine_schedule_events_per_sec']:>10,} "
        f"events/sec"
    )
    print(
        f"engine fire:     {entry['engine_fire_events_per_sec']:>10,} "
        f"events/sec"
    )
    print(
        f"full sim:        {entry['sim_events_per_sec']:>10,} events/sec "
        f"({entry['sim_events']:,} events in {entry['sim_wall_s']}s)"
    )
    print(
        f"metrics sim:     {entry['sim_metrics_events_per_sec']:>10,} "
        f"events/sec ({entry['sim_events']:,} events in "
        f"{entry['sim_metrics_wall_s']}s)"
    )
    print(
        f"queue remove:    {entry['queue_remove_ns_large']:>10,.0f} ns/op "
        f"at {QUEUE_SCALING_SIZES[1]:,} apps "
        f"({entry['queue_remove_scaling']}x vs {QUEUE_SCALING_SIZES[0]:,}; "
        f"O(1) limit {QUEUE_SCALING_MAX_RATIO}x)"
    )


# -- standalone modes -------------------------------------------------------
def _profile(num_sequences: int, num_events: int) -> int:
    """cProfile the full-simulation path and print the hot functions."""
    profiler = cProfile.Profile()
    profiler.enable()
    sim_throughput(num_sequences, num_events)
    profiler.disable()
    stats = pstats.Stats(profiler)
    print("top 25 by internal time (simulation core):")
    stats.sort_stats("tottime").print_stats(25)
    return 0


def _bench(num_sequences: int, num_events: int, out: Path) -> int:
    entry = measure(num_sequences, num_events)
    print_measurement(entry)
    entry = {
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        **entry,
    }
    if out.exists():
        trajectory = json.loads(out.read_text(encoding="utf-8"))
    else:
        trajectory = {"bench": "core", "unit": "events/sec", "history": []}
    trajectory["history"].append(entry)
    out.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    print(f"\nrecorded trajectory entry -> {out}")
    return 0


def _guard(num_sequences: int, num_events: int, baseline_path: Path) -> int:
    if not baseline_path.exists():
        print(f"guard: no baseline at {baseline_path}; run --bench first")
        return 1
    trajectory = json.loads(baseline_path.read_text(encoding="utf-8"))
    history = trajectory.get("history", [])
    if not history:
        print(f"guard: {baseline_path} has an empty history")
        return 1
    baseline_entry = history[-1]
    entry = measure(num_sequences, num_events)
    print_measurement(entry)
    print()
    failed = False

    def hold(key: str, baseline, current) -> None:
        nonlocal failed
        floor = baseline * (1.0 - GUARD_TOLERANCE)
        verdict = "OK" if current >= floor else "REGRESSION"
        failed = failed or current < floor
        print(
            f"guard: {key}: current {current:,} vs baseline {baseline:,} "
            f"(floor {floor:,.0f}, tolerance {GUARD_TOLERANCE:.0%}) "
            f"-> {verdict}"
        )

    for key in GUARD_KEYS:
        baseline = baseline_entry.get(key)
        if baseline is None:
            # Schema-1 baselines predate this rate; nothing to hold.
            print(f"guard: {key}: no baseline, skipped")
            continue
        hold(key, baseline, entry[key])

    service_baseline = _service_guard_baseline(trajectory)
    if not service_baseline:
        # Pre-schema-3 trajectory (or no proxy-scale entry): nothing to
        # hold on the service tier.
        print("guard: service tier: no schema-3 baseline entry, skipped")
        return 1 if failed else 0
    import bench_service

    service_entry = bench_service.measure(
        SERVICE_GUARD_SUBMISSIONS,
        rate_per_s=SERVICE_GUARD_RATE_PER_S,
        mode=SERVICE_GUARD_MODE,
    )
    print()
    bench_service.print_measurement(service_entry)
    print()
    for key in SERVICE_GUARD_KEYS:
        hold(f"service {key}", service_baseline[key], service_entry[key])
    # Informational (not guarded: the rate key above already moves if
    # replay stops engaging).
    print(
        f"guard: service replay hit rate: current "
        f"{service_entry['replay_hit_rate']:.2%} vs baseline "
        f"{service_baseline.get('replay_hit_rate', 0.0):.2%}"
    )
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Core bench: simulation events/sec + regression guard."
    )
    parser.add_argument("--sequences", type=int, default=3)
    parser.add_argument("--events", type=int, default=12)
    parser.add_argument(
        "--fast", action="store_true",
        help="reduced scale (2 sequences x 8 events) for CI",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the simulation hot path and print the breakdown",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help="measure and append a trajectory entry to BENCH_core.json",
    )
    parser.add_argument(
        "--guard", action="store_true",
        help="fail (exit 1) if any guarded rate (full sim, metrics sim, "
             "engine fire) drops >30%% below the last BENCH_core.json entry",
    )
    parser.add_argument(
        "--bench-out", default=str(DEFAULT_BENCH_PATH),
        help="trajectory file (default: repo-root BENCH_core.json)",
    )
    args = parser.parse_args(argv)

    if args.fast:
        num_sequences, num_events = 2, 8
    else:
        num_sequences, num_events = args.sequences, args.events

    if args.profile:
        return _profile(num_sequences, num_events)
    if args.bench:
        return _bench(num_sequences, num_events, Path(args.bench_out))
    if args.guard:
        return _guard(num_sequences, num_events, Path(args.bench_out))
    entry = measure(num_sequences, num_events)
    print_measurement(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
