"""Extension bench: seed sensitivity of the headline reduction.

Shape: magnitudes wobble across disjoint seed blocks (workload
composition varies) but the ordering — Nimblock beats PREMA and the
baseline — holds in every block.
"""

from __future__ import annotations

from repro.experiments import ext_seeds

from conftest import emit


def test_ext_seed_sensitivity(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: ext_seeds.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    for scheduler in result.schedulers:
        assert all(v > 1.0 for v in result.block_values(scheduler))
    assert result.ordering_stable("nimblock", "prema")
    emit(ext_seeds.format_result(result))
