"""Extension bench: sensitivity to HLS latency-estimate error.

Shape: reductions stay essentially flat out to ±40% error — ordering
decisions depend on order-of-magnitude contrasts between benchmarks, so
bounded per-task errors rarely flip them.
"""

from __future__ import annotations

from repro.experiments import ext_estimates

from conftest import emit


def test_ext_estimate_sensitivity(benchmark, settings):
    result = benchmark.pedantic(
        lambda: ext_estimates.run(settings=settings),
        rounds=1, iterations=1,
    )
    for scheduler in result.schedulers:
        assert result.degradation(scheduler) > 0.7, (
            f"{scheduler} degraded more than 30% under estimate error"
        )
    emit(ext_estimates.format_result(result))
