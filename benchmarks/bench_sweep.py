"""Sweep bench: the parallel experiment runner and its persistent cache.

The "sweep" is the paper's core evaluation grid — every scheduler over
every congestion scenario on the shared test sequences (the stimuli behind
Figures 5-7). This bench measures the three execution modes of the
harness and proves them interchangeable:

* **serial cold** — the classic one-process run;
* **parallel cold** — the same grid fanned out over worker processes via
  ``RunCache.prewarm``; the emitted JSON must be byte-identical;
* **disk warm** — a fresh process against a populated ``cache_dir``; it
  must perform **zero** simulations.

Standalone usage::

    # deterministic sweep dump (CI diffs serial vs parallel output)
    python benchmarks/bench_sweep.py --sequences 2 --events 8 --jobs 2 --out sweep.json

    # timing run: records the cold/parallel/warm trajectory entry
    python benchmarks/bench_sweep.py --bench [--fast] [--jobs N]

``--bench`` appends one entry to ``BENCH_sweep.json`` (repo root) — the
bench trajectory of the sweep harness over time.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.experiments.runner import ExperimentSettings, RunCache
from repro.schedulers.registry import ALL_SCHEDULERS
from repro.workload.scenarios import SCENARIOS, scenario_sequence

#: Default output of ``--bench`` mode: the sweep bench trajectory.
DEFAULT_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def sweep_payload(
    cache: RunCache,
    settings: ExperimentSettings,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
) -> Dict:
    """Run the full scenario x scheduler grid; deterministic JSON payload.

    Responses are reported per (scenario, scheduler, sequence label) in
    event order, so any divergence between two runs — ordering, timing,
    cache keying — shows up as a diff.
    """
    per_scenario = {
        scenario.name: [
            scenario_sequence(scenario, seed, settings.num_events)
            for seed in settings.seeds()
        ]
        for scenario in SCENARIOS
    }
    cache.prewarm(
        schedulers, [seq for seqs in per_scenario.values() for seq in seqs]
    )
    payload: Dict = {
        "sweep": "scenarios x schedulers",
        "schedulers": list(schedulers),
        "num_sequences": settings.num_sequences,
        "num_events": settings.num_events,
        "base_seed": settings.base_seed,
        "responses_ms": {},
        "mean_response_ms": {},
    }
    for name, sequences in per_scenario.items():
        payload["responses_ms"][name] = {}
        for scheduler in schedulers:
            per_label = {
                sequence.label: [
                    result.response_ms
                    for result in cache.results(scheduler, sequence)
                ]
                for sequence in sequences
            }
            payload["responses_ms"][name][scheduler] = per_label
            flat = [r for rs in per_label.values() for r in rs]
            payload["mean_response_ms"][f"{name}/{scheduler}"] = (
                sum(flat) / len(flat)
            )
    return payload


def render_payload(payload: Dict) -> str:
    """Canonical JSON text (byte-identical across identical sweeps)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# -- pytest-benchmark entry point -------------------------------------------
def test_sweep_regeneration(benchmark, cache, settings):
    payload = benchmark.pedantic(
        lambda: sweep_payload(cache, settings), rounds=1, iterations=1
    )
    assert set(payload["responses_ms"]) == {s.name for s in SCENARIOS}
    for scheduler in ALL_SCHEDULERS:
        for scenario in payload["responses_ms"].values():
            assert len(scenario[scheduler]) == settings.num_sequences

    from conftest import emit

    means = payload["mean_response_ms"]
    emit(
        "Sweep bench: mean response (ms) per scenario/scheduler\n"
        + "\n".join(f"{key}: {means[key]:.1f}" for key in sorted(means))
    )


# -- standalone modes -------------------------------------------------------
def _timed_sweep(
    settings: ExperimentSettings,
    jobs: int,
    cache_dir: Optional[str] = None,
) -> tuple:
    cache = RunCache(cache_dir=cache_dir, jobs=jobs)
    start = time.perf_counter()
    payload = sweep_payload(cache, settings)
    return time.perf_counter() - start, payload, cache


def _bench(settings: ExperimentSettings, jobs: int, out: Path) -> int:
    print(
        f"sweep bench: {settings.num_sequences} sequences x "
        f"{settings.num_events} events, {len(SCENARIOS)} scenarios x "
        f"{len(ALL_SCHEDULERS)} schedulers, jobs={jobs}"
    )
    serial_s, serial_payload, serial_cache = _timed_sweep(settings, jobs=1)
    print(f"serial cold:   {serial_s:8.2f}s "
          f"({serial_cache.simulations} simulations)")
    parallel_s, parallel_payload, parallel_cache = _timed_sweep(
        settings, jobs=jobs
    )
    print(f"parallel cold: {parallel_s:8.2f}s "
          f"({parallel_cache.simulations} simulations)")
    identical = render_payload(serial_payload) == render_payload(
        parallel_payload
    )
    assert identical, "parallel sweep diverged from serial sweep"

    with tempfile.TemporaryDirectory(prefix="runcache-") as cache_dir:
        _timed_sweep(settings, jobs=jobs, cache_dir=cache_dir)
        warm_s, warm_payload, warm_cache = _timed_sweep(
            settings, jobs=jobs, cache_dir=cache_dir
        )
    assert warm_cache.simulations == 0, (
        f"warm rerun re-simulated {warm_cache.simulations} runs"
    )
    assert render_payload(warm_payload) == render_payload(serial_payload)
    print(f"disk warm:     {warm_s:8.2f}s (0 simulations, "
          f"{warm_cache.disk_hits} disk hits)")

    entry = {
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "scale": {
            "scenarios": len(SCENARIOS),
            "schedulers": len(ALL_SCHEDULERS),
            "sequences": settings.num_sequences,
            "events": settings.num_events,
        },
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_cold_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_s, 3),
        "warm_disk_s": round(warm_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "warm_speedup": round(serial_s / warm_s, 1),
        "warm_simulations": warm_cache.simulations,
        "parallel_matches_serial": identical,
    }
    if out.exists():
        trajectory = json.loads(out.read_text(encoding="utf-8"))
    else:
        trajectory = {"bench": "sweep", "unit": "seconds", "history": []}
    trajectory["history"].append(entry)
    out.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\nrecorded trajectory entry -> {out}")
    print(f"parallel speedup {entry['parallel_speedup']}x, "
          f"warm-cache speedup {entry['warm_speedup']}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep bench: parallel runner + persistent run cache."
    )
    parser.add_argument("--sequences", type=int, default=3)
    parser.add_argument("--events", type=int, default=12)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent run cache for --out sweeps",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the deterministic sweep JSON here and exit",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help="time serial/parallel/warm modes and append to BENCH_sweep.json",
    )
    parser.add_argument(
        "--bench-out", default=str(DEFAULT_BENCH_PATH),
        help="trajectory file for --bench (default: repo-root BENCH_sweep.json)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="reduced scale (2 sequences x 8 events) for CI",
    )
    args = parser.parse_args(argv)

    from repro.experiments.parallel import effective_jobs

    jobs = effective_jobs(args.jobs)
    if args.fast:
        settings = ExperimentSettings(num_sequences=2, num_events=8)
    else:
        settings = ExperimentSettings(
            num_sequences=args.sequences, num_events=args.events
        )
    if args.bench:
        return _bench(settings, jobs=max(jobs, 2), out=Path(args.bench_out))
    if args.out:
        cache = RunCache(cache_dir=args.cache_dir, jobs=jobs)
        payload = sweep_payload(cache, settings)
        Path(args.out).write_text(
            render_payload(payload), encoding="utf-8"
        )
        print(
            f"{args.out}: {cache.simulations} simulations, "
            f"{cache.disk_hits} disk hits, jobs={jobs}"
        )
        return 0
    parser.error("choose a mode: --out FILE or --bench")
    return 2


if __name__ == "__main__":
    sys.exit(main())
