"""Extension bench: robustness across workload mixes.

Shapes: Nimblock wins every mix containing the long-running outlier;
token gating costs it the outlier-free short mix (see the experiment
docstring for why that trade-off is intentional).
"""

from __future__ import annotations

from repro.experiments import ext_mixes

from conftest import emit


def test_ext_workload_mixes(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: ext_mixes.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    for mix in ("balanced", "long_heavy"):
        assert result.best_scheduler(mix) == "nimblock"
    for mix in result.mixes:
        for scheduler in result.schedulers:
            assert result.reduction(mix, scheduler) > 0
    emit(ext_mixes.format_result(result))
