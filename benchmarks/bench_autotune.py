#!/usr/bin/env python3
"""Autotune bench: remediation is free when off, deterministic when on.

Three claims are pinned here:

* **Disabled is free.** A service run without an :class:`AutotuneConfig`
  executes zero remediation code: the only hot-path addition is an
  ``if self._tuner is not None`` guard, and no ``repro.autotune`` module
  is even imported (checked in a subprocess). A timing ratio between the
  un-armed path before/after arming exists backs the structural check.
* **Armed-but-quiet is invisible.** Arming the tuner over a calm
  workload (no symptoms fire) must yield a report payload identical to
  the un-armed run once the empty ``decisions``/``applies`` keys are
  stripped — the closed loop only perturbs a run it actually patches.
* **Decisions are reproducible.** The overload drill
  (:func:`repro.facade.tune`) at guard scale produces byte-identical
  JSON at ``--jobs 1`` and ``--jobs 2``, and its payload digest matches
  the golden pin below — any change to detector thresholds, proposer
  rules, verifier ranking, or the apply boundary shows up as a pin
  break, which is the point: re-pin deliberately, never accidentally.

Standalone usage::

    python benchmarks/bench_autotune.py --guard [--fast]  # CI gate
    python benchmarks/bench_autotune.py --bench [--fast]  # record timings

``--bench`` appends one entry to ``BENCH_autotune.json`` (repo root).
``--guard`` exits non-zero if any structural, equality, determinism or
golden-pin check fails.
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

#: Default output of ``--bench`` mode.
DEFAULT_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_autotune.json"
)

#: The un-armed path may cost at most this fraction of the armed-quiet
#: path (1.05 = within 5%; in practice it is strictly cheaper).
GUARD_THRESHOLD = 1.05

#: Calm workload for the armed-but-quiet equality check: 0.2/s Poisson
#: never backs the queue up, so no symptom can fire.
QUIET_TASK = ("nimblock", "unbounded", 0.2, 0.0, 1, 40, 10_000.0,
              "metrics", True)

#: Subprocess probe: a plain service run must not import repro.autotune.
_STRUCTURAL_PROBE = """
import sys
from repro.facade import serve
report = serve('nimblock', rate=1.0, submissions=40, mode='metrics')
assert report.completed + report.shed + report.dropped == report.arrived
bad = sorted(m for m in sys.modules if 'autotune' in m)
if bad:
    raise SystemExit('autotune modules loaded on a plain run: %s' % bad)
"""


def structural_check() -> None:
    """A plain service run must not load repro.autotune (raises)."""
    subprocess.run([sys.executable, "-c", _STRUCTURAL_PROBE], check=True)


def armed_quiet_check() -> None:
    """Armed over a calm run == un-armed run, byte for byte."""
    from repro.autotune import AutotuneConfig
    from repro.experiments.parallel import service_cells

    plain, armed = service_cells(
        [QUIET_TASK, QUIET_TASK + (AutotuneConfig(),)], jobs=1
    )
    if armed.get("decisions") or armed.get("applies"):
        raise SystemExit(
            f"armed-quiet run made decisions: {armed['decisions']}"
        )
    stripped = {
        k: v for k, v in armed.items() if k not in ("decisions", "applies")
    }
    if stripped != plain:
        raise SystemExit(
            "armed-but-quiet payload differs from the un-armed run"
        )


def drill_payload(jobs: int, fast: bool) -> dict:
    """The overload drill at guard or full scale."""
    from repro.facade import tune

    if fast:
        return tune(rate=2.0, submissions=240, seed=1,
                    window_ms=10_000.0, mode="metrics", jobs=jobs)
    return tune(rate=1.0, submissions=600, seed=1,
                window_ms=10_000.0, mode="metrics", jobs=jobs)


def determinism_check(fast: bool) -> dict:
    """Drill payload must be byte-identical at jobs 1 and jobs 2."""
    serial = drill_payload(1, fast)
    sharded = drill_payload(2, fast)
    a = json.dumps(serial, sort_keys=True)
    b = json.dumps(sharded, sort_keys=True)
    if a != b:
        raise SystemExit("tune() payload differs between --jobs 1 and 2")
    return serial


def golden_pin_check(payload: dict, pins: Dict[bool, str], fast: bool):
    pinned = pins.get(fast)
    if pinned is None:
        return
    if payload["digest"] != pinned:
        raise SystemExit(
            f"tune() digest {payload['digest']} != golden pin {pinned}; "
            "re-pin only for a deliberate pipeline change"
        )


def _load_pins() -> Dict[bool, str]:
    """Golden digests live next to this file, keyed by scale."""
    path = Path(__file__).with_suffix(".golden.json")
    if not path.exists():
        return {}
    raw = json.loads(path.read_text())
    return {entry["fast"]: entry["digest"] for entry in raw}


def _write_pin(payload: dict, fast: bool) -> Path:
    path = Path(__file__).with_suffix(".golden.json")
    raw = json.loads(path.read_text()) if path.exists() else []
    raw = [entry for entry in raw if entry["fast"] != fast]
    raw.append({"fast": fast, "digest": payload["digest"]})
    raw.sort(key=lambda entry: entry["fast"])
    path.write_text(json.dumps(raw, indent=2) + "\n")
    return path


def measure(fast: bool) -> Dict[str, float]:
    """Interleaved un-armed/armed-quiet medians (absorbs drift)."""
    from repro.autotune import AutotuneConfig
    from repro.experiments.parallel import service_cells

    # replay=False on both sides: arming disables the replay cache, so
    # a replaying un-armed run would pay cache recording the armed run
    # skips — the timing must compare live path against live path.
    submissions = 120 if fast else 400
    task = (QUIET_TASK[:5] + (submissions,) + QUIET_TASK[6:8]
            + (False,))
    repetitions = 3 if fast else 5
    service_cells([task], jobs=1)  # warm caches
    plain: List[float] = []
    armed: List[float] = []
    for _ in range(repetitions):
        for bucket, cell in ((plain, task),
                             (armed, task + (AutotuneConfig(),))):
            started = time.perf_counter()
            service_cells([cell], jobs=1)
            bucket.append(time.perf_counter() - started)
    plain_s = statistics.median(plain)
    armed_s = statistics.median(armed)
    return {
        "plain_s": plain_s,
        "armed_quiet_s": armed_s,
        "armed_overhead_pct": 100.0 * (armed_s / plain_s - 1.0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", action="store_true",
                        help="record a timing entry to BENCH_autotune.json")
    parser.add_argument("--guard", action="store_true",
                        help="CI mode: fail on structural, equality, "
                             "determinism or golden-pin drift")
    parser.add_argument("--pin", action="store_true",
                        help="(re)write the golden digest for this scale")
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale for CI")
    parser.add_argument("--out", type=Path, default=DEFAULT_BENCH_PATH)
    args = parser.parse_args(argv)

    structural_check()
    print("structural check: plain runs import no autotune module")
    armed_quiet_check()
    print("armed-but-quiet check: payload identical to the un-armed run")

    payload = determinism_check(args.fast)
    print(
        f"determinism check: --jobs 1 == --jobs 2 "
        f"(digest {payload['digest'][:16]}..., "
        f"{payload['tuned'].get('applies', 0)} applies)"
    )
    if args.pin:
        path = _write_pin(payload, args.fast)
        print(f"pinned digest -> {path}")
    else:
        golden_pin_check(payload, _load_pins(), args.fast)
        print("golden pin check: digest matches")

    timings = measure(args.fast)
    print(
        f"plain {timings['plain_s'] * 1e3:8.1f} ms   "
        f"armed-quiet {timings['armed_quiet_s'] * 1e3:8.1f} ms   "
        f"armed overhead {timings['armed_overhead_pct']:+.1f}%"
    )

    if args.guard:
        ratio = timings["plain_s"] / timings["armed_quiet_s"]
        if ratio > GUARD_THRESHOLD:
            print(
                f"GUARD FAILED: un-armed path at {ratio:.3f}x of the "
                f"armed path (limit {GUARD_THRESHOLD}) — the no-tuner "
                "path is doing remediation work",
                file=sys.stderr,
            )
            return 1
        print(f"overhead guard OK (plain/armed = {ratio:.3f})")

    if args.bench:
        entry = {
            "timestamp": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "fast": args.fast,
            "digest": payload["digest"],
            **{k: round(v, 6) for k, v in timings.items()},
        }
        history = []
        if args.out.exists():
            history = json.loads(args.out.read_text())
        history.append(entry)
        args.out.write_text(json.dumps(history, indent=2) + "\n")
        print(f"recorded -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
