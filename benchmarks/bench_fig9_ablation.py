"""Regenerate Figure 9: ablation of preemption and pipelining.

Paper shapes: removing preemption costs ~1.07-1.14x, removing pipelining
~1.2x, removing both is only marginally worse than removing pipelining
alone; batch size 1 shows no ablation effect.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig9_ablation

from conftest import emit


def test_fig9_ablation(benchmark, cache, settings):
    result = benchmark.pedantic(
        lambda: fig9_ablation.run(cache=cache, settings=settings),
        rounds=1, iterations=1,
    )
    for variant in result.variants:
        assert result.relative_response(1, variant) == pytest.approx(
            1.0, abs=0.25
        )
    for batch in result.batch_sizes:
        if batch == 1:
            continue
        # Ablations never beat the full algorithm meaningfully, and the
        # no-pipe variants overlap (preemption is moot without pipelining).
        assert result.relative_response(batch, "nimblock_no_preempt") >= 0.95
        assert result.relative_response(batch, "nimblock_no_pipe") >= 0.95
        assert result.relative_response(
            batch, "nimblock_no_preempt_no_pipe"
        ) == pytest.approx(
            result.relative_response(batch, "nimblock_no_pipe"), rel=0.15
        )
    emit(fig9_ablation.format_result(result))
