#!/usr/bin/env python3
"""Serverless FPGA acceleration: functions, invocations, and SLOs.

The paper motivates FPGA virtualization as the enabler for serverless
computing (§1). This example stands up a FaaS gateway over the Nimblock
hypervisor, registers three accelerated functions with service-level
objectives, replays a bursty invocation trace and reports per-function
latency and SLO compliance.

Run:
    python examples/faas_serverless.py
"""

from __future__ import annotations

import random

from repro import Hypervisor, make_scheduler
from repro.hypervisor.faas import FaaSGateway


def main() -> None:
    gateway = FaaSGateway(Hypervisor(make_scheduler("nimblock")))

    # SLO = factor x single-slot latency (the paper's deadline convention).
    gateway.register_benchmark("imgc", function_name="compress",
                               default_priority=3, slo_factor=3.0)
    gateway.register_benchmark("lenet", function_name="classify",
                               default_priority=9, slo_factor=2.0)
    gateway.register_benchmark("3dr", function_name="render",
                               default_priority=1, slo_factor=6.0)
    print(f"registered functions: {', '.join(gateway.functions())}")

    rng = random.Random(2023)
    now = 0.0
    invocations = 0
    for _ in range(30):
        now += rng.uniform(30.0, 250.0)
        function = rng.choice(gateway.functions())
        gateway.invoke(function, at_ms=now,
                       batch_size=rng.randint(1, 8))
        invocations += 1
    print(f"replaying {invocations} invocations over {now / 1000:.1f} s\n")

    gateway.run()

    by_function = {}
    for outcome in gateway.outcomes():
        by_function.setdefault(outcome.function, []).append(outcome)

    print(f"{'function':10s} {'calls':>5s} {'mean latency':>13s} "
          f"{'p max':>9s} {'SLO met':>8s}")
    print("-" * 52)
    compliance = gateway.slo_compliance()
    for name in gateway.functions():
        outcomes = by_function.get(name, [])
        if not outcomes:
            continue
        latencies = [o.latency_ms for o in outcomes]
        print(
            f"{name:10s} {len(outcomes):5d} "
            f"{sum(latencies) / len(latencies):10.0f} ms "
            f"{max(latencies):6.0f} ms {compliance[name]:8.0%}"
        )


if __name__ == "__main__":
    main()
