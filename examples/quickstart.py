#!/usr/bin/env python3
"""Quickstart: share a simulated ZCU106 among three applications.

Builds the paper's platform (ten slots, 80 ms partial reconfiguration),
submits three benchmark applications with different priorities and batch
sizes, schedules them with Nimblock, and prints per-application response
times plus the board-level activity summary.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AppRequest,
    Hypervisor,
    get_benchmark,
    make_scheduler,
)
from repro.sim.trace import TraceKind


def main() -> None:
    hypervisor = Hypervisor(make_scheduler("nimblock"))

    submissions = [
        ("of", 5, 3, 0.0),        # optical flow, batch 5, medium priority
        ("lenet", 10, 9, 200.0),  # LeNet, batch 10, high priority
        ("imgc", 8, 1, 400.0),    # image compression, batch 8, low priority
    ]
    for name, batch, priority, arrival in submissions:
        app = get_benchmark(name)
        hypervisor.submit(
            AppRequest(
                name=app.name,
                graph=app.graph,
                batch_size=batch,
                priority=priority,
                arrival_ms=arrival,
            )
        )

    hypervisor.run()

    print("application results")
    print("-" * 66)
    for result in hypervisor.results():
        print(
            f"  {result.name:8s} batch={result.batch_size:<3d} "
            f"prio={result.priority}  response={result.response_ms:8.0f} ms  "
            f"wait={result.wait_ms:6.0f} ms  reconfigs={result.reconfig_count}"
        )

    configs = len(hypervisor.trace.of_kind(TraceKind.TASK_CONFIG_DONE))
    items = len(hypervisor.trace.of_kind(TraceKind.ITEM_DONE))
    print("-" * 66)
    print(
        f"board activity: {configs} partial reconfigurations, "
        f"{items} batch items, "
        f"CAP busy {hypervisor.device.port.busy_ms:.0f} ms, "
        f"peak buffer use {hypervisor.buffers.peak_bytes // 1024} KiB"
    )


if __name__ == "__main__":
    main()
