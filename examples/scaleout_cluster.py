#!/usr/bin/env python3
"""Scale-out: one arrival stream across a growing FPGA fleet.

The paper names scale-out as a core virtualization feature (§1). This
example replays the same stress-test arrival stream against fleets of one
to four virtualized FPGAs (each running its own Nimblock scheduler) and
compares the two dispatch policies of the cluster front-end.

Run:
    python examples/scaleout_cluster.py
"""

from __future__ import annotations

from repro import STRESS, scenario_sequence
from repro.hypervisor.cluster import DISPATCH_POLICIES, FPGACluster


def run_fleet(num_devices: int, dispatch: str, sequence):
    cluster = FPGACluster(num_devices, dispatch=dispatch)
    for request in sequence.to_requests():
        cluster.submit(request)
    cluster.run()
    return cluster


def main() -> None:
    sequence = scenario_sequence(STRESS, seed=7, num_events=20)
    print(
        f"stress stream: {len(sequence)} applications over "
        f"{sequence.span_ms / 1000:.1f} s "
        f"({', '.join(sequence.benchmarks_used())})\n"
    )

    print(f"{'devices':>8s}" + "".join(
        f"{d + ' (s)':>20s}{'placement':>14s}" for d in DISPATCH_POLICIES
    ))
    print("-" * (8 + 34 * len(DISPATCH_POLICIES)))
    for devices in (1, 2, 3, 4):
        row = f"{devices:8d}"
        for dispatch in DISPATCH_POLICIES:
            cluster = run_fleet(devices, dispatch, sequence)
            mean_s = cluster.mean_response_ms() / 1000.0
            placement = "/".join(
                str(count) for count in cluster.device_utilization()
            )
            row += f"{mean_s:20.1f}{placement:>14s}"
        print(row)

    print(
        "\nleast-loaded dispatch uses the hypervisor's HLS-based work "
        "estimates, so kilosecond applications (digit recognition) land "
        "alone while short applications pack together."
    )


if __name__ == "__main__":
    main()
