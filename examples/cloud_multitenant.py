#!/usr/bin/env python3
"""Cloud multi-tenancy: five schedulers on one bursty tenant mix.

Models the paper's stress scenario — twenty applications arriving
150-200 ms apart with random batch sizes and priorities — and runs the
identical stimulus through all five scheduling algorithms, reporting the
mean response-time reduction each achieves over the no-sharing baseline
(a single-sequence Figure 5).

Run:
    python examples/cloud_multitenant.py [seed]
"""

from __future__ import annotations

import sys

from repro import Hypervisor, STRESS, make_scheduler, scenario_sequence
from repro.metrics.response import ResponseStats, mean_reduction_factor
from repro.schedulers.registry import ALL_SCHEDULERS


def run_one(scheduler_name: str, sequence):
    hypervisor = Hypervisor(make_scheduler(scheduler_name))
    for request in sequence.to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    return hypervisor.results()


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    sequence = scenario_sequence(STRESS, seed=seed, num_events=20)
    print(
        f"stress scenario, seed {seed}: {len(sequence)} events over "
        f"{sequence.span_ms / 1000:.1f} s, "
        f"benchmarks {', '.join(sequence.benchmarks_used())}"
    )

    runs = {name: run_one(name, sequence) for name in ALL_SCHEDULERS}
    baseline = runs["baseline"]
    base_mean = sum(r.response_ms for r in baseline) / len(baseline)
    print(f"\nbaseline mean response: {base_mean / 1000:.1f} s\n")

    print(f"{'scheduler':12s} {'mean resp (s)':>14s} {'reduction':>10s} "
          f"{'p95 norm':>9s} {'p99 norm':>9s}")
    print("-" * 60)
    for name in ALL_SCHEDULERS:
        results = runs[name]
        mean = sum(r.response_ms for r in results) / len(results)
        if name == "baseline":
            print(f"{name:12s} {mean / 1000:14.1f} {'1.00x':>10s}")
            continue
        stats = ResponseStats.compute(name, baseline, results)
        reduction = mean_reduction_factor(baseline, results)
        print(
            f"{name:12s} {mean / 1000:14.1f} {reduction:9.2f}x "
            f"{stats.p95_normalized:9.2f} {stats.p99_normalized:9.2f}"
        )


if __name__ == "__main__":
    main()
