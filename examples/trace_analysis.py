#!/usr/bin/env python3
"""Post-mortem of one run: timeline art, utilization, spans, exports.

Runs a small shared workload under Nimblock with instrumentation
attached, then demonstrates the analysis tooling: the slot-occupancy
timeline (Figure 2-style), the board-utilization breakdown, a deadline
check, the observability layer (spans, metrics, a Perfetto-loadable
Chrome trace — see docs/observability.md), and CSV/JSON/trace exports
for external tools.

Run:
    python examples/trace_analysis.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import AppRequest, Hypervisor, get_benchmark, make_scheduler
from repro.experiments.export import export_csv, export_json
from repro.metrics.utilization import board_utilization
from repro.observe import Instrumentation, build_spans
from repro.observe.exporters import save_chrome_trace
from repro.observe.spans import config_port_busy_ms, spans_by_category
from repro.sim.timeline import render_timeline
from repro.sim.trace_export import save_trace


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="nimblock-run-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    observer = Instrumentation()
    hypervisor = Hypervisor(make_scheduler("nimblock"), observer=observer)
    for name, batch, priority, arrival in [
        ("lenet", 6, 3, 0.0),
        ("imgc", 8, 9, 150.0),
        ("3dr", 4, 1, 300.0),
    ]:
        app = get_benchmark(name)
        hypervisor.submit(
            AppRequest(app.name, app.graph, batch_size=batch,
                       priority=priority, arrival_ms=arrival)
        )
    hypervisor.run()
    observer.finalize(hypervisor)

    print("slot occupancy (first 3 seconds):")
    print(render_timeline(hypervisor.trace, num_slots=10,
                          start_ms=0.0, end_ms=3000.0, width=72))

    report = board_utilization(hypervisor.trace, 10)
    print(
        f"\nutilization over {report.window_ms / 1000:.1f} s: "
        f"compute {report.compute_fraction:.1%}, "
        f"reconfig {report.reconfig_fraction:.2%}, "
        f"resident-idle {report.idle_resident_fraction:.1%}, "
        f"empty {report.empty_fraction:.1%}"
    )

    results = hypervisor.results()
    print("\nper-application outcomes:")
    for result in results:
        slo = "OK " if not result.violates_deadline(3.0) else "MISS"
        print(
            f"  [{slo}] {result.name:6s} response "
            f"{result.response_ms:7.0f} ms "
            f"({result.reconfig_count} reconfigs, "
            f"{result.preemption_count} preemptions)"
        )

    spans = build_spans(hypervisor.trace)
    by_category = spans_by_category(spans)
    print(
        f"\nspans: {len(spans)} total — "
        + ", ".join(f"{len(group)} {cat}"
                    for cat, group in sorted(by_category.items()))
    )
    print(f"config port held for {config_port_busy_ms(spans):.0f} ms "
          "(the serialized-DPR bottleneck, span-level)")
    snapshot = observer.snapshot()
    counters = snapshot["counters"]
    print(
        f"metrics: {int(counters['nimblock_apps_retired_total']['value'])} "
        f"apps retired, {int(counters['nimblock_dpr_total']['value'])} "
        f"reconfigs, "
        f"{int(counters['nimblock_preemptions_total']['value'])} preemptions"
    )

    csv_path = export_csv(results, out_dir / "results.csv")
    json_path = export_json(results, out_dir / "results.json", label="demo")
    trace_path = save_trace(hypervisor.trace, out_dir / "trace.json",
                            label="demo")
    chrome_path = save_chrome_trace(hypervisor.trace,
                                    out_dir / "perfetto.json")
    print(
        f"\nexported: {csv_path.name}, {json_path.name}, "
        f"{trace_path.name}, {chrome_path.name} -> {out_dir}"
    )
    print("load perfetto.json at https://ui.perfetto.dev for the timeline")


if __name__ == "__main__":
    main()
