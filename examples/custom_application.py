#!/usr/bin/env python3
"""Bring your own accelerator: partition, analyze, and schedule a new app.

Walks the full Nimblock onboarding flow for a custom application that is
not part of the benchmark suite:

1. describe the application as layers with resource demands and HLS
   latency estimates;
2. partition it into slot-sized tasks (the automatic flow of §2.2);
3. synthesize HLS reports and check every task fits one overlay slot;
4. run the DML-style saturation analysis to find its goal number;
5. schedule it against background benchmark traffic under Nimblock.

Run:
    python examples/custom_application.py
"""

from __future__ import annotations

from repro import AppRequest, Hypervisor, ZCU106_CONFIG, get_benchmark, make_scheduler
from repro.apps.hls import reports_for_benchmark
from repro.core.saturation import SaturationAnalyzer
from repro.overlay.floorplan import Floorplan
from repro.taskgraph.partition import LayerSpec, partition_layers


def build_custom_app():
    """A video-analytics pipeline: decode, two-stage detect, track, encode."""
    layers = [
        LayerSpec("decode", 0.55, 40.0),
        LayerSpec("detect_a", 0.50, 120.0),
        LayerSpec("detect_b", 0.50, 120.0),
        LayerSpec("nms", 0.30, 15.0),
        LayerSpec("track", 0.35, 30.0),
        LayerSpec("encode", 0.60, 45.0),
    ]
    return partition_layers("vision", layers, slot_capacity=1.0)


def main() -> None:
    graph = build_custom_app()
    print(f"partitioned 'vision' into {graph.num_tasks} tasks, "
          f"{graph.num_edges} edges; stages: "
          f"{[graph.task(t).stage for t in graph.topological_order]}")

    reports = reports_for_benchmark(graph)
    plan = Floorplan.zcu106()
    assert all(
        plan.task_fits_slot(report.resources) for report in reports.values()
    ), "a partitioned task does not fit one slot"
    print("every task fits a single overlay slot "
          f"({plan.num_slots} slots available)")

    analyzer = SaturationAnalyzer(ZCU106_CONFIG)
    batch = 12
    sweep = analyzer.sweep(graph, batch)
    goal = analyzer.goal_number(graph, batch)
    print(f"\nsaturation sweep (batch {batch}), isolated latency by slots:")
    for slots, latency in enumerate(sweep, start=1):
        marker = "  <- goal number" if slots == goal else ""
        print(f"  {slots:2d} slots: {latency / 1000:7.2f} s{marker}")

    hypervisor = Hypervisor(make_scheduler("nimblock"))
    hypervisor.submit(
        AppRequest("vision", graph, batch_size=batch, priority=9,
                   arrival_ms=0.0)
    )
    for index, name in enumerate(["of", "lenet", "imgc"]):
        app = get_benchmark(name)
        hypervisor.submit(
            AppRequest(app.name, app.graph, batch_size=5, priority=3,
                       arrival_ms=100.0 * (index + 1))
        )
    hypervisor.run()

    print("\nscheduled against background traffic under Nimblock:")
    for result in hypervisor.results():
        print(
            f"  {result.name:8s} response={result.response_ms / 1000:7.2f} s "
            f"(wait {result.wait_ms:6.0f} ms, "
            f"{result.reconfig_count} reconfigs, "
            f"{result.preemption_count} preemptions)"
        )


if __name__ == "__main__":
    main()
