#!/usr/bin/env python3
"""Real-time streaming with deadline guarantees and batch-preemption.

Reproduces the paper's real-time congestion scenario (50 ms between
arrivals) and contrasts Nimblock with and without preemption: violation
rates for high-priority applications across deadline scaling factors, and
the number of batch-preemptions Nimblock used to get there.

Run:
    python examples/realtime_deadlines.py
"""

from __future__ import annotations

from repro import Hypervisor, REALTIME, make_scheduler, scenario_sequence
from repro.metrics.deadlines import deadline_curve
from repro.sim.trace import TraceKind


def run_one(scheduler_name: str, sequences):
    results = []
    preemptions = 0
    for sequence in sequences:
        hypervisor = Hypervisor(make_scheduler(scheduler_name))
        for request in sequence.to_requests():
            hypervisor.submit(request)
        hypervisor.run()
        results.extend(hypervisor.results())
        preemptions += len(hypervisor.trace.of_kind(TraceKind.TASK_PREEMPTED))
    return results, preemptions


def main() -> None:
    sequences = [
        scenario_sequence(REALTIME, seed, num_events=20)
        for seed in (1, 2, 3)
    ]
    contenders = ("prema", "nimblock_no_preempt", "nimblock")

    print("deadline violation rate for priority-9 applications")
    print("(deadline = D_s x single-slot latency, paper §5.4)\n")
    header = f"{'D_s':>6s}" + "".join(f"{name:>22s}" for name in contenders)
    print(header)
    print("-" * len(header))

    curves = {}
    preempt_counts = {}
    for name in contenders:
        results, preemptions = run_one(name, sequences)
        curves[name] = deadline_curve(name, results, priority=9)
        preempt_counts[name] = preemptions

    for ds in (1.0, 1.5, 2.0, 3.0, 5.0, 8.0):
        row = f"{ds:6.2f}"
        for name in contenders:
            row += f"{curves[name].rate_at(ds):22.2%}"
        print(row)

    print()
    for name in contenders:
        point = curves[name].error_point(0.10)
        shown = "never" if point is None else f"D_s = {point:.2f}"
        print(
            f"{name:22s} 10% error point: {shown:>12s}   "
            f"batch-preemptions used: {preempt_counts[name]}"
        )


if __name__ == "__main__":
    main()
