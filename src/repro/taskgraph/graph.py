"""DAG model for partitioned applications.

Each node is a :class:`TaskSpec` — a slot-sized unit of work with an HLS
latency estimate for processing **one batch item**. Edges carry data
dependencies: task ``t`` may process batch item ``b`` only after every
predecessor of ``t`` has produced item ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import TaskGraphError


@dataclass(frozen=True)
class TaskSpec:
    """One slot-sized task of an application.

    Parameters
    ----------
    task_id:
        Identifier unique within the application graph.
    latency_ms:
        HLS-estimated execution time for one batch item on one slot.
    stage:
        Optional pipeline-stage label (tasks split from the same layer share
        a stage; this mirrors the vertex colors of Figure 4).
    """

    task_id: str
    latency_ms: float
    stage: int = 0

    def __post_init__(self) -> None:
        if not self.task_id:
            raise TaskGraphError("task_id must be non-empty")
        if self.latency_ms <= 0:
            raise TaskGraphError(
                f"task {self.task_id!r} latency must be > 0, got {self.latency_ms}"
            )


class TaskGraph:
    """An immutable application DAG.

    The constructor validates the graph: unique task ids, edges between
    existing nodes, no self loops, no cycles. Topological order is computed
    once (Kahn's algorithm with deterministic tie-breaking by insertion
    order) and reused by the schedulers.
    """

    def __init__(
        self,
        name: str,
        tasks: Sequence[TaskSpec],
        edges: Iterable[Tuple[str, str]],
    ) -> None:
        if not name:
            raise TaskGraphError("graph name must be non-empty")
        if not tasks:
            raise TaskGraphError(f"graph {name!r} must contain at least one task")
        self._name = name
        self._tasks: Dict[str, TaskSpec] = {}
        for spec in tasks:
            if spec.task_id in self._tasks:
                raise TaskGraphError(
                    f"duplicate task id {spec.task_id!r} in graph {name!r}"
                )
            self._tasks[spec.task_id] = spec

        self._preds: Dict[str, List[str]] = {tid: [] for tid in self._tasks}
        self._succs: Dict[str, List[str]] = {tid: [] for tid in self._tasks}
        edge_set = set()
        for src, dst in edges:
            if src not in self._tasks or dst not in self._tasks:
                raise TaskGraphError(
                    f"edge ({src!r}, {dst!r}) references unknown task in {name!r}"
                )
            if src == dst:
                raise TaskGraphError(f"self loop on {src!r} in graph {name!r}")
            if (src, dst) in edge_set:
                raise TaskGraphError(
                    f"duplicate edge ({src!r}, {dst!r}) in graph {name!r}"
                )
            edge_set.add((src, dst))
            self._succs[src].append(dst)
            self._preds[dst].append(src)
        self._edges: Tuple[Tuple[str, str], ...] = tuple(sorted(edge_set))
        self._topo: Tuple[str, ...] = self._toposort()
        self._topo_index: Dict[str, int] = {
            tid: i for i, tid in enumerate(self._topo)
        }
        # Hot-path accessors return these prebuilt immutable views instead
        # of copying per call (graphs are immutable after construction).
        self._pred_tuples: Dict[str, Tuple[str, ...]] = {
            tid: tuple(preds) for tid, preds in self._preds.items()
        }
        self._succ_tuples: Dict[str, Tuple[str, ...]] = {
            tid: tuple(succs) for tid, succs in self._succs.items()
        }
        self._tasks_view: Mapping[str, TaskSpec] = MappingProxyType(
            self._tasks
        )

    def _toposort(self) -> Tuple[str, ...]:
        indegree = {tid: len(self._preds[tid]) for tid in self._tasks}
        ready = [tid for tid in self._tasks if indegree[tid] == 0]
        order: List[str] = []
        while ready:
            tid = ready.pop(0)
            order.append(tid)
            for succ in self._succs[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            raise TaskGraphError(f"graph {self._name!r} contains a cycle")
        return tuple(order)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Application name."""
        return self._name

    @property
    def num_tasks(self) -> int:
        """Number of tasks (Table 2 column 2)."""
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        """Number of dependency edges (Table 2 column 3)."""
        return len(self._edges)

    @property
    def tasks(self) -> Mapping[str, TaskSpec]:
        """Read-only mapping of task id to :class:`TaskSpec` (cached view)."""
        return self._tasks_view

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """All edges, sorted."""
        return self._edges

    @property
    def topological_order(self) -> Tuple[str, ...]:
        """Deterministic topological ordering of the task ids."""
        return self._topo

    def task(self, task_id: str) -> TaskSpec:
        """The :class:`TaskSpec` for ``task_id``."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskGraphError(
                f"unknown task {task_id!r} in graph {self._name!r}"
            ) from None

    def predecessors(self, task_id: str) -> Tuple[str, ...]:
        """Task ids that must produce an item before ``task_id`` consumes it."""
        try:
            return self._pred_tuples[task_id]
        except KeyError:
            raise TaskGraphError(
                f"unknown task {task_id!r} in graph {self._name!r}"
            ) from None

    def successors(self, task_id: str) -> Tuple[str, ...]:
        """Task ids that consume the output of ``task_id``."""
        try:
            return self._succ_tuples[task_id]
        except KeyError:
            raise TaskGraphError(
                f"unknown task {task_id!r} in graph {self._name!r}"
            ) from None

    def topo_index(self, task_id: str) -> int:
        """Position of ``task_id`` in the topological order."""
        self.task(task_id)
        return self._topo_index[task_id]

    def sources(self) -> Tuple[str, ...]:
        """Tasks with no predecessors."""
        return tuple(t for t in self._topo if not self._preds[t])

    def sinks(self) -> Tuple[str, ...]:
        """Tasks with no successors."""
        return tuple(t for t in self._topo if not self._succs[t])

    # ------------------------------------------------------------------
    # Derived structure used by the schedulers
    # ------------------------------------------------------------------
    def total_latency_ms(self) -> float:
        """Sum of all task latencies for one batch item."""
        return sum(spec.latency_ms for spec in self._tasks.values())

    def critical_path_ms(self) -> float:
        """Longest dependency chain measured in per-item latency."""
        longest: Dict[str, float] = {}
        for tid in self._topo:
            base = max((longest[p] for p in self._preds[tid]), default=0.0)
            longest[tid] = base + self._tasks[tid].latency_ms
        return max(longest.values())

    def depth(self) -> int:
        """Number of tasks on the longest dependency chain."""
        level: Dict[str, int] = {}
        for tid in self._topo:
            level[tid] = 1 + max((level[p] for p in self._preds[tid]), default=0)
        return max(level.values())

    def max_width(self) -> int:
        """Maximum number of tasks sharing the same dependency depth.

        This approximates "the number of parallel paths in the graph"
        (paper §4.2) and upper-bounds useful same-stage parallelism.
        Cached: graphs are immutable and the schedulers call this per
        allocation pass.
        """
        cached = getattr(self, "_max_width_cache", None)
        if cached is not None:
            return cached
        level: Dict[str, int] = {}
        for tid in self._topo:
            level[tid] = 1 + max((level[p] for p in self._preds[tid]), default=0)
        counts: Dict[int, int] = {}
        for lvl in level.values():
            counts[lvl] = counts.get(lvl, 0) + 1
        width = max(counts.values())
        self._max_width_cache = width
        return width

    def ancestors(self, task_id: str) -> FrozenSet[str]:
        """Transitive predecessors of ``task_id``."""
        self.task(task_id)
        seen: set = set()
        stack = list(self._preds[task_id])
        while stack:
            tid = stack.pop()
            if tid in seen:
                continue
            seen.add(tid)
            stack.extend(self._preds[tid])
        return frozenset(seen)

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self._name!r}, tasks={self.num_tasks}, "
            f"edges={self.num_edges})"
        )
