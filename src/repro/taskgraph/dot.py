"""Graphviz DOT export for task graphs (regenerates Figure 4).

The paper's Figure 4 draws AlexNet's 38-task graph with identical split
tasks sharing a color. ``to_dot`` emits equivalent Graphviz source: one
node per task, one fill color per stage, edges for dependencies. The
output renders with any stock ``dot`` install; no Python dependency is
taken.
"""

from __future__ import annotations

from typing import Dict, List

from repro.taskgraph.graph import TaskGraph

#: Fill palette cycled per stage (Graphviz X11 color names).
STAGE_COLORS = (
    "lightblue", "lightgoldenrod", "lightpink", "palegreen",
    "plum", "lightsalmon", "lightcyan", "wheat", "lavender",
    "honeydew",
)


def to_dot(graph: TaskGraph, rankdir: str = "TB") -> str:
    """Graphviz source for ``graph``, one color per stage (Figure 4)."""
    lines: List[str] = [
        f'digraph "{graph.name}" {{',
        f"  rankdir={rankdir};",
        '  node [shape=circle style=filled fontsize=10];',
    ]
    for task_id in graph.topological_order:
        spec = graph.task(task_id)
        color = STAGE_COLORS[spec.stage % len(STAGE_COLORS)]
        label = task_id[len(graph.name) + 1:] if task_id.startswith(
            graph.name
        ) else task_id
        lines.append(
            f'  "{task_id}" [label="{label}" fillcolor={color}];'
        )
    for src, dst in graph.edges:
        lines.append(f'  "{src}" -> "{dst}";')
    lines.append("}")
    return "\n".join(lines)


def stage_summary(graph: TaskGraph) -> List[Dict[str, object]]:
    """Per-stage layer summary: stage, width, per-task latency."""
    stages: Dict[int, List[str]] = {}
    for task_id in graph.topological_order:
        stages.setdefault(graph.task(task_id).stage, []).append(task_id)
    summary = []
    for stage in sorted(stages):
        members = stages[stage]
        summary.append(
            {
                "stage": stage,
                "width": len(members),
                "latency_ms": graph.task(members[0]).latency_ms,
            }
        )
    return summary
