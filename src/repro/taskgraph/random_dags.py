"""Seeded random DAG generation for fuzzing and synthetic workloads.

The paper notes Nimblock "is a general solution applicable to applications
with different characteristics" beyond the feed-forward benchmark suite.
These generators produce arbitrary layered and series-parallel DAGs with
controlled size and fan-out so tests (and users) can exercise the
scheduler far outside the six-benchmark envelope.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import TaskGraphError
from repro.taskgraph.graph import TaskGraph, TaskSpec


def random_layered_dag(
    seed: int,
    max_layers: int = 5,
    max_width: int = 4,
    latency_range_ms: Tuple[float, float] = (5.0, 200.0),
    edge_probability: float = 0.6,
    name: Optional[str] = None,
) -> TaskGraph:
    """A random layered DAG with sparse inter-layer edges.

    Every task keeps at least one predecessor in the previous layer (so
    the graph stays connected layer to layer) and additional edges appear
    with ``edge_probability``.
    """
    if max_layers < 1 or max_width < 1:
        raise TaskGraphError("max_layers and max_width must be >= 1")
    low, high = latency_range_ms
    if low <= 0 or high < low:
        raise TaskGraphError(f"bad latency range {latency_range_ms}")
    if not 0.0 <= edge_probability <= 1.0:
        raise TaskGraphError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    rng = random.Random(seed)
    name = name or f"rand{seed}"
    num_layers = rng.randint(1, max_layers)
    layers: List[List[TaskSpec]] = []
    for stage in range(num_layers):
        width = rng.randint(1, max_width)
        layers.append(
            [
                TaskSpec(
                    f"{name}_l{stage}n{i}",
                    rng.uniform(low, high),
                    stage=stage,
                )
                for i in range(width)
            ]
        )
    tasks = [spec for layer in layers for spec in layer]
    edges = []
    for prev, nxt in zip(layers, layers[1:]):
        for dst in nxt:
            anchors = [rng.choice(prev)]
            for src in prev:
                if src is not anchors[0] and rng.random() < edge_probability:
                    anchors.append(src)
            edges.extend((src.task_id, dst.task_id) for src in anchors)
    return TaskGraph(name, tasks, edges)


def random_series_parallel_dag(
    seed: int,
    depth: int = 3,
    latency_range_ms: Tuple[float, float] = (5.0, 200.0),
    name: Optional[str] = None,
) -> TaskGraph:
    """A random series-parallel DAG built by recursive composition.

    At each level the generator either chains two sub-blocks in series or
    runs them in parallel between a fork and a join task; recursion
    bottoms out in single tasks. Series-parallel graphs are the classic
    shape of media and signal-processing pipelines.
    """
    if depth < 0:
        raise TaskGraphError(f"depth must be >= 0, got {depth}")
    low, high = latency_range_ms
    if low <= 0 or high < low:
        raise TaskGraphError(f"bad latency range {latency_range_ms}")
    rng = random.Random(seed)
    name = name or f"sp{seed}"
    counter = {"n": 0}
    tasks: List[TaskSpec] = []
    edges: List[Tuple[str, str]] = []

    def new_task() -> str:
        task_id = f"{name}_t{counter['n']}"
        counter["n"] += 1
        tasks.append(TaskSpec(task_id, rng.uniform(low, high)))
        return task_id

    def build(level: int) -> Tuple[str, str]:
        """Returns (entry task, exit task) of a sub-block."""
        if level == 0 or rng.random() < 0.3:
            task_id = new_task()
            return task_id, task_id
        if rng.random() < 0.5:  # series
            first_in, first_out = build(level - 1)
            second_in, second_out = build(level - 1)
            edges.append((first_out, second_in))
            return first_in, second_out
        # parallel between fork and join
        fork = new_task()
        join = new_task()
        for _ in range(rng.randint(2, 3)):
            sub_in, sub_out = build(level - 1)
            edges.append((fork, sub_in))
            edges.append((sub_out, join))
        return fork, join

    build(depth)
    return TaskGraph(name, tasks, edges)
