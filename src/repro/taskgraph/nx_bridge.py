"""NetworkX interoperability for task graphs.

Converts between :class:`repro.taskgraph.TaskGraph` and
``networkx.DiGraph`` so users can apply the whole networkx toolbox
(centrality, visualization layouts, graph edits) to application graphs,
and import DAGs authored elsewhere. networkx is an optional convenience —
nothing in the core library imports this module.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.errors import TaskGraphError
from repro.taskgraph.graph import TaskGraph, TaskSpec


def to_networkx(graph: TaskGraph) -> "nx.DiGraph":
    """A ``networkx.DiGraph`` with latency/stage node attributes."""
    out = nx.DiGraph(name=graph.name)
    for task_id in graph.topological_order:
        spec = graph.task(task_id)
        out.add_node(
            task_id, latency_ms=spec.latency_ms, stage=spec.stage
        )
    out.add_edges_from(graph.edges)
    return out


def from_networkx(
    digraph: "nx.DiGraph", name: Optional[str] = None
) -> TaskGraph:
    """Build a :class:`TaskGraph` from a networkx DAG.

    Node attribute ``latency_ms`` is required; ``stage`` defaults to the
    node's dependency depth. Cycles are rejected (by TaskGraph validation).
    """
    if digraph.number_of_nodes() == 0:
        raise TaskGraphError("cannot convert an empty graph")
    graph_name = name or str(digraph.graph.get("name") or "imported")
    if not nx.is_directed_acyclic_graph(digraph):
        raise TaskGraphError(f"graph {graph_name!r} contains a cycle")

    depth = {}
    for node in nx.topological_sort(digraph):
        preds = list(digraph.predecessors(node))
        depth[node] = 1 + max((depth[p] for p in preds), default=-1)

    tasks = []
    for node, data in digraph.nodes(data=True):
        latency = data.get("latency_ms")
        if latency is None:
            raise TaskGraphError(
                f"node {node!r} is missing the 'latency_ms' attribute"
            )
        tasks.append(
            TaskSpec(
                str(node),
                float(latency),
                stage=int(data.get("stage", depth[node])),
            )
        )
    edges = [(str(src), str(dst)) for src, dst in digraph.edges()]
    return TaskGraph(graph_name, tasks, edges)


def cross_check_metrics(graph: TaskGraph) -> dict:
    """Independent recomputation of graph metrics via networkx.

    Used by the validation tests: our hand-rolled critical path and depth
    must agree with networkx's ``dag_longest_path`` machinery.
    """
    digraph = to_networkx(graph)
    longest_nodes = nx.dag_longest_path(digraph, weight=None)
    critical = nx.dag_longest_path_length(
        digraph,
        weight=None,
        default_weight=1,
    )
    # Weighted critical path: weight each edge by its head's latency and
    # add the path's first node latency.
    weighted = nx.DiGraph()
    weighted.add_nodes_from(digraph.nodes(data=True))
    for src, dst in digraph.edges():
        weighted.add_edge(
            src, dst, weight=digraph.nodes[dst]["latency_ms"]
        )
    best = 0.0
    for source in (n for n in digraph if digraph.in_degree(n) == 0):
        lengths = nx.single_source_dag_longest_path_length(  # type: ignore[attr-defined]
            weighted, source
        ) if hasattr(nx, "single_source_dag_longest_path_length") else None
        if lengths is None:
            break
        source_latency = digraph.nodes[source]["latency_ms"]
        best = max(best, source_latency + max(lengths.values(), default=0.0))
    if best == 0.0:
        # Portable fallback: enumerate longest weighted path via DP.
        order = list(nx.topological_sort(digraph))
        dist = {}
        for node in order:
            preds = list(digraph.predecessors(node))
            base = max((dist[p] for p in preds), default=0.0)
            dist[node] = base + digraph.nodes[node]["latency_ms"]
        best = max(dist.values())
    return {
        "num_nodes": digraph.number_of_nodes(),
        "num_edges": digraph.number_of_edges(),
        "depth": len(longest_nodes) if longest_nodes else critical + 1,
        "critical_path_ms": best,
    }
