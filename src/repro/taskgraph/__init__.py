"""Task graphs: applications partitioned into slot-sized tasks (paper §2.2).

An application is a Directed Acyclic Graph whose nodes are tasks (each small
enough to fit one reconfigurable slot) and whose edges are data
dependencies. This package provides the DAG model, common builders and the
partitioner that turns a layered application description into a task graph.
"""

from repro.taskgraph.graph import TaskGraph, TaskSpec
from repro.taskgraph.builders import (
    chain_graph,
    diamond_graph,
    layered_graph,
    parallel_chains_graph,
    single_task_graph,
)
from repro.taskgraph.partition import LayerSpec, partition_layers
from repro.taskgraph.random_dags import (
    random_layered_dag,
    random_series_parallel_dag,
)

__all__ = [
    "random_layered_dag",
    "random_series_parallel_dag",
    "TaskGraph",
    "TaskSpec",
    "chain_graph",
    "diamond_graph",
    "layered_graph",
    "parallel_chains_graph",
    "single_task_graph",
    "LayerSpec",
    "partition_layers",
]
