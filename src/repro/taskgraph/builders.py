"""Constructors for common task-graph shapes.

The benchmark catalog (``repro.apps``) and many tests build graphs through
these helpers instead of enumerating nodes and edges by hand.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TaskGraphError
from repro.taskgraph.graph import TaskGraph, TaskSpec


def single_task_graph(name: str, latency_ms: float) -> TaskGraph:
    """A graph with exactly one task and no edges."""
    return TaskGraph(name, [TaskSpec(f"{name}_t0", latency_ms)], [])


def chain_graph(name: str, latencies_ms: Sequence[float]) -> TaskGraph:
    """A linear pipeline ``t0 -> t1 -> ... -> tN`` (LeNet-style)."""
    if not latencies_ms:
        raise TaskGraphError("chain_graph requires at least one latency")
    tasks = [
        TaskSpec(f"{name}_t{i}", latency, stage=i)
        for i, latency in enumerate(latencies_ms)
    ]
    edges = [
        (f"{name}_t{i}", f"{name}_t{i + 1}") for i in range(len(tasks) - 1)
    ]
    return TaskGraph(name, tasks, edges)


def diamond_graph(name: str, latencies_ms: Sequence[float]) -> TaskGraph:
    """A 4-node diamond: one source fans out to two tasks that join at a sink.

    ``latencies_ms`` must contain exactly four values
    (source, left, right, sink).
    """
    if len(latencies_ms) != 4:
        raise TaskGraphError(
            f"diamond_graph needs 4 latencies, got {len(latencies_ms)}"
        )
    src, left, right, sink = latencies_ms
    tasks = [
        TaskSpec(f"{name}_src", src, stage=0),
        TaskSpec(f"{name}_left", left, stage=1),
        TaskSpec(f"{name}_right", right, stage=1),
        TaskSpec(f"{name}_sink", sink, stage=2),
    ]
    edges = [
        (f"{name}_src", f"{name}_left"),
        (f"{name}_src", f"{name}_right"),
        (f"{name}_left", f"{name}_sink"),
        (f"{name}_right", f"{name}_sink"),
    ]
    return TaskGraph(name, tasks, edges)


def layered_graph(
    name: str,
    widths: Sequence[int],
    layer_latencies_ms: Sequence[float],
) -> TaskGraph:
    """A fully connected layered DAG (AlexNet-style, Figure 4).

    Layer ``i`` contains ``widths[i]`` identical tasks of latency
    ``layer_latencies_ms[i]``; every task of layer ``i`` feeds every task of
    layer ``i + 1``. Tasks within a layer share a ``stage`` label, matching
    the identical-task coloring of Figure 4.
    """
    if len(widths) != len(layer_latencies_ms):
        raise TaskGraphError(
            "widths and layer_latencies_ms must have equal length, got "
            f"{len(widths)} and {len(layer_latencies_ms)}"
        )
    if not widths:
        raise TaskGraphError("layered_graph requires at least one layer")
    if any(w < 1 for w in widths):
        raise TaskGraphError(f"layer widths must be >= 1, got {list(widths)}")

    tasks = []
    layers = []
    for stage, (width, latency) in enumerate(zip(widths, layer_latencies_ms)):
        layer_ids = [f"{name}_l{stage}n{j}" for j in range(width)]
        layers.append(layer_ids)
        tasks.extend(TaskSpec(tid, latency, stage=stage) for tid in layer_ids)

    edges = []
    for prev, nxt in zip(layers, layers[1:]):
        edges.extend((src, dst) for src in prev for dst in nxt)
    return TaskGraph(name, tasks, edges)


def parallel_chains_graph(
    name: str,
    num_chains: int,
    chain_latencies_ms: Sequence[float],
) -> TaskGraph:
    """Independent parallel chains joined by a shared source and sink.

    Useful for exercising graphs whose saturation point exceeds two slots.
    """
    if num_chains < 1:
        raise TaskGraphError(f"num_chains must be >= 1, got {num_chains}")
    if not chain_latencies_ms:
        raise TaskGraphError("chain_latencies_ms must be non-empty")
    source = TaskSpec(f"{name}_src", chain_latencies_ms[0], stage=0)
    sink_stage = len(chain_latencies_ms) + 1
    sink = TaskSpec(f"{name}_sink", chain_latencies_ms[-1], stage=sink_stage)
    tasks = [source]
    edges = []
    for chain in range(num_chains):
        prev = source.task_id
        for depth, latency in enumerate(chain_latencies_ms):
            tid = f"{name}_c{chain}d{depth}"
            tasks.append(TaskSpec(tid, latency, stage=depth + 1))
            edges.append((prev, tid))
            prev = tid
        edges.append((prev, sink.task_id))
    tasks.append(sink)
    return TaskGraph(name, tasks, edges)
