"""Partitioning of layered applications into slot-sized tasks (paper §2.2).

The paper partitions each benchmark manually (e.g. LeNet's six layers become
three tasks of two layers each) or via an automatic flow. This module
implements the automatic equivalent: given per-layer resource demands and a
slot resource budget, greedily group consecutive layers into tasks such that
every task fits one slot, then split any layer that alone exceeds the slot
into parallel same-stage tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import PartitionError
from repro.taskgraph.graph import TaskGraph, TaskSpec


@dataclass(frozen=True)
class LayerSpec:
    """One layer of an unpartitioned application.

    ``resource_units`` is an abstract demand (normalized LUT/DSP cost);
    ``latency_ms`` is the HLS estimate for one batch item through the layer.
    ``splittable`` marks layers that can be divided into parallel tasks
    (convolutions can; fully connected reductions often cannot).
    """

    name: str
    resource_units: float
    latency_ms: float
    splittable: bool = True

    def __post_init__(self) -> None:
        if self.resource_units <= 0:
            raise PartitionError(
                f"layer {self.name!r} resource_units must be > 0"
            )
        if self.latency_ms <= 0:
            raise PartitionError(f"layer {self.name!r} latency_ms must be > 0")


def _split_layer(layer: LayerSpec, slot_capacity: float) -> int:
    """Number of parallel tasks needed for a layer exceeding one slot."""
    if not layer.splittable:
        raise PartitionError(
            f"layer {layer.name!r} needs {layer.resource_units} units but the "
            f"slot holds {slot_capacity} and the layer is not splittable"
        )
    pieces = 1
    while layer.resource_units / pieces > slot_capacity:
        pieces += 1
        if pieces > 1024:
            raise PartitionError(
                f"layer {layer.name!r} cannot be split to fit slot capacity "
                f"{slot_capacity}"
            )
    return pieces


def partition_layers(
    name: str,
    layers: Sequence[LayerSpec],
    slot_capacity: float,
) -> TaskGraph:
    """Partition a feed-forward layer sequence into a slot-sized task graph.

    Consecutive layers are greedily merged while their combined resource
    demand fits ``slot_capacity`` (maximizing slot utilization, per the
    paper's "user logic uses as much of the slot as possible"). A layer too
    large for one slot is split into parallel tasks that all connect densely
    to the neighbouring stages, reproducing the AlexNet-style structure of
    Figure 4.
    """
    if not layers:
        raise PartitionError("cannot partition an application with no layers")
    if slot_capacity <= 0:
        raise PartitionError(f"slot_capacity must be > 0, got {slot_capacity}")

    # Stage construction: each stage is either a merged group of small
    # consecutive layers (one task) or a single oversized layer split into
    # parallel tasks.
    stages: List[List[TaskSpec]] = []
    group: List[LayerSpec] = []
    group_units = 0.0

    def flush_group() -> None:
        nonlocal group, group_units
        if not group:
            return
        stage = len(stages)
        latency = sum(layer.latency_ms for layer in group)
        label = "+".join(layer.name for layer in group)
        stages.append([TaskSpec(f"{name}_s{stage}_{label}", latency, stage=stage)])
        group = []
        group_units = 0.0

    for layer in layers:
        if layer.resource_units > slot_capacity:
            flush_group()
            pieces = _split_layer(layer, slot_capacity)
            stage = len(stages)
            per_piece_latency = layer.latency_ms / pieces
            stages.append(
                [
                    TaskSpec(
                        f"{name}_s{stage}_{layer.name}p{piece}",
                        per_piece_latency,
                        stage=stage,
                    )
                    for piece in range(pieces)
                ]
            )
            continue
        if group and group_units + layer.resource_units > slot_capacity:
            flush_group()
        group.append(layer)
        group_units += layer.resource_units
    flush_group()

    tasks = [spec for stage in stages for spec in stage]
    edges = []
    for prev, nxt in zip(stages, stages[1:]):
        edges.extend((a.task_id, b.task_id) for a in prev for b in nxt)
    return TaskGraph(name, tasks, edges)
