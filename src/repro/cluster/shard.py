"""Sharded board simulation: the cluster tier's process-level fan-out.

Between placement decisions the boards of a fleet are completely
independent — each runs its own hypervisor over its own placed arrivals.
That makes the *board* the natural sharding axis: the cluster serializes
each board's work into a picklable :data:`BoardTask`, fans the tasks out
over worker processes via :func:`repro.experiments.parallel.fanout`, and
merges the returned payloads in board-index order.

Three properties make ``--jobs N`` byte-identical to serial:

* tasks carry only primitives (board index, profile, scheduler name,
  event specs, fault/admission scalars) — every worker rebuilds its
  hypervisor, fault injector and admission controller from scratch,
  exactly as the serial path does, so the seeded draws are identical;
* each payload's metrics are either integer counters or a
  :class:`~repro.service.sketch.QuantileSketch` dump, both of which
  merge associatively and serialize canonically;
* ``fanout`` gathers results in task order and ``jobs=1`` short-circuits
  through the *same* worker function, keeping one code path.

The per-board trace never crosses the process boundary — only its sha256
digest does, which is also what the golden-pin and
single-board-equals-bare-hypervisor tests compare.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional, Sequence, Tuple

from repro.cluster.profiles import BoardProfile
from repro.config import SystemConfig
from repro.errors import ClusterError
from repro.faults.models import FaultConfig
from repro.sim.trace import Trace
from repro.sim.trace_export import trace_to_dict
from repro.workload.events import EventSpec

#: One board's simulation input: (board index, profile, scheduler name,
#: fleet-wide base config or None, placed event specs in arrival order,
#: per-board fault config or None, per-board admission policy name or
#: None, per-board seed, run mode, replay-cache enable). Everything is a
#: primitive or a frozen dataclass of primitives, hence picklable. The
#: trailing replay flag is optional — 9-tuples from older callers run
#: with the replay cache enabled (the default is byte-identical to a
#: replay-off run, so the flag only exists for A/B verification). An
#: optional 11th leg carries an
#: :class:`~repro.autotune.engine.AutotuneConfig` (or None): when armed,
#: the worker runs the board-level remediation pipeline after the
#: baseline simulation and the payload gains an ``"autotune"`` decision
#: record — absent otherwise, so un-tuned payloads (and their golden
#: pins) are unchanged.
BoardTask = Tuple[
    int, BoardProfile, str, Optional[SystemConfig],
    Tuple[EventSpec, ...], Optional[FaultConfig], Optional[str], int, str,
    bool,
]


def derive_board_fault_config(
    faults: Optional[FaultConfig], board_index: int
) -> Optional[FaultConfig]:
    """Per-board fault stream: the fleet seed offset by the board index.

    Boards must draw *independent* fault streams (identical seeds would
    fault every board in lock-step), and the derivation must be a pure
    function of (fleet config, board index) so serial and sharded runs
    reconstruct identical injectors.
    """
    if faults is None or not faults.enabled:
        return None
    from dataclasses import replace

    return replace(faults, seed=faults.seed + 1_000_003 * board_index)


def trace_digest(trace: Trace, label: str = "") -> str:
    """sha256 over the canonical JSON dump of a trace.

    Shared by the board worker, the golden regression pins and the
    single-board-fleet-equals-bare-hypervisor test — all three must hash
    the same bytes for the comparisons to mean anything.
    """
    blob = json.dumps(trace_to_dict(trace, label=label), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def board_label(board_index: int) -> str:
    """The trace label of one board's run."""
    return f"board{board_index}"


def _empty_payload(
    board_index: int, profile: BoardProfile, mode: str = "full"
) -> dict:
    """Payload for a board that was placed no work at all."""
    from repro.service.sketch import QuantileSketch

    return {
        "board": board_index,
        "profile": profile.to_dict(),
        "submitted": 0,
        "retired": 0,
        "shed": 0,
        "dropped": 0,
        "items_done": 0,
        "responses": QuantileSketch().to_dict(),
        "first_arrival_ms": None,
        "last_retire_ms": None,
        "run_busy_ms": 0.0,
        "reconfig_busy_ms": 0.0,
        "energy_j": 0.0,
        "faults": _fault_payload(None),
        "trace_events": 0,
        "trace_digest": (
            trace_digest(Trace(), board_label(board_index))
            if mode == "full" else None
        ),
    }


def _fault_payload(stats) -> dict:
    """FaultStats reduced to a JSON-safe counter dict."""
    if stats is None:
        return {
            "transient": 0, "permanent": 0, "config_failures": 0,
            "repairs": 0, "evictions": 0, "relocations": 0,
            "items_lost": 0, "work_lost_ms": 0.0, "total": 0,
        }
    return {
        "transient": stats.transient_faults,
        "permanent": stats.permanent_faults,
        "config_failures": stats.config_failures,
        "repairs": stats.repairs,
        "evictions": stats.evictions,
        "relocations": stats.relocations,
        "items_lost": stats.items_lost,
        "work_lost_ms": stats.work_lost_ms,
        "total": stats.total_faults,
    }


def simulate_board(task: BoardTask) -> dict:
    """Worker: one board's full simulation reduced to its merge payload.

    Top-level (picklable) so :func:`repro.experiments.parallel.fanout`
    can ship it to worker processes. The returned payload contains only
    associatively mergeable state: integer counters, float sums the
    simulation computed deterministically, a quantile-sketch dump, and
    the trace digest.
    """
    (board_index, profile, scheduler_name, base_config, specs,
     fault_config, admission_policy, seed, mode) = task[:9]
    replay = task[9] if len(task) > 9 else True
    autotune = task[10] if len(task) > 10 else None
    if not specs:
        return _empty_payload(board_index, profile, mode)
    payload, hypervisor, controller = _board_run(
        board_index, profile, scheduler_name, base_config, specs,
        fault_config, admission_policy, seed, mode, replay,
    )
    if autotune is None:
        return payload
    # Lazily imported, so un-tuned fleets never load the pipeline.
    from repro.autotune.board import remediate_board

    return remediate_board(
        autotune,
        payload,
        hypervisor,
        controller,
        profile=profile,
        scheduler_name=scheduler_name,
        base_config=base_config,
        specs=specs,
        fault_config=fault_config,
        admission_policy=admission_policy,
        seed=seed,
        mode=mode,
    )


def _board_run(
    board_index: int,
    profile: BoardProfile,
    scheduler_name: str,
    base_config: Optional[SystemConfig],
    specs: Tuple[EventSpec, ...],
    fault_config: Optional[FaultConfig],
    admission_policy,
    seed: int,
    mode: str,
    replay: bool,
    watchdog_config="auto",
) -> tuple:
    """One board simulation; returns (payload, hypervisor, controller).

    ``admission_policy`` may be a registry name or a materialized policy
    instance (the autotune re-run path patches watermarks, which names
    alone cannot carry). ``watchdog_config="auto"`` keeps the historic
    pairing — a default watchdog iff admission is on; None or an
    explicit :class:`~repro.admission.watchdog.WatchdogConfig` override
    it for patched re-runs, which must run exactly the configuration the
    verifier scored.
    """
    from repro.admission import AdmissionController, Watchdog
    from repro.faults.injector import FaultInjector
    from repro.hypervisor.hypervisor import Hypervisor
    from repro.schedulers.registry import make_scheduler
    from repro.service.sketch import QuantileSketch
    from repro.sim.replay import ReplayCache

    injector = None
    if fault_config is not None and fault_config.enabled:
        injector = FaultInjector(fault_config)
    controller = None
    watchdog = None
    if admission_policy is not None:
        controller = AdmissionController(admission_policy, seed=seed)
        if watchdog_config == "auto":
            watchdog = Watchdog()
        elif watchdog_config is not None:
            watchdog = Watchdog(watchdog_config)
    hypervisor = Hypervisor(
        make_scheduler(scheduler_name),
        config=profile.system_config(base_config),
        faults=injector,
        admission=controller,
        watchdog=watchdog,
        mode=mode,
    )
    if replay:
        # Replay is a no-op on fault-injected boards (the gate rejects
        # them), so chaos boards stay live automatically. The closed
        # pre-submitted event list makes the engine horizon an exact
        # next-arrival bound, so no arrival hook is needed.
        hypervisor._replay = ReplayCache(
            hypervisor,
            scheduler_factory=lambda: make_scheduler(scheduler_name),
            admission_factory=(
                (lambda: AdmissionController(admission_policy, seed=seed))
                if admission_policy is not None else None
            ),
            watchdog_factory=(
                (lambda: Watchdog(watchdog.config))
                if watchdog is not None else None
            ),
        )
    for spec in specs:
        hypervisor.submit(spec.to_request())
    hypervisor.run()
    if not hypervisor.all_retired:
        raise ClusterError(
            f"board {board_index} ({profile.name}) failed to drain: "
            f"{len(hypervisor.retired)} retired + {len(hypervisor.shed)} "
            f"shed of {len(hypervisor.apps)} admitted"
        )

    results = hypervisor.results()
    sketch = QuantileSketch()
    items_done = 0
    for result in results:
        sketch.add(result.response_ms)
        items_done += result.batch_size
    trace = hypervisor.trace
    first_arrival = min(spec.arrival_ms for spec in specs)
    last_retire = (
        max(result.retire_ms for result in results) if results else None
    )
    span_ms = (last_retire - first_arrival) if results else 0.0
    run_busy = trace.run_busy_ms()
    # Energy model: idle draw over the board's active span plus the
    # per-slot active draw over every busy slot-millisecond.
    energy_j = (
        profile.idle_power_w * span_ms
        + profile.slot_power_w * run_busy
    ) / 1000.0
    dropped = 0
    if controller is not None:
        dropped = controller.stats.dropped
    payload = {
        "board": board_index,
        "profile": profile.to_dict(),
        "submitted": len(specs),
        "retired": len(results),
        "shed": len(hypervisor.shed),
        "dropped": dropped,
        "items_done": items_done,
        "responses": sketch.to_dict(),
        "first_arrival_ms": first_arrival,
        "last_retire_ms": last_retire,
        "run_busy_ms": run_busy,
        "reconfig_busy_ms": trace.reconfig_busy_ms(),
        "energy_j": energy_j,
        "faults": _fault_payload(hypervisor.fault_stats),
        "trace_events": len(trace),
        # Digests hash trace rows, which metrics mode never records; the
        # counters above stay exact either way.
        "trace_digest": (
            trace_digest(trace, board_label(board_index))
            if mode == "full" else None
        ),
    }
    return payload, hypervisor, controller


def board_cells(
    tasks: Sequence[BoardTask], jobs: Optional[int] = None
) -> List[dict]:
    """Fan board simulations out; payloads in board-task order."""
    from repro.experiments import parallel

    return parallel.fanout(simulate_board, tasks, jobs=jobs)
