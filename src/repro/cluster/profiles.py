"""Board profiles: the heterogeneity axis of the cluster tier.

A :class:`BoardProfile` describes one physical FPGA in the fleet — its
slot count, reconfiguration latency and power envelope. THEMIS (fair,
heterogeneity/energy-minded multi-tenant FPGA scheduling) and "Power
Aware Scheduling of Tasks on FPGAs in Data Centers" motivate the three
knobs the placement tier consumes:

* **capability** — ``num_slots`` and ``reconfig_ms`` feed the per-board
  :class:`~repro.config.SystemConfig` and the capability-normalized
  least-loaded placement;
* **power envelope** — ``power_cap_w`` bounds the board's sustained
  draw. ``idle_power_w + num_slots * slot_power_w`` may legally exceed
  the cap (dark-silicon style): the *power-limited slot budget*
  :meth:`BoardProfile.power_slot_budget` is then smaller than the
  physical slot count and power-aware placement plans against it;
* **energy accounting** — ``slot_power_w`` prices each busy slot
  millisecond so merged cluster snapshots can report estimated joules
  per board.

Profiles are frozen dataclasses of primitives: picklable (they cross the
worker-process boundary with each board's simulation task), hashable and
trivially fingerprintable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.config import (
    DEFAULT_NUM_SLOTS,
    DEFAULT_RECONFIG_MS,
    SystemConfig,
)
from repro.errors import ClusterError


@dataclass(frozen=True)
class BoardProfile:
    """Immutable description of one FPGA board in the fleet."""

    name: str
    num_slots: int = DEFAULT_NUM_SLOTS
    reconfig_ms: float = DEFAULT_RECONFIG_MS
    power_cap_w: float = 45.0
    idle_power_w: float = 8.0
    slot_power_w: float = 3.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ClusterError("board profile needs a non-empty name")
        if self.num_slots < 1:
            raise ClusterError(
                f"num_slots must be >= 1, got {self.num_slots}"
            )
        if self.reconfig_ms <= 0:
            raise ClusterError(
                f"reconfig_ms must be > 0, got {self.reconfig_ms}"
            )
        if self.idle_power_w < 0 or self.slot_power_w <= 0:
            raise ClusterError(
                "power model needs idle_power_w >= 0 and slot_power_w > 0, "
                f"got {self.idle_power_w}/{self.slot_power_w}"
            )
        if self.power_cap_w <= self.idle_power_w:
            raise ClusterError(
                f"power_cap_w must exceed idle_power_w, got "
                f"{self.power_cap_w} <= {self.idle_power_w}"
            )

    def power_slot_budget(self) -> int:
        """Slots the power envelope sustains concurrently (>= 1).

        ``floor((cap - idle) / slot_power)``, clamped to the physical
        slot count. A board whose full complement would breach its cap
        gets a smaller budget; power-aware placement balances against
        this instead of the raw slot count.
        """
        budget = int((self.power_cap_w - self.idle_power_w)
                     // self.slot_power_w)
        return max(1, min(self.num_slots, budget))

    def system_config(
        self, base: Optional[SystemConfig] = None
    ) -> SystemConfig:
        """The per-board platform config this profile induces.

        Scheduler knobs (token alpha, priority levels, intervals) come
        from ``base`` — the fleet-wide policy configuration — while the
        board-physical fields (slot count, reconfiguration latency) come
        from the profile.
        """
        return replace(
            base or SystemConfig(),
            num_slots=self.num_slots,
            reconfig_ms=self.reconfig_ms,
        )

    def to_dict(self) -> dict:
        """JSON-safe payload (stable field order via dataclass order)."""
        return asdict(self)


#: The paper's evaluation board: a ZCU106 with ten uniform slots.
ZCU106_BOARD = BoardProfile(
    name="zcu106", num_slots=10, reconfig_ms=80.0,
    power_cap_w=45.0, idle_power_w=8.0, slot_power_w=3.5,
)

#: An edge-scale board (Hetero-ViTAL's small end): few slots, a slower
#: configuration port, a tight envelope.
EDGE_BOARD = BoardProfile(
    name="edge", num_slots=4, reconfig_ms=120.0,
    power_cap_w=15.0, idle_power_w=3.0, slot_power_w=2.5,
)

#: A datacenter-scale board that is *power-capped*: sixteen physical
#: slots but an envelope that sustains only ten at once, so power-aware
#: placement credits it less capacity than least-loaded does.
HPC_BOARD = BoardProfile(
    name="hpc", num_slots=16, reconfig_ms=60.0,
    power_cap_w=60.0, idle_power_w=15.0, slot_power_w=4.5,
)

#: Profile catalogue by name.
BOARD_PROFILES: Tuple[BoardProfile, ...] = (
    ZCU106_BOARD, EDGE_BOARD, HPC_BOARD,
)

#: Default heterogeneous rotation for generated fleets.
DEFAULT_FLEET_MIX: Tuple[str, ...] = ("zcu106", "edge", "hpc")


def board_profile(name: str) -> BoardProfile:
    """Look one profile up by name."""
    for profile in BOARD_PROFILES:
        if profile.name == name:
            return profile
    known = sorted(p.name for p in BOARD_PROFILES)
    raise ClusterError(f"unknown board profile {name!r}; known: {known}")


def fleet_profiles(
    num_boards: int,
    mix: Sequence[str] = DEFAULT_FLEET_MIX,
) -> Tuple[BoardProfile, ...]:
    """A deterministic fleet: board ``i`` gets ``mix[i % len(mix)]``.

    The assignment is a pure function of ``(num_boards, mix)`` — no RNG —
    so fleet composition can never drift between a serial and a sharded
    run, or between two processes. ``mix=("zcu106",)`` builds the
    homogeneous fleet.
    """
    if num_boards < 1:
        raise ClusterError(f"num_boards must be >= 1, got {num_boards}")
    if not mix:
        raise ClusterError("fleet mix must be non-empty")
    profiles = [board_profile(name) for name in mix]
    return tuple(profiles[i % len(profiles)] for i in range(num_boards))
