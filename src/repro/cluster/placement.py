"""Cluster placement policies: which board an arriving application joins.

Placement runs *above* the per-board hypervisors: each application is
dispatched whole to one board (tasks of one application never split
across boards — there is no inter-board partial reconfiguration), and the
board's own scheduler takes over from there.

Four policies, all deterministic pure functions of the fleet view they
are handed (ties always break toward the lowest board index):

* ``round_robin`` — eligible boards in rotation; the rotation cursor
  advances only on successful placements, so draining boards are skipped
  without perturbing the cycle;
* ``least_loaded`` — the board with the least outstanding estimated work
  (the same HLS latency estimate the hypervisor schedules by, computed
  with *that board's* reconfiguration latency), normalized by slot count
  so heterogeneous fleets balance by capability;
* ``affinity`` — bitstream locality: prefer boards already hosting the
  same benchmark (their bitstream caches are warm and the per-app
  configuration registrations amortize), least-loaded among those;
  fall back to least-loaded when no board has the benchmark yet;
* ``power_aware`` — least-loaded against each board's *power-limited
  slot budget* (:meth:`~repro.cluster.profiles.BoardProfile.power_slot_budget`)
  with an energy tiebreak toward cheaper boards, per "Power Aware
  Scheduling of Tasks on FPGAs in Data Centers": a board whose envelope
  cannot sustain its full slot complement is credited only the capacity
  it can actually power.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, Sequence, Tuple

from repro.errors import ClusterError


class BoardView(Protocol):
    """What a placement policy may read about one board."""

    index: int

    @property
    def profile(self):  # pragma: no cover - protocol
        ...

    @property
    def load_ms(self) -> float:  # pragma: no cover - protocol
        ...

    def hosts_benchmark(self, name: str) -> bool:  # pragma: no cover
        ...


class PlacementPolicy:
    """Base class: a named, deterministic board chooser.

    ``choose`` receives the eligible (non-draining, non-failed) boards,
    the arriving benchmark name, and the per-board latency estimate of
    the new application (indexed like ``boards``). It must return one of
    the given boards' indices; the cluster validates the choice.
    """

    name = "abstract"

    def choose(
        self,
        boards: Sequence[BoardView],
        benchmark: str,
        estimates_ms: Sequence[float],
    ) -> int:
        raise NotImplementedError  # pragma: no cover - abstract


def _normalized_load(
    board: BoardView, estimate_ms: float, slots: int
) -> float:
    """Projected per-slot backlog if the application joined this board."""
    return (board.load_ms + estimate_ms) / slots


class RoundRobinPlacement(PlacementPolicy):
    """Eligible boards in rotation, skipping ineligible ones."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, boards, benchmark, estimates_ms) -> int:
        indices = sorted(board.index for board in boards)
        for index in indices:
            if index >= self._cursor:
                chosen = index
                break
        else:
            chosen = indices[0]
        self._cursor = chosen + 1
        return chosen


class LeastLoadedPlacement(PlacementPolicy):
    """Minimum capability-normalized outstanding work, lowest index wins."""

    name = "least_loaded"

    def choose(self, boards, benchmark, estimates_ms) -> int:
        return min(
            boards,
            key=lambda b: (
                _normalized_load(
                    b, estimates_ms[b.index], b.profile.num_slots
                ),
                b.index,
            ),
        ).index


class AffinityPlacement(PlacementPolicy):
    """Bitstream locality first, least-loaded within/without it."""

    name = "affinity"

    def __init__(self) -> None:
        self._fallback = LeastLoadedPlacement()

    def choose(self, boards, benchmark, estimates_ms) -> int:
        warm = [b for b in boards if b.hosts_benchmark(benchmark)]
        if warm:
            return self._fallback.choose(warm, benchmark, estimates_ms)
        return self._fallback.choose(boards, benchmark, estimates_ms)


class PowerAwarePlacement(PlacementPolicy):
    """Balance against power-limited capacity, prefer cheap joules."""

    name = "power_aware"

    def choose(self, boards, benchmark, estimates_ms) -> int:
        return min(
            boards,
            key=lambda b: (
                _normalized_load(
                    b, estimates_ms[b.index],
                    b.profile.power_slot_budget(),
                ),
                b.profile.slot_power_w,
                b.index,
            ),
        ).index


#: Policy registry, cheapest-signal-first.
_POLICY_FACTORIES: Dict[str, Callable[[], PlacementPolicy]] = {
    "round_robin": RoundRobinPlacement,
    "least_loaded": LeastLoadedPlacement,
    "affinity": AffinityPlacement,
    "power_aware": PowerAwarePlacement,
}

#: Every placement policy name, in registry order.
PLACEMENT_POLICIES: Tuple[str, ...] = tuple(_POLICY_FACTORIES)


def make_placement(name: str) -> PlacementPolicy:
    """Build a placement policy by registry name."""
    factory = _POLICY_FACTORIES.get(name)
    if factory is None:
        raise ClusterError(
            f"unknown placement policy {name!r}; known: "
            f"{', '.join(PLACEMENT_POLICIES)}"
        )
    return factory()
