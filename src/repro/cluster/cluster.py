"""The cluster tier: fleet-level placement above per-board hypervisors.

A :class:`Cluster` owns N boards (heterogeneous
:class:`~repro.cluster.profiles.BoardProfile` instances), gates arrivals
through a fleet-boundary admission policy (reusing
``repro.admission.policies``), places each admitted application whole
onto one board via a :class:`~repro.cluster.placement.PlacementPolicy`,
and only then simulates: every board runs its own hypervisor over its
placed arrivals, independently of every other board.

That independence is the whole trick. ``run(jobs=N)`` shards board
simulation across worker processes with the PR-2 parallel runner and
merges the per-board payloads with associative counters and quantile
sketches, so any ``--jobs`` produces a byte-identical merged snapshot
(pinned by the property suite and the golden digests).

Operational verbs the robustness tests drive:

* :meth:`Cluster.drain` — stop placing onto a board (targeted submits to
  it are rejected with :class:`~repro.errors.ClusterError`);
* :meth:`Cluster.fail_board` — permanent board fault: the board leaves
  the fleet and its queued work fails over through the placement policy;
* :meth:`Cluster.rebalance` — work stealing at the quiescent pre-run
  boundary: the most-loaded board donates its youngest queued
  applications to the least-loaded one until the fleet is balanced
  (a no-op on an already balanced fleet).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.admission.controller import AdmissionStats
from repro.admission.policies import (
    RejectPolicy,
    ShedPolicy,
    make_admission_policy,
)
from repro.apps.catalog import get_benchmark
from repro.apps.hls import application_latency_estimate_ms
from repro.cluster.placement import PlacementPolicy, make_placement
from repro.cluster.profiles import BoardProfile
from repro.cluster.shard import (
    BoardTask,
    board_cells,
    derive_board_fault_config,
)
from repro.config import SystemConfig
from repro.errors import ClusterError
from repro.faults.models import FaultConfig
from repro.service.sketch import QuantileSketch
from repro.workload.events import EventSequence, EventSpec

#: Admission policy names legal at the fleet boundary. ``degrade`` is
#: accepted too but routes to the per-board controllers (degradation is
#: a scheduler-coupled behaviour; the boundary has no scheduler).
FLEET_ADMISSION_POLICIES: Tuple[str, ...] = (
    "unbounded", "reject", "shed", "degrade",
)


@dataclass(frozen=True)
class PlacementDecision:
    """One placement: which board an admitted application joined."""

    sequence: int
    board: int
    policy: str
    benchmark: str
    arrival_ms: float
    estimate_ms: float

    def to_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "board": self.board,
            "policy": self.policy,
            "benchmark": self.benchmark,
            "arrival_ms": self.arrival_ms,
            "estimate_ms": self.estimate_ms,
        }


class _Board:
    """Mutable placement-time view of one board (implements BoardView)."""

    def __init__(self, index: int, profile: BoardProfile) -> None:
        self.index = index
        self.profile = profile
        self.draining = False
        self.failed = False
        #: Placed work in placement order: (sequence, spec).
        self.placed: List[Tuple[int, EventSpec]] = []
        self.load_ms = 0.0
        self._benchmarks: Dict[str, int] = {}
        #: Virtual completion clock for the fleet admission depth proxy.
        self.virtual_clock_ms = 0.0
        self.virtual_finishes: List[float] = []

    @property
    def eligible(self) -> bool:
        return not (self.draining or self.failed)

    def hosts_benchmark(self, name: str) -> bool:
        return self._benchmarks.get(name, 0) > 0

    def add(self, sequence: int, spec: EventSpec, estimate_ms: float) -> None:
        self.placed.append((sequence, spec))
        self.load_ms += estimate_ms
        self._benchmarks[spec.benchmark] = (
            self._benchmarks.get(spec.benchmark, 0) + 1
        )
        start = max(spec.arrival_ms, self.virtual_clock_ms)
        self.virtual_clock_ms = start + estimate_ms / self.profile.num_slots
        self.virtual_finishes.append(self.virtual_clock_ms)

    def remove(self, sequence: int, estimate_ms: float) -> EventSpec:
        for pos, (seq, spec) in enumerate(self.placed):
            if seq == sequence:
                del self.placed[pos]
                self.load_ms -= estimate_ms
                count = self._benchmarks[spec.benchmark] - 1
                if count:
                    self._benchmarks[spec.benchmark] = count
                else:
                    del self._benchmarks[spec.benchmark]
                return spec
        raise ClusterError(
            f"board {self.index} does not hold placement #{sequence}"
        )

    def pending_depth(self, now_ms: float) -> int:
        """Placed applications whose virtual completion is still ahead."""
        return sum(1 for finish in self.virtual_finishes if finish > now_ms)

    def normalized_load(self) -> float:
        """Outstanding estimated work per slot."""
        return self.load_ms / self.profile.num_slots


class Cluster:
    """A fleet of FPGA boards behind one placement-and-admission front.

    Drive it in three phases, mirroring the single-board harnesses:
    **submit** (``submit`` / ``submit_sequence``, optionally interleaved
    with ``drain`` / ``fail_board`` / ``rebalance``), **run**
    (``run(jobs=N)`` — the only phase that simulates), **read** (the
    returned :class:`ClusterReport`). Placement is strictly serial and
    happens entirely before the sharded simulation, so decisions are a
    pure function of (policy, board profiles, arrival stream) and can
    never depend on ``jobs``.
    """

    def __init__(
        self,
        profiles: Sequence[BoardProfile],
        *,
        placement: Union[str, PlacementPolicy] = "least_loaded",
        scheduler: str = "nimblock",
        config: Optional[SystemConfig] = None,
        admission: Optional[str] = None,
        faults: Optional[FaultConfig] = None,
        seed: int = 0,
    ) -> None:
        if not profiles:
            raise ClusterError("a cluster needs at least one board profile")
        self._boards = [_Board(i, p) for i, p in enumerate(profiles)]
        if isinstance(placement, str):
            placement = make_placement(placement)
        self._placement = placement
        self._scheduler = scheduler
        self._config = config
        self._faults = faults
        self._seed = seed
        self._sequence = 0
        self._last_arrival_ms = 0.0
        self._decisions: List[PlacementDecision] = []
        self._steal_moves = 0
        self._failovers = 0
        self.admission_stats = AdmissionStats()
        self._board_admission: Optional[str] = None
        self._fleet_policy = None
        if admission is not None:
            if admission not in FLEET_ADMISSION_POLICIES:
                raise ClusterError(
                    f"unknown fleet admission policy {admission!r}; known: "
                    f"{', '.join(FLEET_ADMISSION_POLICIES)}"
                )
            if admission == "degrade":
                # Degradation throttles a *scheduler*; route per board.
                self._board_admission = "degrade"
            elif admission in ("reject", "shed"):
                self._fleet_policy = make_admission_policy(admission)
            # "unbounded" gates nothing: the boundary only counts.
        self._admission_name = admission
        self._estimate_cache: Dict[Tuple[str, int, float], float] = {}

    # ------------------------------------------------------------------
    # Fleet introspection
    # ------------------------------------------------------------------
    @property
    def num_boards(self) -> int:
        return len(self._boards)

    @property
    def decisions(self) -> List[PlacementDecision]:
        """Every placement made so far, in decision order."""
        return list(self._decisions)

    @property
    def placement_name(self) -> str:
        return self._placement.name

    def board_load_ms(self, index: int) -> float:
        return self._board(index).load_ms

    def board_queue(self, index: int) -> List[EventSpec]:
        """Specs placed on one board, in placement order."""
        return [spec for _, spec in self._board(index).placed]

    def _board(self, index: int) -> _Board:
        if not 0 <= index < len(self._boards):
            raise ClusterError(
                f"board index {index} out of range 0..{len(self._boards) - 1}"
            )
        return self._boards[index]

    def _eligible(self) -> List[_Board]:
        eligible = [b for b in self._boards if b.eligible]
        if not eligible:
            raise ClusterError("no eligible boards left in the fleet")
        return eligible

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def _estimate(self, spec: EventSpec, board: _Board) -> float:
        """The HLS application-level estimate on one specific board."""
        key = (spec.benchmark, spec.batch_size, board.profile.reconfig_ms)
        estimate = self._estimate_cache.get(key)
        if estimate is None:
            error = (
                self._config.hls_estimation_error
                if self._config is not None
                else SystemConfig().hls_estimation_error
            )
            estimate = application_latency_estimate_ms(
                get_benchmark(spec.benchmark).graph,
                spec.batch_size,
                reconfig_ms=board.profile.reconfig_ms,
                estimation_error=error,
            )
            self._estimate_cache[key] = estimate
        return estimate

    def _estimates_for(self, spec: EventSpec) -> List[float]:
        """Per-board estimates, indexed by absolute board index."""
        return [self._estimate(spec, board) for board in self._boards]

    # ------------------------------------------------------------------
    # Fleet-boundary admission
    # ------------------------------------------------------------------
    def _fleet_depth(self, now_ms: float) -> int:
        return sum(b.pending_depth(now_ms) for b in self._boards)

    def _fleet_capacity(self) -> int:
        assert self._fleet_policy is not None
        per_board = self._fleet_policy.queue_capacity  # type: ignore
        return per_board * len(self._boards)

    def _gate(self, spec: EventSpec) -> Optional[EventSpec]:
        """Fleet-boundary admission; returns the (possibly retried)
        spec to place, or None when the arrival never enters the fleet.
        """
        stats = self.admission_stats
        stats.submitted += 1
        policy = self._fleet_policy
        if policy is None:
            stats.admitted += 1
            return spec
        depth = self._fleet_depth(spec.arrival_ms)
        capacity = self._fleet_capacity()
        if depth < capacity:
            stats.admitted += 1
            return spec
        if isinstance(policy, ShedPolicy):
            # The boundary sheds at ingress: the arrival is turned away
            # whole, unlike the per-board controller which evicts queued
            # victims at a pass boundary.
            stats.shed += 1
            return None
        assert isinstance(policy, RejectPolicy)
        arrival = spec.arrival_ms
        for attempt in range(1, policy.max_retries + 1):
            stats.rejections += 1
            arrival += policy.backoff_ms(attempt)
            if self._fleet_depth(arrival) < capacity:
                stats.admitted += 1
                return replace(spec, arrival_ms=arrival)
        stats.rejections += 1
        stats.dropped += 1
        return None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def submit(
        self, spec: EventSpec, *, board: Optional[int] = None
    ) -> Optional[PlacementDecision]:
        """Admit and place one arrival; None when turned away.

        Arrivals must be submitted in non-decreasing ``arrival_ms`` order
        (the boundary's backlog proxy is a forward-moving clock). A
        targeted submit (``board=``) bypasses the placement policy but
        not eligibility: draining or failed boards reject with
        :class:`~repro.errors.ClusterError`.
        """
        if spec.arrival_ms < self._last_arrival_ms:
            raise ClusterError(
                f"arrivals must be submitted in order; got {spec.arrival_ms}"
                f" after {self._last_arrival_ms}"
            )
        self._last_arrival_ms = spec.arrival_ms
        if board is not None:
            target = self._board(board)
            if not target.eligible:
                state = "failed" if target.failed else "draining"
                raise ClusterError(
                    f"board {board} ({target.profile.name}) is {state}; "
                    "targeted submit rejected"
                )
        admitted = self._gate(spec)
        if admitted is None:
            return None
        estimates = self._estimates_for(admitted)
        if board is None:
            eligible = self._eligible()
            board = self._placement.choose(
                eligible, admitted.benchmark, estimates
            )
            if board not in {b.index for b in eligible}:
                raise ClusterError(
                    f"placement policy {self._placement.name!r} chose "
                    f"ineligible board {board}"
                )
        chosen = self._board(board)
        decision = PlacementDecision(
            sequence=self._sequence,
            board=board,
            policy=self._placement.name,
            benchmark=admitted.benchmark,
            arrival_ms=admitted.arrival_ms,
            estimate_ms=estimates[board],
        )
        chosen.add(self._sequence, admitted, estimates[board])
        self._sequence += 1
        self._decisions.append(decision)
        return decision

    def submit_sequence(
        self, events: Union[EventSequence, Iterable[EventSpec]]
    ) -> List[PlacementDecision]:
        """Admit-and-place a whole arrival stream, in arrival order."""
        decisions = []
        for spec in events:
            decision = self.submit(spec)
            if decision is not None:
                decisions.append(decision)
        return decisions

    # ------------------------------------------------------------------
    # Operational verbs
    # ------------------------------------------------------------------
    def drain(self, index: int) -> None:
        """Stop placing onto one board; its queued work stays put."""
        board = self._board(index)
        if board.failed:
            raise ClusterError(f"board {index} already failed")
        board.draining = True
        if not any(b.eligible for b in self._boards):
            board.draining = False
            raise ClusterError(
                "cannot drain the last eligible board in the fleet"
            )

    def fail_board(self, index: int) -> List[PlacementDecision]:
        """Permanent board fault: fail over its queued work.

        The board leaves the fleet for good and every application queued
        on it is re-placed through the placement policy among the
        surviving boards (original arrival times and sequence order are
        preserved). Returns the re-placement decisions.
        """
        board = self._board(index)
        if board.failed:
            raise ClusterError(f"board {index} already failed")
        board.failed = True
        if not any(b.eligible for b in self._boards):
            board.failed = False
            raise ClusterError(
                "cannot fail the last eligible board in the fleet"
            )
        orphans = list(board.placed)
        board.placed = []
        board.load_ms = 0.0
        board._benchmarks = {}
        replaced: List[PlacementDecision] = []
        for sequence, spec in orphans:
            estimates = self._estimates_for(spec)
            eligible = self._eligible()
            target = self._placement.choose(
                eligible, spec.benchmark, estimates
            )
            chosen = self._board(target)
            chosen.add(sequence, spec, estimates[target])
            decision = PlacementDecision(
                sequence=sequence,
                board=target,
                policy=self._placement.name,
                benchmark=spec.benchmark,
                arrival_ms=spec.arrival_ms,
                estimate_ms=estimates[target],
            )
            self._decisions.append(decision)
            replaced.append(decision)
            self._failovers += 1
        return replaced

    def rebalance(self, threshold_ms: float = 1.0) -> int:
        """Work stealing at the quiescent boundary; returns moves made.

        Repeatedly moves the youngest queued application from the
        most-loaded board to the least-loaded one, but only while the
        move strictly shrinks the fleet's normalized load spread by more
        than ``threshold_ms``. A balanced fleet is left untouched.
        """
        moves = 0
        for _ in range(16 * len(self._boards)):
            eligible = [b for b in self._boards if b.eligible]
            if len(eligible) < 2:
                break
            donor = max(eligible, key=lambda b: (b.normalized_load(), -b.index))
            recipient = min(
                eligible, key=lambda b: (b.normalized_load(), b.index)
            )
            if donor is recipient or not donor.placed:
                break
            spread = donor.normalized_load() - recipient.normalized_load()
            if spread <= threshold_ms:
                break
            # Youngest queued work is the cheapest to move: it has
            # accumulated the least locality on its board.
            sequence, spec = max(
                donor.placed, key=lambda item: (item[1].arrival_ms, item[0])
            )
            donor_est = self._estimate(spec, donor)
            recipient_est = self._estimate(spec, recipient)
            new_spread = abs(
                (recipient.load_ms + recipient_est)
                / recipient.profile.num_slots
                - (donor.load_ms - donor_est) / donor.profile.num_slots
            )
            if new_spread >= spread:
                break
            donor.remove(sequence, donor_est)
            recipient.add(sequence, spec, recipient_est)
            moves += 1
        self._steal_moves += moves
        return moves

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def board_tasks(
        self, mode: str = "full", replay: bool = True, autotune=None
    ) -> List[BoardTask]:
        """The picklable per-board simulation inputs, one per board.

        ``autotune`` (an :class:`~repro.autotune.engine.AutotuneConfig`,
        or None) arms the per-board remediation pipeline; tasks stay
        10-tuples when it is None so un-tuned pickles are unchanged.
        """
        tasks: List[BoardTask] = []
        for board in self._boards:
            specs = tuple(
                spec for _, spec in sorted(
                    board.placed,
                    key=lambda item: (item[1].arrival_ms, item[0]),
                )
            )
            task = (
                board.index,
                board.profile,
                self._scheduler,
                self._config,
                specs,
                derive_board_fault_config(self._faults, board.index)
                if not board.failed else None,
                self._board_admission,
                self._seed + board.index,
                mode,
                replay,
            )
            if autotune is not None:
                task = task + (autotune,)
            tasks.append(task)
        return tasks

    def run(
        self, jobs: Optional[int] = None, mode: str = "full",
        replay: bool = True, autotune=None,
    ) -> "ClusterReport":
        """Simulate every board (sharded over ``jobs`` processes) and
        merge the per-board payloads into one :class:`ClusterReport`.

        ``mode="metrics"`` runs each board without trace rows: counters,
        sketches and busy-time sums stay exact, but the per-board
        ``trace_digest`` fields are ``None`` (nothing to hash).
        ``replay=False`` disables the per-board macro-event replay cache
        (the report is byte-identical either way; the knob exists for
        A/B verification). ``autotune`` arms the per-board closed-loop
        remediation: each board's payload gains an ``"autotune"``
        decision record, and boards whose verified winner beats the
        baseline are re-run under the patched configuration.
        """
        from repro.modes import normalize_mode

        mode = normalize_mode(mode)
        payloads = board_cells(
            self.board_tasks(mode, replay, autotune), jobs=jobs
        )
        return ClusterReport(
            boards=payloads,
            placement=self._placement.name,
            scheduler=self._scheduler,
            admission=self._admission_name,
            seed=self._seed,
            fault_config=(
                self._faults
                if self._faults is not None and self._faults.enabled
                else None
            ),
            admission_stats=self.admission_stats,
            steal_moves=self._steal_moves,
            failovers=self._failovers,
        )


class ClusterReport:
    """The merged outcome of one cluster run.

    Everything here is derived from the per-board payloads by
    associative reductions (sums, min/max, sketch merges), so the merged
    snapshot is identical whichever processes produced the payloads.
    """

    def __init__(
        self,
        boards: List[dict],
        *,
        placement: str,
        scheduler: str,
        admission: Optional[str],
        seed: int,
        fault_config: Optional[FaultConfig],
        admission_stats: AdmissionStats,
        steal_moves: int,
        failovers: int,
    ) -> None:
        self.boards = boards
        self.placement = placement
        self.scheduler = scheduler
        self.admission = admission
        self.seed = seed
        self.fault_config = fault_config
        self.admission_stats = admission_stats
        self.steal_moves = steal_moves
        self.failovers = failovers
        self.sketch = QuantileSketch()
        for payload in boards:
            self.sketch = self.sketch.merge(
                QuantileSketch.from_dict(payload["responses"])
            )

    # -- associative scalar reductions ---------------------------------
    def _sum(self, field: str) -> float:
        return sum(payload[field] for payload in self.boards)

    @property
    def submitted(self) -> int:
        return int(self._sum("submitted"))

    @property
    def retired(self) -> int:
        return int(self._sum("retired"))

    @property
    def shed(self) -> int:
        return int(self._sum("shed"))

    @property
    def items_done(self) -> int:
        return int(self._sum("items_done"))

    @property
    def energy_j(self) -> float:
        return self._sum("energy_j")

    @property
    def makespan_ms(self) -> float:
        """First fleet arrival to last fleet retirement."""
        starts = [
            p["first_arrival_ms"] for p in self.boards
            if p["first_arrival_ms"] is not None
        ]
        ends = [
            p["last_retire_ms"] for p in self.boards
            if p["last_retire_ms"] is not None
        ]
        if not starts or not ends:
            return 0.0
        return max(ends) - min(starts)

    @property
    def throughput_items_per_s(self) -> float:
        makespan = self.makespan_ms
        if makespan <= 0.0:
            return 0.0
        return self.items_done / (makespan / 1000.0)

    def quantile_ms(self, q: float) -> float:
        return self.sketch.quantile(q)

    @property
    def fault_totals(self) -> dict:
        totals: Dict[str, float] = {}
        for payload in self.boards:
            for key, value in payload["faults"].items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def to_dict(self) -> dict:
        """Canonical JSON-safe merged snapshot (digest this)."""
        stats = self.admission_stats
        return {
            "fleet": {
                "num_boards": len(self.boards),
                "placement": self.placement,
                "scheduler": self.scheduler,
                "admission": self.admission,
                "seed": self.seed,
                "faults": (
                    dataclasses.asdict(self.fault_config)
                    if self.fault_config is not None else None
                ),
                "steal_moves": self.steal_moves,
                "failovers": self.failovers,
            },
            "totals": {
                "submitted": self.submitted,
                "retired": self.retired,
                "shed": self.shed,
                "items_done": self.items_done,
                "makespan_ms": self.makespan_ms,
                "throughput_items_per_s": self.throughput_items_per_s,
                "energy_j": self.energy_j,
                "faults": self.fault_totals,
            },
            "boundary_admission": {
                "submitted": stats.submitted,
                "admitted": stats.admitted,
                "rejections": stats.rejections,
                "dropped": stats.dropped,
                "shed": stats.shed,
            },
            "responses": self.sketch.to_dict(),
            "boards": self.boards,
        }

    def snapshot_digest(self) -> str:
        """sha256 over the canonical JSON dump of the merged snapshot."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
