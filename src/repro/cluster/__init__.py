"""Fleet-scale multi-FPGA cluster tier.

>>> from repro.cluster import Cluster, fleet_profiles
>>> from repro.workload.generator import EventGenerator
>>> fleet = Cluster(fleet_profiles(4), placement="least_loaded")
>>> events = EventGenerator(7).sequence(num_events=6, label="demo")
>>> _ = fleet.submit_sequence(events)
>>> report = fleet.run(jobs=1)  # jobs=N is byte-identical
>>> report.retired
6
"""

from repro.cluster.cluster import (
    FLEET_ADMISSION_POLICIES,
    Cluster,
    ClusterReport,
    PlacementDecision,
)
from repro.cluster.placement import (
    PLACEMENT_POLICIES,
    AffinityPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    PowerAwarePlacement,
    RoundRobinPlacement,
    make_placement,
)
from repro.cluster.profiles import (
    BOARD_PROFILES,
    DEFAULT_FLEET_MIX,
    EDGE_BOARD,
    HPC_BOARD,
    ZCU106_BOARD,
    BoardProfile,
    board_profile,
    fleet_profiles,
)
from repro.cluster.shard import (
    BoardTask,
    board_cells,
    board_label,
    derive_board_fault_config,
    simulate_board,
    trace_digest,
)

__all__ = [
    "FLEET_ADMISSION_POLICIES",
    "PLACEMENT_POLICIES",
    "BOARD_PROFILES",
    "DEFAULT_FLEET_MIX",
    "ZCU106_BOARD",
    "EDGE_BOARD",
    "HPC_BOARD",
    "AffinityPlacement",
    "BoardProfile",
    "BoardTask",
    "Cluster",
    "ClusterReport",
    "LeastLoadedPlacement",
    "PlacementDecision",
    "PlacementPolicy",
    "PowerAwarePlacement",
    "RoundRobinPlacement",
    "board_cells",
    "board_label",
    "board_profile",
    "derive_board_fault_config",
    "fleet_profiles",
    "make_placement",
    "simulate_board",
    "trace_digest",
]
