"""Benchmark catalog: Table 2 graph shapes, Table 3 latency calibration.

Calibration method: Table 3 reports each benchmark's execution time under
the no-sharing baseline with batch size 5 and all ten slots. For chain
benchmarks this is ``5 x (sum of task latencies)`` (reconfiguration hidden
by prefetching); for AlexNet it is ``5 x (sum over stages of the stage task
latency)`` since same-stage tasks run in parallel. We invert those formulas
to pick per-task latencies:

=====================  =====  =====  ========================  ============
Benchmark              Tasks  Edges  Structure                 Exec (paper)
=====================  =====  =====  ========================  ============
LeNet                  3      2      chain                     0.73 s
AlexNet                38     184    9 dense layers            65.44 s
Image compression      6      5      chain                     0.56 s
Optical flow           9      8      chain                     22.91 s
3D rendering           3      2      chain                     1.55 s
Digit recognition      3      2      chain                     984.23 s
=====================  =====  =====  ========================  ============

AlexNet's layer widths are ``[1, 6, 6, 6, 6, 6, 4, 2, 1]`` — 38 tasks and,
with dense inter-layer connectivity, exactly 184 edges; vertices within a
layer are identical split tasks, matching Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import WorkloadError
from repro.taskgraph import TaskGraph, chain_graph, layered_graph

#: Layer widths of the partitioned AlexNet (Figure 4).
ALEXNET_WIDTHS: Tuple[int, ...] = (1, 6, 6, 6, 6, 6, 4, 2, 1)

#: Per-task latency (ms) of each AlexNet stage; the per-item critical path
#: sums to 13088 ms so that batch-5 execution lands at 65.44 s.
ALEXNET_STAGE_LATENCIES_MS: Tuple[float, ...] = (
    800.0, 1600.0, 1800.0, 1800.0, 1800.0, 1600.0, 1500.0, 1200.0, 988.0,
)


@dataclass(frozen=True)
class BenchmarkApp:
    """One catalog entry: a named task graph plus provenance metadata."""

    name: str
    short_name: str
    graph: TaskGraph
    source: str
    description: str

    @property
    def num_tasks(self) -> int:
        """Task count (Table 2)."""
        return self.graph.num_tasks

    @property
    def num_edges(self) -> int:
        """Edge count (Table 2)."""
        return self.graph.num_edges


def _lenet() -> BenchmarkApp:
    # Six layers grouped into three two-layer tasks (paper's own example).
    graph = chain_graph("lenet", [55.0, 46.0, 45.0])
    return BenchmarkApp(
        "lenet", "LN", graph, "custom",
        "LeNet CNN: conv+pool / conv+pool / conv+fc, three chained tasks.",
    )


def _alexnet() -> BenchmarkApp:
    graph = layered_graph(
        "alexnet", ALEXNET_WIDTHS, ALEXNET_STAGE_LATENCIES_MS
    )
    return BenchmarkApp(
        "alexnet", "AN", graph, "custom",
        "AlexNet CNN partitioned into 9 dense stages of identical split "
        "tasks (38 tasks, 184 edges).",
    )


def _image_compression() -> BenchmarkApp:
    graph = chain_graph("imgc", [20.0, 18.0, 18.0, 20.0, 18.0, 18.0])
    return BenchmarkApp(
        "imgc", "IMGC", graph, "custom",
        "JPEG-style image compression pipeline in six chained tasks.",
    )


def _optical_flow() -> BenchmarkApp:
    graph = chain_graph(
        "of", [510.0, 510.0, 510.0, 510.0, 510.0, 510.0, 510.0, 510.0, 502.0]
    )
    return BenchmarkApp(
        "of", "OF", graph, "rosetta",
        "Lucas-Kanade optical flow, nine chained stencil tasks.",
    )


def _rendering_3d() -> BenchmarkApp:
    graph = chain_graph("3dr", [110.0, 100.0, 100.0])
    return BenchmarkApp(
        "3dr", "3DR", graph, "rosetta",
        "3D triangle rendering pipeline in three chained tasks.",
    )


def _digit_recognition() -> BenchmarkApp:
    graph = chain_graph("dr", [65616.0, 65615.0, 65615.0])
    return BenchmarkApp(
        "dr", "DR", graph, "rosetta",
        "K-nearest-neighbour digit recognition: three very long chained "
        "tasks (the suite's long-running outlier).",
    )


def benchmark_catalog() -> Dict[str, BenchmarkApp]:
    """Fresh catalog mapping benchmark name to :class:`BenchmarkApp`."""
    apps = [
        _lenet(),
        _alexnet(),
        _image_compression(),
        _optical_flow(),
        _rendering_3d(),
        _digit_recognition(),
    ]
    return {app.name: app for app in apps}


_CATALOG = benchmark_catalog()

#: Canonical benchmark ordering used by experiments (Table 2 row order).
BENCHMARK_NAMES: Tuple[str, ...] = (
    "lenet", "alexnet", "imgc", "of", "3dr", "dr",
)


def get_benchmark(name: str) -> BenchmarkApp:
    """The catalog entry for ``name`` (raises WorkloadError if unknown)."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {sorted(_CATALOG)}"
        ) from None
