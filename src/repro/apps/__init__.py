"""The six benchmark applications of the paper's evaluation (Table 2).

3D rendering, digit recognition and optical flow come from the Rosetta
suite; image compression, LeNet and AlexNet are custom benchmarks. We
reproduce each application's task graph exactly (task and edge counts match
Table 2) and calibrate per-task latencies so that single-application
execution times land near Table 3.
"""

from repro.apps.catalog import (
    BENCHMARK_NAMES,
    BenchmarkApp,
    benchmark_catalog,
    get_benchmark,
)
from repro.apps.hls import HLSReport, synthesize_report, reports_for_benchmark

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkApp",
    "benchmark_catalog",
    "get_benchmark",
    "HLSReport",
    "synthesize_report",
    "reports_for_benchmark",
]
