"""Synthetic HLS reports: the performance estimates the scheduler consumes.

On the paper's testbed, per-task latency estimates, interface information
and resource utilization are parsed from the high-level synthesis output
and shipped in the bitstream header. Without Vivado HLS we synthesize the
report deterministically from the task specification: the latency estimate
equals the task's true latency optionally perturbed by a bounded estimation
error (HLS estimates are never exact), and resource numbers are derived
from the latency so longer tasks report denser logic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError
from repro.overlay.resources import ResourceVector, slot_resource_vector
from repro.taskgraph.graph import TaskGraph, TaskSpec


@dataclass(frozen=True)
class HLSReport:
    """Parsed output of high-level synthesis for one task."""

    task_id: str
    latency_estimate_ms: float
    initiation_interval: int
    resources: ResourceVector
    control_interface: str = "axilite"
    data_interface: str = "axi4"

    def __post_init__(self) -> None:
        if self.latency_estimate_ms <= 0:
            raise WorkloadError(
                f"HLS latency estimate for {self.task_id!r} must be > 0"
            )
        if self.initiation_interval < 1:
            raise WorkloadError(
                f"initiation interval for {self.task_id!r} must be >= 1"
            )


def _stable_fraction(task_id: str) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from the task id."""
    digest = hashlib.sha256(task_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def synthesize_report(
    spec: TaskSpec, estimation_error: float = 0.0
) -> HLSReport:
    """Build the HLS report for one task.

    ``estimation_error`` bounds the relative deviation of the latency
    estimate from the true latency; the sign and magnitude are a stable
    hash of the task id, so reports are reproducible without an RNG.
    """
    if not 0.0 <= estimation_error < 1.0:
        raise WorkloadError(
            f"estimation_error must be in [0, 1), got {estimation_error}"
        )
    fraction = _stable_fraction(spec.task_id)
    deviation = (2.0 * fraction - 1.0) * estimation_error
    estimate = spec.latency_ms * (1.0 + deviation)

    # Longer tasks synthesize to denser logic: scale resource usage with
    # latency, clamped to fill between 40% and 100% of one slot.
    slot = slot_resource_vector("min")
    fill = min(1.0, 0.4 + 0.6 * min(spec.latency_ms / 2000.0, 1.0))
    resources = ResourceVector(
        tuple(int(count * fill) for count in slot.counts)
    )
    return HLSReport(
        task_id=spec.task_id,
        latency_estimate_ms=estimate,
        initiation_interval=max(1, int(spec.latency_ms)),
        resources=resources,
    )


def reports_for_benchmark(
    graph: TaskGraph, estimation_error: float = 0.0
) -> Dict[str, HLSReport]:
    """HLS reports for every task of one application graph.

    Memoized on the graph object per ``estimation_error``: reports are a
    pure function of the immutable graph (the per-task deviation is a
    stable hash), and sweeps replay the same handful of catalog graphs
    thousands of times, each replay re-hashing every task id without the
    cache. Callers treat the returned dict as read-only.
    """
    cache = getattr(graph, "_hls_reports_cache", None)
    if cache is None:
        cache = {}
        graph._hls_reports_cache = cache  # type: ignore[attr-defined]
    reports = cache.get(estimation_error)
    if reports is None:
        reports = {
            task_id: synthesize_report(graph.task(task_id), estimation_error)
            for task_id in graph.topological_order
        }
        cache[estimation_error] = reports
    return reports


def application_latency_estimate_ms(
    graph: TaskGraph,
    batch_size: int,
    reconfig_ms: float,
    estimation_error: float = 0.0,
) -> float:
    """The hypervisor's application-level latency estimate (paper §4.1).

    The paper sums per-task HLS latency estimates over the task graph; we
    scale by the batch size and account one reconfiguration per task, which
    is the single-slot upper bound the token scheme degrades against.

    Memoized on the graph object per ``(batch_size, reconfig_ms,
    estimation_error)`` — the estimate depends only on those scalars and
    the immutable graph, and the hypervisor recomputes it per arrival.
    """
    if batch_size < 1:
        raise WorkloadError(f"batch_size must be >= 1, got {batch_size}")
    cache = getattr(graph, "_app_estimate_cache", None)
    if cache is None:
        cache = {}
        graph._app_estimate_cache = cache  # type: ignore[attr-defined]
    key = (batch_size, reconfig_ms, estimation_error)
    estimate = cache.get(key)
    if estimate is None:
        reports = reports_for_benchmark(graph, estimation_error)
        task_sum = sum(r.latency_estimate_ms for r in reports.values())
        estimate = batch_size * task_sum + reconfig_ms * graph.num_tasks
        cache[key] = estimate
    return estimate


def estimates_fit_slot(graph: TaskGraph) -> List[str]:
    """Task ids whose synthesized resources exceed one slot (should be [])."""
    slot = slot_resource_vector("max")
    oversized = []
    for task_id in graph.topological_order:
        report = synthesize_report(graph.task(task_id))
        if not report.resources.fits_within(slot):
            oversized.append(task_id)
    return oversized
