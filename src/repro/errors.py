"""Exception hierarchy for the Nimblock reproduction library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TaskGraphError(ReproError):
    """A task graph is malformed (cycle, dangling edge, duplicate id...)."""


class PartitionError(ReproError):
    """An application could not be partitioned into slot-sized tasks."""


class FloorplanError(ReproError):
    """A floorplan does not fit the target device resources."""


class BitstreamError(ReproError):
    """A partial bitstream is missing, corrupt, or targets the wrong slot."""


class ReconfigurationError(ReproError):
    """Illegal use of the configuration port (e.g. overlapping reconfigs)."""


class SlotStateError(ReproError):
    """A slot was driven through an illegal state transition."""


class BufferError_(ReproError):
    """Hypervisor data-buffer allocation or release failure."""


class SchedulerError(ReproError):
    """A scheduling policy produced an inconsistent decision."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency (time travel...)."""


class WorkloadError(ReproError):
    """An event sequence or generator parameter is invalid."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class SolverError(ReproError):
    """The ILP-substitute schedule-length solver failed or timed out."""


class FaultInjectionError(ReproError):
    """A fault model or injector was configured or driven inconsistently."""


class RecoveryError(ReproError):
    """A recovery policy could not restore the platform to a sane state."""


class AdmissionError(ReproError):
    """An admission controller or policy was configured inconsistently."""


class ServiceError(ReproError):
    """The online service tier (``repro.service``) was misconfigured."""


class ClusterError(ReproError):
    """The multi-board cluster tier (``repro.cluster``) was misdriven."""


class AutotuneError(ReproError):
    """The closed-loop remediation pipeline (``repro.autotune``) was
    misconfigured or misdriven."""


class InvariantViolation(ReproError):
    """The runtime invariant checker caught an illegal hypervisor state.

    Carries the name of the violated invariant plus the tail of the trace
    (the *offending window*) so the failure is diagnosable without
    re-running the simulation.
    """

    def __init__(self, invariant: str, message=None, events=()):
        self.invariant = invariant
        self.events = tuple(events)
        window = "\n".join(f"    {event}" for event in self.events)
        # One-argument form behaves like any other ReproError (the
        # hierarchy contract); the checker always passes both.
        text = invariant if message is None else f"[{invariant}] {message}"
        if window:
            text += f"\n  offending trace window (last {len(self.events)}):\n"
            text += window
        super().__init__(text)
