"""Closed-loop self-healing: detect → propose → verify → apply.

The remediation pipeline (ROADMAP item 4): a pure-function **detector**
(:mod:`repro.autotune.symptoms`) folds window stats and counter deltas
into typed symptoms; a rule-based **proposer**
(:mod:`repro.autotune.proposals`) maps symptoms to candidate config
patches over the tunable slice of a run's configuration; a **verifier**
(:mod:`repro.autotune.verifier`) replays the offending episode under
each patch with the invariant checker armed and rejects regressions;
the risk-ranked **applier** (:mod:`repro.autotune.engine`) applies the
winner at a quiescent window boundary inside a live
:class:`~repro.service.loop.ServiceLoop` (or per board inside cluster
shards) and logs a frozen, replayable decision record.

Zero-cost discipline: nothing in this package is imported unless an
:class:`AutotuneConfig` is actually armed — the service loop, cluster
shards, CLI and facade all gate their imports on the config being
non-None (``benchmarks/bench_autotune.py --guard`` pins this).
"""

from repro.autotune.engine import AutotuneConfig, Autotuner
from repro.autotune.proposals import ConfigPatch, TunableConfig, propose
from repro.autotune.symptoms import (
    SYMPTOM_KINDS,
    CounterDeltas,
    DetectorConfig,
    Symptom,
    WindowSignal,
    detect,
)
from repro.autotune.verifier import (
    EpisodeMemo,
    EpisodeScore,
    Verification,
    replay_episode,
    verify_candidates,
)

__all__ = [
    "AutotuneConfig",
    "Autotuner",
    "ConfigPatch",
    "CounterDeltas",
    "DetectorConfig",
    "EpisodeMemo",
    "EpisodeScore",
    "SYMPTOM_KINDS",
    "Symptom",
    "TunableConfig",
    "Verification",
    "WindowSignal",
    "detect",
    "propose",
    "replay_episode",
    "verify_candidates",
]
