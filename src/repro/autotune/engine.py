"""The closed-loop applier: detect → propose → verify → apply, live.

:class:`Autotuner` is the stage that runs *inside* a
:class:`~repro.service.loop.ServiceLoop`. The loop calls two hooks:

* :meth:`note_arrival` from the feeder pump — appends the consumed
  arrival spec to a bounded episode ring (the verifier's replay input);
* :meth:`on_window_close` from the window-close event, right after the
  window's deltas are folded — the quiescent boundary. The engine heap
  holds no same-instant work below the close's −100 priority, so a
  config swap here is atomic with respect to the simulation: every
  event before the boundary ran under the old config, every event after
  runs under the new one, exactly like a config push between requests
  in a live service.

A detection pass distills the trailing window stats and counter deltas
(admission overload edges + time-in-overload, watchdog starvation/stall
detections) into symptoms, asks the proposer for candidate patches,
replays the captured episode under each candidate (serially, through a
content-addressed memo — determinism cannot depend on worker count),
and applies the winner:

* **admission** — a fresh controller is built from the patched policy
  and the *live stats object is carried over*, so lifetime counters and
  the loop's fold baselines stay monotonic across the swap;
* **watchdog** — the frozen config object is replaced in place (the
  watchdog re-reads ``self.config`` every pass by design);
* **scheduler** — swapped only at an *empty-board* boundary; while the
  board holds apps, scheduler patches are filtered out before
  verification (mid-run state handoff between schedulers is undefined).

Every pass that found symptoms appends a frozen decision record —
symptoms, candidates with verdicts and replay scores, the applied patch
(or None) and a sha256 digest of the winning replay — to
:attr:`Autotuner.decisions`, which lands in the
:class:`~repro.service.loop.ServiceReport` payload. The record is a
pure function of the run's seeded inputs: byte-identical at any
``--jobs`` and (because an armed autotuner disables the macro-event
replay cache, whose mirror-world watchdog counters sit outside the
byte-identity contract) under ``--no-replay`` too.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import AutotuneError
from repro.metrics.slo import DEFAULT_SERVICE_SLO, SloTarget
from repro.autotune.proposals import ConfigPatch, TunableConfig, propose
from repro.autotune.symptoms import (
    CounterDeltas,
    DetectorConfig,
    WindowSignal,
    detect,
)
from repro.autotune.verifier import EpisodeMemo, verify_candidates
from repro.workload.events import EventSpec

__all__ = ["AutotuneConfig", "Autotuner"]


@dataclass(frozen=True)
class AutotuneConfig:
    """Knobs of one closed-loop remediation run (frozen, picklable)."""

    detector: DetectorConfig = DetectorConfig()
    #: The SLO the verifier scores against (the detector's breach rule
    #: uses ``detector.slo``; keep them equal unless deliberately
    #: detecting on a tighter target than you verify against).
    slo: SloTarget = DEFAULT_SERVICE_SLO
    #: Run a detection pass every N window closes.
    check_every_windows: int = 1
    #: Window closes to skip after a pass that found symptoms.
    cooldown_windows: int = 6
    #: Hard cap on applied patches per run.
    max_applies: int = 2
    #: Trailing windows of arrivals the verifier replays.
    episode_windows: int = 6
    #: Arrival-ring capacity (bounds memory like the trace ring).
    episode_capacity: int = 4096
    #: Fewest captured arrivals worth replaying.
    min_episode_arrivals: int = 8
    #: Arm the invariant checker inside verification replays.
    verify_invariants: bool = True

    def __post_init__(self) -> None:
        for name in (
            "check_every_windows", "cooldown_windows", "max_applies",
            "episode_windows", "episode_capacity", "min_episode_arrivals",
        ):
            if getattr(self, name) < 1:
                raise AutotuneError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )

    def with_slo(self, slo: SloTarget) -> "AutotuneConfig":
        """This config detecting and verifying against ``slo``."""
        return replace(
            self, slo=slo, detector=replace(self.detector, slo=slo)
        )


class Autotuner:
    """Closed-loop remediation engine bound to one running ServiceLoop."""

    def __init__(self, loop, config: AutotuneConfig) -> None:
        self.loop = loop
        self.config = config
        self.tuning = TunableConfig.capture(
            loop.scheduler_name,
            loop.admission_name,
            loop.admission_knobs,
            loop.hv.watchdog,
        )
        # Sanity-materialize once: a bad knob set should fail at
        # construction, not inside the first verification replay.
        self.tuning.admission_policy()
        self._ring: Deque[EventSpec] = deque(
            maxlen=config.episode_capacity
        )
        self._memo = EpisodeMemo()
        self._cooldown_until = -1
        self._baselines: Dict[str, float] = self._counters()
        self.applies = 0
        self.decisions: List[dict] = []

    # ------------------------------------------------------------------
    # Loop hooks
    # ------------------------------------------------------------------
    def note_arrival(self, spec: EventSpec) -> None:
        """Feeder hook: capture one consumed arrival for the episode."""
        self._ring.append(spec)

    def on_window_close(self, index: int, now: float) -> None:
        """Window-close hook: one detection pass, maybe one apply."""
        cfg = self.config
        if self.applies >= cfg.max_applies:
            return
        if index < self._cooldown_until:
            return
        if (index + 1) % cfg.check_every_windows:
            return
        symptoms = detect(
            self._window_signals(index),
            self._deltas(now),
            cfg.detector,
        )
        if not symptoms:
            return
        # Symptoms found: this pass costs a decision record and starts
        # the cooldown whatever the verdicts turn out to be.
        self._cooldown_until = index + 1 + cfg.cooldown_windows
        self._baselines = self._counters()
        episode, t0_ms = self._episode(index, now)
        decision = {
            "window": index,
            "t_ms": now,
            "symptoms": [s.to_dict() for s in symptoms],
            "tuning_before": self.tuning.to_dict(),
            "episode": {
                "arrivals": len(episode),
                "t0_ms": t0_ms,
                "windows": cfg.episode_windows,
            },
            "baseline": None,
            "candidates": [],
            "applied": None,
            "tuning_after": self.tuning.to_dict(),
            "digest": None,
        }
        if len(episode) < cfg.min_episode_arrivals:
            decision["skipped"] = "episode-too-small"
            self.decisions.append(decision)
            return
        candidates = propose(symptoms, self.tuning)
        if self.loop.hv.apps:
            # Scheduler handoff under backlog is undefined; those
            # patches wait for an empty-board boundary that the
            # cooldown may never reach — drop them this pass.
            candidates = tuple(
                p for p in candidates if p.scheduler is None
            )
        if not candidates:
            decision["skipped"] = "no-candidates"
            self.decisions.append(decision)
            return
        baseline, verifications, winner = verify_candidates(
            episode,
            self.tuning,
            candidates,
            seed=self.loop.seed,
            window_ms=self.loop.window_ms,
            slo=self.config.slo,
            config=self.loop.hv.config,
            invariants=cfg.verify_invariants,
            memo=self._memo,
        )
        decision["baseline"] = baseline.to_dict()
        decision["candidates"] = [v.to_dict() for v in verifications]
        if winner is not None:
            self._apply(winner.patch)
            self.applies += 1
            decision["applied"] = winner.patch.patch_id
            decision["tuning_after"] = self.tuning.to_dict()
            decision["digest"] = winner.score.digest()
        self.decisions.append(decision)

    # ------------------------------------------------------------------
    # Detector inputs
    # ------------------------------------------------------------------
    def _window_signals(self, index: int) -> List[WindowSignal]:
        history = self.config.detector.history_windows
        table = self.loop.windows._windows
        signals = []
        for i in range(max(0, index - history + 1), index + 1):
            stats = table.get(i)
            if stats is not None:
                signals.append(WindowSignal.from_stats(stats))
        return signals

    def _counters(self) -> Dict[str, float]:
        loop = self.loop
        stats = loop.admission.stats
        watchdog = loop.hv.watchdog
        return {
            "overload_enters": float(stats.overload_enters),
            "overload_ms": stats.overload_ms,
            "starvations": float(
                getattr(watchdog, "starvations_detected", 0)
            ),
            "stalls": float(getattr(watchdog, "stalls_detected", 0)),
        }

    def _deltas(self, now: float) -> CounterDeltas:
        current = self._counters()
        base = self._baselines
        # An open overload window has not hit the EXIT-site accumulator
        # yet; overload_total_ms folds it in so time-in-overload is
        # current as of this boundary.
        overload_ms = (
            self.loop.admission.overload_total_ms(now)
            - base["overload_ms"]
        )
        return CounterDeltas(
            overload_enters=int(
                current["overload_enters"] - base["overload_enters"]
            ),
            overload_ms=overload_ms,
            starvations=int(
                current["starvations"] - base["starvations"]
            ),
            stalls=int(current["stalls"] - base["stalls"]),
        )

    def _episode(
        self, index: int, now: float
    ) -> Tuple[Tuple[EventSpec, ...], float]:
        """The trailing arrival episode, rebased to its window grid.

        ``t0`` is the opening boundary of the episode's first window, so
        rebased arrivals land in replay windows exactly aligned with the
        live run's — a multiple of ``window_ms`` by construction.
        """
        window_ms = self.loop.window_ms
        t0_ms = max(0, index + 1 - self.config.episode_windows) * window_ms
        episode = tuple(
            replace(spec, arrival_ms=spec.arrival_ms - t0_ms)
            for spec in self._ring
            if t0_ms <= spec.arrival_ms < now
        )
        return episode, t0_ms

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------
    def _apply(self, patch: ConfigPatch) -> None:
        from repro.admission.controller import AdmissionController
        from repro.schedulers.registry import make_scheduler

        loop = self.loop
        hv = loop.hv
        new_tuning = patch.apply(self.tuning)
        if new_tuning.scheduler != self.tuning.scheduler:
            # Only reachable at an empty-board boundary (busy-board
            # passes filter scheduler patches before verification).
            hv.scheduler = make_scheduler(new_tuning.scheduler)
        if patch.admission is not None:
            old = loop.admission
            controller = AdmissionController(
                new_tuning.admission_policy(), seed=loop.seed
            )
            # Carry the live bookkeeping across the swap: the stats
            # object keeps lifetime counters (and the loop's fold
            # baselines) monotonic; retry attempts and the open
            # overload window survive so nothing double-counts.
            controller.stats = old.stats
            controller._attempts = old._attempts
            controller._overload_since = old._overload_since
            controller._hv = hv
            hv.admission = controller
            loop.admission = controller
        if patch.watchdog_knobs and hv.watchdog is not None:
            hv.watchdog.config = new_tuning.watchdog_config()
        self.tuning = new_tuning
