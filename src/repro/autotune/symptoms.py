"""Symptom detection: fold window stats and counters into typed symptoms.

The detector is the first stage of the closed-loop remediation pipeline
(detect → propose → verify → apply). It is a *pure function* of plain
frozen inputs — a tuple of per-window signals plus a handful of
monotonic counter deltas — so the same observations yield the same
symptoms whatever fold or merge order produced them (the hypothesis
property suite pins this). No hypervisor, loop or trace object is ever
touched here: callers distill those into :class:`WindowSignal` /
:class:`CounterDeltas` first, which keeps the detector identically
usable from the online service loop, from cluster board shards, and
from offline replays.

Symptom catalogue (one symptom kind per rule, at most one instance per
detection pass; see docs/robustness.md for the remediation rule table):

===================== ==============================================
kind                  fires when
===================== ==============================================
``slo_breach``        >= ``breach_windows`` trailing non-empty windows
                      each fail the :class:`~repro.metrics.slo.SloTarget`
``queue_growth``      pending depth at the last close >= ``depth_high``
                      and non-decreasing over ``growth_windows`` closes
``shed_storm``        shed/arrived over the last ``storm_windows``
                      windows >= ``storm_frac``
``overload_oscillation`` >= ``oscillation_enters`` OVERLOAD enter
                      edges since the previous detection pass
``starvation``        >= ``starvation_detections`` watchdog starvation
                      detections since the previous pass
``stall_cluster``     >= ``stall_detections`` watchdog stall
                      detections since the previous pass
``power_pressure``    mean electrical draw over the observed span
                      exceeds ``power_frac`` x the board's power cap
===================== ==============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import AutotuneError
from repro.metrics.slo import DEFAULT_SERVICE_SLO, SloTarget

__all__ = [
    "CounterDeltas",
    "DetectorConfig",
    "Symptom",
    "SYMPTOM_KINDS",
    "WindowSignal",
    "detect",
]

#: Every symptom kind the detector can emit, in emission order.
SYMPTOM_KINDS = (
    "slo_breach",
    "queue_growth",
    "shed_storm",
    "overload_oscillation",
    "starvation",
    "stall_cluster",
    "power_pressure",
)


@dataclass(frozen=True)
class WindowSignal:
    """One tumbling window distilled to the fields the detector reads."""

    index: int
    arrived: int = 0
    completed: int = 0
    shed: int = 0
    dropped: int = 0
    #: p99 response of completions attributed to this window (NaN if
    #: nothing completed).
    p99_ms: float = float("nan")
    #: Pending-queue depth sampled at the window's closing boundary.
    peak_pending: int = 0

    @property
    def lost(self) -> int:
        return self.shed + self.dropped

    @property
    def loss_frac(self) -> float:
        if self.arrived == 0:
            return 0.0
        return self.lost / self.arrived

    @property
    def active(self) -> bool:
        """True if anything arrived, completed or was lost here."""
        return bool(self.arrived or self.completed or self.lost)

    @classmethod
    def from_stats(cls, stats) -> "WindowSignal":
        """Distill a :class:`~repro.service.windows.WindowStats`."""
        return cls(
            index=stats.index,
            arrived=stats.arrived,
            completed=stats.completed,
            shed=stats.shed,
            dropped=stats.dropped,
            p99_ms=stats.p(99.0),
            peak_pending=stats.peak_pending,
        )


@dataclass(frozen=True)
class CounterDeltas:
    """Monotonic counter deltas accrued since the previous detection
    pass (or run start), plus the span-level power observation."""

    overload_enters: int = 0
    overload_ms: float = 0.0
    starvations: int = 0
    stalls: int = 0
    #: Energy drawn over ``span_ms`` (power_pressure rule); 0 disables.
    energy_j: float = 0.0
    span_ms: float = 0.0
    #: Board power cap; None disables the power_pressure rule.
    power_cap_w: Optional[float] = None


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds for every detection rule (see module docstring)."""

    slo: SloTarget = DEFAULT_SERVICE_SLO
    breach_windows: int = 3
    depth_high: int = 24
    growth_windows: int = 3
    storm_frac: float = 0.25
    storm_windows: int = 2
    oscillation_enters: int = 4
    starvation_detections: int = 1
    stall_detections: int = 2
    power_frac: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "breach_windows", "depth_high", "growth_windows",
            "storm_windows", "oscillation_enters",
            "starvation_detections", "stall_detections",
        ):
            if getattr(self, name) < 1:
                raise AutotuneError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if not 0.0 < self.storm_frac <= 1.0:
            raise AutotuneError(
                f"storm_frac must be in (0, 1], got {self.storm_frac}"
            )
        if self.power_frac <= 0.0:
            raise AutotuneError(
                f"power_frac must be > 0, got {self.power_frac}"
            )

    @property
    def history_windows(self) -> int:
        """How many trailing windows one detection pass inspects."""
        return max(
            self.breach_windows, self.growth_windows, self.storm_windows
        )


@dataclass(frozen=True)
class Symptom:
    """One detected condition, ready for the proposer's rule table."""

    kind: str
    #: Closing window index the detection pass ran at.
    window_index: int
    #: Rule-specific magnitude (run length, depth, fraction, count...).
    severity: float
    #: Sorted (name, value) observations backing the detection.
    evidence: Tuple[Tuple[str, float], ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "window_index": self.window_index,
            "severity": self.severity,
            "evidence": {name: value for name, value in self.evidence},
        }


def _ev(**kwargs: float) -> Tuple[Tuple[str, float], ...]:
    return tuple(sorted((k, float(v)) for k, v in kwargs.items()))


def detect(
    windows: Sequence[WindowSignal],
    counters: CounterDeltas,
    config: Optional[DetectorConfig] = None,
) -> Tuple[Symptom, ...]:
    """Run every detection rule; return symptoms in catalogue order.

    ``windows`` is the trailing per-window history in ascending index
    order (any longer history is fine — each rule reads only its own
    tail). Purity contract: no rule mutates anything, and emission order
    is the fixed :data:`SYMPTOM_KINDS` order, so output depends only on
    input values.
    """
    cfg = config or DetectorConfig()
    windows = [w for w in windows if w.active]
    windows.sort(key=lambda w: w.index)
    at = windows[-1].index if windows else 0
    symptoms = []

    # slo_breach: trailing run of non-empty windows failing the target.
    slo = cfg.slo
    run = 0
    worst_p99 = float("nan")
    worst_loss = 0.0
    for w in reversed(windows):
        if w.arrived == 0 or slo.met(w.p99_ms, w.loss_frac):
            break
        run += 1
        if math.isnan(worst_p99) or (
            not math.isnan(w.p99_ms) and w.p99_ms > worst_p99
        ):
            worst_p99 = w.p99_ms
        worst_loss = max(worst_loss, w.loss_frac)
    if run >= cfg.breach_windows:
        symptoms.append(Symptom(
            "slo_breach", at, float(run),
            _ev(
                consecutive=run,
                p99_ms=0.0 if math.isnan(worst_p99) else worst_p99,
                loss_frac=worst_loss,
            ),
        ))

    # queue_growth: deep and non-decreasing pending depth.
    tail = windows[-cfg.growth_windows:]
    if (
        len(tail) >= cfg.growth_windows
        and tail[-1].peak_pending >= cfg.depth_high
        and all(
            tail[i].peak_pending <= tail[i + 1].peak_pending
            for i in range(len(tail) - 1)
        )
    ):
        symptoms.append(Symptom(
            "queue_growth", at, float(tail[-1].peak_pending),
            _ev(depth=tail[-1].peak_pending, windows=len(tail)),
        ))

    # shed_storm: loss concentrated in the immediate past.
    tail = windows[-cfg.storm_windows:]
    arrived = sum(w.arrived for w in tail)
    lost = sum(w.lost for w in tail)
    if arrived > 0 and lost / arrived >= cfg.storm_frac:
        symptoms.append(Symptom(
            "shed_storm", at, lost / arrived,
            _ev(lost=lost, arrived=arrived),
        ))

    # overload_oscillation: admission hysteresis flapping.
    if counters.overload_enters >= cfg.oscillation_enters:
        symptoms.append(Symptom(
            "overload_oscillation", at, float(counters.overload_enters),
            _ev(
                enters=counters.overload_enters,
                overload_ms=counters.overload_ms,
            ),
        ))

    # starvation / stall_cluster: watchdog detections.
    if counters.starvations >= cfg.starvation_detections:
        symptoms.append(Symptom(
            "starvation", at, float(counters.starvations),
            _ev(starvations=counters.starvations),
        ))
    if counters.stalls >= cfg.stall_detections:
        symptoms.append(Symptom(
            "stall_cluster", at, float(counters.stalls),
            _ev(stalls=counters.stalls),
        ))

    # power_pressure: mean draw over the span vs. the board's cap. The
    # guard checks the divisor itself: a denormal span_ms can be > 0
    # while span_ms / 1000.0 underflows to exactly zero.
    span_s = counters.span_ms / 1000.0
    if (
        counters.power_cap_w is not None
        and span_s > 0
        and counters.energy_j > 0
    ):
        mean_w = counters.energy_j / span_s
        budget_w = cfg.power_frac * counters.power_cap_w
        if mean_w > budget_w:
            symptoms.append(Symptom(
                "power_pressure", at, mean_w / budget_w,
                _ev(mean_w=mean_w, budget_w=budget_w),
            ))

    return tuple(symptoms)
