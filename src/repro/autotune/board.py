"""Per-board remediation for cluster shards: detect → verify → re-run.

The cluster tier simulates each board inside one worker process, so the
closed loop runs *offline per board*: the finished baseline run is
distilled into window signals and counter deltas, the shared detector
and proposer produce candidates, the verifier replays the board's whole
placed workload under each candidate (on the board's own
:class:`~repro.cluster.profiles.BoardProfile` system config), and —
when a candidate strictly beats the baseline — the board is **re-run
under the patched configuration and the patched payload is adopted**,
carrying the decision record under the payload's ``"autotune"`` key.

Unlike the in-run :class:`~repro.autotune.engine.Autotuner`, the apply
here is a whole-board re-run, so scheduler swaps need no empty-board
gating. Fault-injected boards are skipped (the remediation contract is
about load symptoms, and a verifier replay without the fault stream
would score a different world); their payloads still carry a decision
record saying so.

Everything stays a pure function of the board task, so ``--jobs N``
fleet byte-identity holds with the loop armed — and boards without an
armed config never import this module (zero-cost discipline).
"""

from __future__ import annotations

from typing import Optional

from repro.autotune.engine import AutotuneConfig
from repro.autotune.proposals import TunableConfig, propose
from repro.autotune.symptoms import CounterDeltas, WindowSignal, detect
from repro.autotune.verifier import score_episode, verify_candidates
from repro.service.windows import DEFAULT_WINDOW_MS

__all__ = ["remediate_board"]


def remediate_board(
    config: AutotuneConfig,
    payload: dict,
    hypervisor,
    controller,
    *,
    profile,
    scheduler_name: str,
    base_config,
    specs,
    fault_config,
    admission_policy: Optional[str],
    seed: int,
    mode: str,
    window_ms: float = DEFAULT_WINDOW_MS,
) -> dict:
    """One board's closed-loop pass; returns the payload to merge."""
    from repro.cluster.shard import _board_run

    tuning = TunableConfig.capture(
        scheduler_name,
        admission_policy or "unbounded",
        {},
        hypervisor.watchdog,
    )
    decision: dict = {
        "board": payload["board"],
        "window_ms": window_ms,
        "tuning_before": tuning.to_dict(),
        "tuning_after": tuning.to_dict(),
        "symptoms": [],
        "baseline": None,
        "candidates": [],
        "applied": None,
        "digest": None,
    }
    if fault_config is not None and fault_config.enabled:
        decision["skipped"] = "fault-injected-board"
        payload["autotune"] = decision
        return payload

    results = hypervisor.results()
    shed_arrivals = [app.arrival_ms for app in hypervisor.shed]
    stats = controller.stats if controller is not None else None
    dropped = stats.dropped if stats is not None else 0
    base_score = score_episode(
        specs, results, shed_arrivals, dropped,
        window_ms=window_ms, slo=config.slo,
        span_ms=hypervisor.engine.now,
    )
    signals = [
        WindowSignal(
            index=index, arrived=arrived, completed=completed,
            shed=lost, p99_ms=p99,
        )
        for index, arrived, completed, lost, p99, _met
        in base_score.windows
    ]
    watchdog = hypervisor.watchdog
    counters = CounterDeltas(
        overload_enters=stats.overload_enters if stats is not None else 0,
        overload_ms=(
            controller.overload_total_ms(hypervisor.engine.now)
            if controller is not None else 0.0
        ),
        starvations=getattr(watchdog, "starvations_detected", 0),
        stalls=getattr(watchdog, "stalls_detected", 0),
        energy_j=payload["energy_j"],
        span_ms=hypervisor.engine.now,
        power_cap_w=profile.power_cap_w,
    )
    symptoms = detect(signals, counters, config.detector)
    decision["symptoms"] = [s.to_dict() for s in symptoms]
    if not symptoms or len(specs) < config.min_episode_arrivals:
        payload["autotune"] = decision
        return payload

    candidates = propose(symptoms, tuning)
    if not candidates:
        decision["skipped"] = "no-candidates"
        payload["autotune"] = decision
        return payload
    baseline, verifications, winner = verify_candidates(
        specs, tuning, candidates,
        seed=seed, window_ms=window_ms, slo=config.slo,
        config=profile.system_config(base_config),
        invariants=config.verify_invariants,
    )
    decision["baseline"] = baseline.to_dict()
    decision["candidates"] = [v.to_dict() for v in verifications]
    if winner is None:
        payload["autotune"] = decision
        return payload

    patched = winner.patch.apply(tuning)
    decision["applied"] = winner.patch.patch_id
    decision["tuning_after"] = patched.to_dict()
    decision["digest"] = winner.score.digest()
    # Adopt the patched world: re-run the whole board exactly as the
    # verifier scored it (replay cache off — a one-off run gains
    # nothing, and byte-identity does not depend on it).
    patched_payload, _, _ = _board_run(
        payload["board"], profile, patched.scheduler, base_config, specs,
        None, patched.admission_policy(), seed, mode, False,
        watchdog_config=patched.watchdog_config(),
    )
    patched_payload["autotune"] = decision
    return patched_payload
