"""Rule-based proposer: map symptoms to candidate config patches.

Second stage of the remediation pipeline. The proposer never touches a
running system: it reads a frozen :class:`TunableConfig` (the knobs the
applier is allowed to change — scheduler, admission policy + watermarks,
watchdog thresholds) plus the detector's symptoms, and emits a
deduplicated, risk-sorted tuple of :class:`ConfigPatch` candidates for
the verifier to score.

Patch semantics are chosen for *idempotence* (the property suite pins
``patch.apply(patch.apply(t)) == patch.apply(t)``): the scheduler and
admission components are absolute replacements, and watchdog knobs are
an absolute per-key merge. Risk ranks how invasive a patch is —
0 watchdog-threshold nudges, 1 watermark/capacity tuning within the
current policy, 2 policy swaps or capacity jumps, 3 scheduler swaps —
and is the verifier's tie-breaker among equally-scoring candidates.

The proposer deliberately never emits the ``reject`` policy: its
client-side retry backoff moves loss out of the shed/dropped counters
the detector and verifier attribute windows by, which would let a
"remediation" game the score by hiding loss.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.admission.policies import make_admission_policy
from repro.admission.watchdog import WatchdogConfig
from repro.errors import AutotuneError
from repro.autotune.symptoms import Symptom

__all__ = [
    "ConfigPatch",
    "TunableConfig",
    "propose",
]

Knobs = Tuple[Tuple[str, object], ...]


def _knobs(pairs) -> Knobs:
    """Canonical (sorted, tuple-of-pairs) knob form."""
    if pairs is None:
        return ()
    if isinstance(pairs, dict):
        pairs = pairs.items()
    return tuple(sorted((str(k), v) for k, v in pairs))


@dataclass(frozen=True)
class TunableConfig:
    """The remediable slice of a running system's configuration."""

    scheduler: str = "nimblock"
    admission: str = "unbounded"
    #: Admission policy knob overrides, canonical sorted pairs.
    admission_knobs: Knobs = ()
    #: Watchdog knob overrides; None means no watchdog is attached (the
    #: watchdog rules then have nothing to patch).
    watchdog_knobs: Optional[Knobs] = ()

    def admission_policy(self):
        """Materialize the admission policy (validates the knobs)."""
        return make_admission_policy(
            self.admission, **dict(self.admission_knobs)
        )

    def watchdog_config(self) -> Optional[WatchdogConfig]:
        if self.watchdog_knobs is None:
            return None
        return WatchdogConfig(**dict(self.watchdog_knobs))

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "admission": self.admission,
            "admission_knobs": dict(self.admission_knobs),
            "watchdog_knobs": (
                None if self.watchdog_knobs is None
                else dict(self.watchdog_knobs)
            ),
        }

    def fingerprint(self) -> str:
        """Short stable content hash (decision records, memo keys)."""
        return _short_hash(self.to_dict())

    @classmethod
    def capture(cls, scheduler, admission, admission_knobs, watchdog):
        """Distill live loop/board construction knobs.

        ``watchdog`` is the live :class:`~repro.admission.watchdog
        .Watchdog` (or None); its *current* config becomes the knob
        baseline so repeated captures after an applied patch are stable.
        """
        wd_knobs: Optional[Knobs] = None
        if watchdog is not None:
            wd_knobs = _knobs(dataclasses.asdict(watchdog.config))
        return cls(
            scheduler=scheduler,
            admission=admission,
            admission_knobs=_knobs(admission_knobs),
            watchdog_knobs=wd_knobs,
        )


@dataclass(frozen=True)
class ConfigPatch:
    """One candidate remediation.

    Component semantics (each optional, applied by :meth:`apply`):

    * ``scheduler`` — absolute replacement;
    * ``admission`` + ``admission_knobs`` — absolute replacement of the
      policy *and* its whole knob set (an admission patch always names
      the policy, even when only retuning watermarks);
    * ``watchdog_knobs`` — per-key absolute merge into the current
      watchdog config (no-op when no watchdog is attached).
    """

    #: Proposer rule that emitted the patch (rule table row).
    rule: str
    #: Symptom kind that triggered the rule.
    symptom: str
    #: Invasiveness 0 (threshold nudge) .. 3 (scheduler swap).
    risk: int
    reason: str
    scheduler: Optional[str] = None
    admission: Optional[str] = None
    admission_knobs: Knobs = ()
    watchdog_knobs: Knobs = ()

    def __post_init__(self) -> None:
        if not 0 <= self.risk <= 3:
            raise AutotuneError(f"risk must be 0..3, got {self.risk}")
        if self.admission == "reject":
            raise AutotuneError(
                "the proposer contract forbids reject-policy patches "
                "(backoff retries hide loss from the verifier)"
            )

    @property
    def patch_id(self) -> str:
        """Deterministic content id (dedup key, decision records)."""
        return _short_hash({
            "scheduler": self.scheduler,
            "admission": self.admission,
            "admission_knobs": dict(self.admission_knobs),
            "watchdog_knobs": dict(self.watchdog_knobs),
        })

    def apply(self, tuning: TunableConfig) -> TunableConfig:
        """The patched configuration (pure; idempotent)."""
        scheduler = self.scheduler or tuning.scheduler
        if self.admission is not None:
            admission = self.admission
            admission_knobs = _knobs(self.admission_knobs)
        else:
            admission = tuning.admission
            admission_knobs = tuning.admission_knobs
        watchdog_knobs = tuning.watchdog_knobs
        if self.watchdog_knobs and watchdog_knobs is not None:
            merged = dict(watchdog_knobs)
            merged.update(dict(self.watchdog_knobs))
            watchdog_knobs = _knobs(merged)
        return TunableConfig(
            scheduler=scheduler,
            admission=admission,
            admission_knobs=admission_knobs,
            watchdog_knobs=watchdog_knobs,
        )

    def describe(self) -> str:
        parts = []
        if self.scheduler:
            parts.append(f"scheduler->{self.scheduler}")
        if self.admission is not None:
            knobs = ",".join(
                f"{k}={v}" for k, v in self.admission_knobs
            )
            parts.append(
                f"admission->{self.admission}"
                + (f"({knobs})" if knobs else "")
            )
        if self.watchdog_knobs:
            knobs = ",".join(f"{k}={v}" for k, v in self.watchdog_knobs)
            parts.append(f"watchdog({knobs})")
        return (
            f"[{self.patch_id} risk={self.risk}] "
            f"{self.rule}: {' '.join(parts) or 'no-op'}"
        )

    def to_dict(self) -> dict:
        return {
            "patch_id": self.patch_id,
            "rule": self.rule,
            "symptom": self.symptom,
            "risk": self.risk,
            "reason": self.reason,
            "scheduler": self.scheduler,
            "admission": self.admission,
            "admission_knobs": dict(self.admission_knobs),
            "watchdog_knobs": dict(self.watchdog_knobs),
        }


def _short_hash(payload: dict) -> str:
    canon = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------------
# Rule table
# ----------------------------------------------------------------------
def _backlog_depth(symptoms: Sequence[Symptom], default: int) -> int:
    """Observed backlog depth: queue_growth evidence, else ``default``."""
    for s in symptoms:
        if s.kind == "queue_growth":
            return max(default, int(s.severity))
    return default


def _shed_patch(rule, symptom, risk, reason, capacity) -> ConfigPatch:
    capacity = max(4, int(capacity))
    return ConfigPatch(
        rule=rule, symptom=symptom, risk=risk, reason=reason,
        admission="shed",
        admission_knobs=_knobs({
            "queue_capacity": capacity,
            "low_watermark": max(1, capacity // 2),
        }),
    )


def _degrade_patch(rule, symptom, risk, reason, high, **extra) -> ConfigPatch:
    high = max(2, int(high))
    knobs = {"high_watermark": high, "low_watermark": max(1, high // 2)}
    knobs.update(extra)
    return ConfigPatch(
        rule=rule, symptom=symptom, risk=risk, reason=reason,
        admission="degrade", admission_knobs=_knobs(knobs),
    )


def propose(
    symptoms: Sequence[Symptom],
    tuning: TunableConfig,
) -> Tuple[ConfigPatch, ...]:
    """Candidate patches for ``symptoms`` against ``tuning``.

    Deterministic: fixed rule order, content-id dedup, no-op patches
    dropped, result sorted by ``(risk, patch_id)`` — the verifier's
    canonical candidate order.
    """
    patches = []
    policy = tuning.admission_policy()
    has_watchdog = tuning.watchdog_knobs is not None
    wd = dict(tuning.watchdog_knobs or ())

    for s in symptoms:
        if s.kind in ("slo_breach", "queue_growth"):
            depth = _backlog_depth(symptoms, 24)
            if tuning.admission == "unbounded":
                # An unbounded queue under sustained pressure: bound it.
                # Cap scaled to half the observed backlog so the bound
                # bites, floored well above the board's slot count.
                patches.append(_shed_patch(
                    "bound-backlog", s.kind, 1,
                    f"unbounded queue at depth {depth}; shed above "
                    f"{max(4, depth // 2)}",
                    depth // 2,
                ))
                patches.append(_degrade_patch(
                    "degrade-backlog", s.kind, 2,
                    "unbounded queue under pressure; degrade service "
                    "above the watermark instead of shedding",
                    depth // 2,
                ))
            elif tuning.admission == "shed":
                current = policy.queue_capacity
                tightened = max(4, current * 3 // 4)
                if tightened < current:
                    patches.append(_shed_patch(
                        "tighten-shed", s.kind, 1,
                        f"shed policy still breaching; tighten capacity "
                        f"{current} -> {tightened}",
                        tightened,
                    ))
            elif tuning.admission == "degrade":
                current = policy.slot_cap
                lowered = max(1, current // 2)
                if lowered < current:
                    patches.append(ConfigPatch(
                        rule="degrade-slots", symptom=s.kind, risk=1,
                        reason=f"degrade policy still breaching; slot "
                               f"cap {current} -> {lowered}",
                        admission="degrade",
                        admission_knobs=_knobs({
                            **dict(tuning.admission_knobs),
                            "slot_cap": lowered,
                        }),
                    ))
            if tuning.scheduler != "nimblock":
                patches.append(ConfigPatch(
                    rule="scheduler-swap", symptom=s.kind, risk=3,
                    reason=f"{tuning.scheduler} breaching; swap to the "
                           "preemptive nimblock scheduler",
                    scheduler="nimblock",
                ))

        elif s.kind == "shed_storm":
            if tuning.admission == "shed":
                current = policy.queue_capacity
                patches.append(_shed_patch(
                    "relax-shed", s.kind, 2,
                    f"shedding {100.0 * s.severity:.0f}% of arrivals; "
                    f"raise capacity {current} -> {current + current // 2}",
                    current + max(1, current // 2),
                ))
                patches.append(_degrade_patch(
                    "storm-degrade", s.kind, 3,
                    "sustained shed storm; degrade service instead of "
                    "dropping work",
                    current,
                ))

        elif s.kind == "overload_oscillation":
            if tuning.admission == "shed":
                cap = policy.queue_capacity
                low = max(1, cap // 3)
                current_low = policy.effective_low_watermark()
                if low < current_low:
                    patches.append(ConfigPatch(
                        rule="widen-hysteresis", symptom=s.kind, risk=1,
                        reason=f"{int(s.severity)} overload enters; "
                               f"low watermark {current_low} "
                               f"-> {low}",
                        admission="shed",
                        admission_knobs=_knobs({
                            "queue_capacity": cap,
                            "low_watermark": low,
                        }),
                    ))
            elif tuning.admission == "degrade":
                high = policy.high_watermark
                low = max(1, high // 3)
                if low < policy.low_watermark:
                    patches.append(_degrade_patch(
                        "widen-hysteresis", s.kind, 1,
                        f"{int(s.severity)} overload enters; widen the "
                        "degrade hysteresis band",
                        high, low_watermark=low,
                    ))

        elif s.kind == "starvation" and has_watchdog:
            current = int(wd.get("starvation_passes", 400))
            tightened = max(50, current // 2)
            if tightened < current:
                patches.append(ConfigPatch(
                    rule="watchdog-starvation", symptom=s.kind, risk=0,
                    reason=f"{int(s.severity)} starvation detections; "
                           f"boost sooner ({current} -> {tightened} "
                           "passes)",
                    watchdog_knobs=_knobs({
                        "starvation_passes": tightened,
                        "boost_tokens": True,
                    }),
                ))

        elif s.kind == "stall_cluster" and has_watchdog:
            current = int(wd.get("stall_passes", 20))
            tightened = max(5, current // 2)
            if tightened < current:
                patches.append(ConfigPatch(
                    rule="watchdog-stall", symptom=s.kind, risk=0,
                    reason=f"{int(s.severity)} stall detections; kick "
                           f"sooner ({current} -> {tightened} passes)",
                    watchdog_knobs=_knobs({
                        "stall_passes": tightened,
                        "cooldown_passes": max(
                            10, int(wd.get("cooldown_passes", 50)) // 2
                        ),
                    }),
                ))

        elif s.kind == "power_pressure":
            if tuning.admission == "degrade":
                current = policy.slot_cap
                lowered = max(1, current - 1)
                if lowered < current:
                    patches.append(ConfigPatch(
                        rule="power-slots", symptom=s.kind, risk=1,
                        reason=f"draw {s.severity:.2f}x budget; slot "
                               f"cap {current} -> {lowered}",
                        admission="degrade",
                        admission_knobs=_knobs({
                            **dict(tuning.admission_knobs),
                            "slot_cap": lowered,
                        }),
                    ))
            else:
                patches.append(_degrade_patch(
                    "power-degrade", s.kind, 2,
                    f"draw {s.severity:.2f}x budget; throttle "
                    "concurrency via degrade slot caps",
                    _backlog_depth(symptoms, 12),
                    slot_cap=2, cap_pipelining=True,
                ))

    # Dedup by content, drop no-ops, canonical order.
    unique = {}
    for patch in patches:
        if patch.apply(tuning) == tuning:
            continue
        unique.setdefault(patch.patch_id, patch)
    return tuple(
        sorted(unique.values(), key=lambda p: (p.risk, p.patch_id))
    )
