"""Patch verification: replay the offending episode under a candidate.

Third stage of the remediation pipeline. The verifier never trusts a
rule: every candidate patch is scored by actually *replaying* the
captured arrival episode — a closed hypervisor run over the same event
specs, windows aligned to the same tumbling grid — under the patched
configuration, with the runtime invariant checker armed. A patch is
rejected if the replay trips an invariant, raises, or fails to beat the
baseline replay's score.

Scoring is the two-dimensional SLO applied per window (the same
:class:`~repro.metrics.slo.SloTarget` semantics the service tier
reports): *attainment* is the fraction of active windows meeting the
target, where an active window saw an arrival, a completion or a loss.
Drain windows count — a policy that accepts everything and drags a
half-minute backlog through ten windows of huge p99 scores worse than
one that sheds early and keeps every later window inside the target.
Ties break toward lower overall p99, then lower risk, then patch id —
fully deterministic, so decision logs are byte-identical at any
``--jobs`` and under replay on/off.

Replays are content-addressed: an :class:`EpisodeMemo` keyed by the
sha256 of (episode, tuning, seed, window, SLO, invariants) short-
circuits repeated verification of the same patch against the same
window, the in-memory analogue of the PR-2 run cache.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AutotuneError, InvariantViolation, ReproError
from repro.metrics.response import percentile
from repro.metrics.slo import SloTarget
from repro.autotune.proposals import ConfigPatch, TunableConfig
from repro.workload.events import EventSpec

__all__ = [
    "EpisodeMemo",
    "EpisodeScore",
    "Verification",
    "replay_episode",
    "verify_candidates",
]

#: Window score row: (index, arrived, completed, lost, p99_ms, met).
WindowRow = Tuple[int, int, int, int, float, bool]


@dataclass(frozen=True)
class EpisodeScore:
    """One episode replay reduced to its comparable outcome."""

    attainment: float
    p99_ms: float
    loss_frac: float
    arrived: int
    completed: int
    shed: int
    dropped: int
    span_ms: float
    windows: Tuple[WindowRow, ...] = ()
    #: Violated invariant name (the replay aborted) or None.
    invariant: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.invariant is None

    def beats(self, other: "EpisodeScore") -> bool:
        """Strictly better than ``other`` (the apply gate)."""
        if not self.ok:
            return False
        if not other.ok:
            return True
        if self.attainment != other.attainment:
            return self.attainment > other.attainment
        return _p99_less(self.p99_ms, other.p99_ms)

    def to_dict(self) -> dict:
        return {
            "attainment": self.attainment,
            "p99_ms": None if math.isnan(self.p99_ms) else self.p99_ms,
            "loss_frac": self.loss_frac,
            "arrived": self.arrived,
            "completed": self.completed,
            "shed": self.shed,
            "dropped": self.dropped,
            "span_ms": self.span_ms,
            "windows": [
                {
                    "index": index,
                    "arrived": arrived,
                    "completed": completed,
                    "lost": lost,
                    "p99_ms": None if math.isnan(p99) else p99,
                    "met": met,
                }
                for index, arrived, completed, lost, p99, met
                in self.windows
            ],
            "invariant": self.invariant,
        }

    def digest(self) -> str:
        """sha256 over the canonical score payload (the golden-pin and
        jobs/replay byte-identity surface for decision records)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _p99_less(a: float, b: float) -> bool:
    """a < b with NaN (= nothing completed) treated as worst."""
    if math.isnan(a):
        return False
    if math.isnan(b):
        return True
    return a < b


def _p99(values: Sequence[float]) -> float:
    """Exact p99 with the window convention: no samples is NaN."""
    if not values:
        return float("nan")
    return percentile(values, 99.0)


def score_episode(
    specs: Sequence[EventSpec],
    results,
    shed_arrivals_ms: Sequence[float],
    dropped: int,
    *,
    window_ms: float,
    slo: SloTarget,
    invariant: Optional[str] = None,
    span_ms: float = 0.0,
) -> EpisodeScore:
    """Reduce a finished closed replay to an :class:`EpisodeScore`.

    Window attribution matches the service tier: arrivals land in their
    arrival window, completions (and their response samples) in their
    retire window, and shed apps are lost in their *arrival* window
    (that is when the caller's stream gave them up for lost). Exact
    percentiles — the verifier compares small episodes, so no sketch.
    """
    arrived: Dict[int, int] = {}
    completed: Dict[int, int] = {}
    lost: Dict[int, int] = {}
    responses: Dict[int, List[float]] = {}
    for spec in specs:
        index = int(spec.arrival_ms // window_ms)
        arrived[index] = arrived.get(index, 0) + 1
    for result in results:
        index = int(result.retire_ms // window_ms)
        completed[index] = completed.get(index, 0) + 1
        responses.setdefault(index, []).append(result.response_ms)
    for arrival_ms in shed_arrivals_ms:
        index = int(arrival_ms // window_ms)
        lost[index] = lost.get(index, 0) + 1

    rows: List[WindowRow] = []
    met_count = 0
    for index in sorted(set(arrived) | set(completed) | set(lost)):
        n_arrived = arrived.get(index, 0)
        n_completed = completed.get(index, 0)
        n_lost = lost.get(index, 0)
        p99 = _p99(responses.get(index, ()))
        loss_frac = (n_lost / n_arrived) if n_arrived else 0.0
        met = slo.met(p99, loss_frac)
        met_count += met
        rows.append((index, n_arrived, n_completed, n_lost, p99, met))

    all_responses = [r for samples in responses.values() for r in samples]
    total = len(specs)
    return EpisodeScore(
        attainment=(met_count / len(rows)) if rows else 1.0,
        p99_ms=_p99(all_responses),
        loss_frac=((len(shed_arrivals_ms) + dropped) / total) if total
        else 0.0,
        arrived=total,
        completed=len(all_responses),
        shed=len(shed_arrivals_ms),
        dropped=dropped,
        span_ms=span_ms,
        windows=tuple(rows),
        invariant=invariant,
    )


def replay_episode(
    specs: Sequence[EventSpec],
    tuning: TunableConfig,
    *,
    seed: int = 0,
    window_ms: float,
    slo: SloTarget,
    config=None,
    invariants: bool = True,
) -> EpisodeScore:
    """Closed replay of one arrival episode under one configuration.

    Builds a fresh hypervisor exactly the way the live system would
    (same seeds, same policy materialization), submits the captured
    specs up front and runs to drain. Invariant trips and admission
    errors are *verdicts*, not failures: they come back as a score with
    ``invariant`` set, which the chooser treats as rejected.
    """
    from repro.admission.controller import AdmissionController
    from repro.admission.watchdog import Watchdog
    from repro.hypervisor.hypervisor import Hypervisor
    from repro.invariants.checker import InvariantChecker
    from repro.schedulers.registry import make_scheduler

    if not specs:
        raise AutotuneError("cannot replay an empty episode")
    controller = AdmissionController(tuning.admission_policy(), seed=seed)
    watchdog_config = tuning.watchdog_config()
    hypervisor = Hypervisor(
        make_scheduler(tuning.scheduler),
        config=config,
        admission=controller,
        watchdog=None if watchdog_config is None
        else Watchdog(watchdog_config),
        observer=InvariantChecker() if invariants else None,
        # Full mode: on a violation the checker dumps the offending
        # trace window, which a rowless metrics trace cannot serve.
        # Episodes are small, so the row cost is negligible.
        mode="full",
    )
    invariant = None
    try:
        for spec in specs:
            hypervisor.submit(spec.to_request())
        hypervisor.run()
    except InvariantViolation as exc:
        invariant = exc.invariant
    except ReproError as exc:
        invariant = f"{type(exc).__name__}: {exc}"
    results = hypervisor.results() if invariant is None else ()
    shed_arrivals = [app.arrival_ms for app in hypervisor.shed]
    return score_episode(
        specs,
        results,
        shed_arrivals,
        controller.stats.dropped,
        window_ms=window_ms,
        slo=slo,
        invariant=invariant,
        span_ms=hypervisor.engine.now,
    )


class EpisodeMemo:
    """In-memory content-addressed replay memo (PR-2 cache idiom)."""

    def __init__(self) -> None:
        self._scores: Dict[str, EpisodeScore] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        specs: Sequence[EventSpec],
        tuning: TunableConfig,
        seed: int,
        window_ms: float,
        slo: SloTarget,
        invariants: bool,
    ) -> str:
        payload = {
            "specs": [
                (s.benchmark, s.batch_size, s.priority, s.arrival_ms)
                for s in specs
            ],
            "tuning": tuning.to_dict(),
            "seed": seed,
            "window_ms": window_ms,
            "slo": (slo.p99_ms, slo.max_loss_frac),
            "invariants": invariants,
        }
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def replay(self, specs, tuning, *, seed, window_ms, slo, config=None,
               invariants=True) -> EpisodeScore:
        key = self.key(specs, tuning, seed, window_ms, slo, invariants)
        score = self._scores.get(key)
        if score is not None:
            self.hits += 1
            return score
        self.misses += 1
        score = replay_episode(
            specs, tuning, seed=seed, window_ms=window_ms, slo=slo,
            config=config, invariants=invariants,
        )
        self._scores[key] = score
        return score


@dataclass(frozen=True)
class Verification:
    """One candidate's replay outcome plus the chooser's verdict."""

    patch: ConfigPatch
    score: EpisodeScore
    #: "verified" or "rejected:<reason>".
    verdict: str

    def to_dict(self) -> dict:
        return {
            "patch": self.patch.to_dict(),
            "score": self.score.to_dict(),
            "verdict": self.verdict,
        }


def verify_candidates(
    specs: Sequence[EventSpec],
    tuning: TunableConfig,
    candidates: Sequence[ConfigPatch],
    *,
    seed: int = 0,
    window_ms: float,
    slo: SloTarget,
    config=None,
    invariants: bool = True,
    memo: Optional[EpisodeMemo] = None,
) -> Tuple[EpisodeScore, Tuple[Verification, ...], Optional[Verification]]:
    """Score the baseline and every candidate; pick the winner.

    Returns ``(baseline_score, verifications, winner)`` where ``winner``
    is None if no candidate strictly beats the baseline. Verifications
    come back in candidate order; the winner is the best verified
    candidate by ``(attainment desc, p99 asc, risk asc, patch_id asc)``.
    """
    memo = memo if memo is not None else EpisodeMemo()
    baseline = memo.replay(
        specs, tuning, seed=seed, window_ms=window_ms, slo=slo,
        config=config, invariants=invariants,
    )
    verifications: List[Verification] = []
    for patch in candidates:
        score = memo.replay(
            specs, patch.apply(tuning), seed=seed, window_ms=window_ms,
            slo=slo, config=config, invariants=invariants,
        )
        if not score.ok:
            verdict = f"rejected:invariant:{score.invariant}"
        elif score.beats(baseline):
            verdict = "verified"
        elif score.attainment < baseline.attainment:
            verdict = "rejected:regression"
        else:
            verdict = "rejected:no-improvement"
        verifications.append(Verification(patch, score, verdict))

    winner: Optional[Verification] = None
    for verification in verifications:
        if verification.verdict != "verified":
            continue
        if winner is None or _ranks_above(verification, winner):
            winner = verification
    return baseline, tuple(verifications), winner


def _ranks_above(a: Verification, b: Verification) -> bool:
    if a.score.attainment != b.score.attainment:
        return a.score.attainment > b.score.attainment
    if a.score.p99_ms != b.score.p99_ms and not (
        math.isnan(a.score.p99_ms) and math.isnan(b.score.p99_ms)
    ):
        return _p99_less(a.score.p99_ms, b.score.p99_ms)
    if a.patch.risk != b.patch.risk:
        return a.patch.risk < b.patch.risk
    return a.patch.patch_id < b.patch.patch_id
