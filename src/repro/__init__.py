"""Nimblock reproduction: fine-grained FPGA sharing through virtualization.

A faithful, simulation-backed reproduction of *"Nimblock: Scheduling for
Fine-grained FPGA Sharing through Virtualization"* (ISCA 2023). The library
models a slot-based FPGA overlay (ZCU106, ten slots, serialized 80 ms
partial reconfiguration), a hypervisor runtime, the Nimblock scheduling
algorithm with token-based candidate selection, goal-number slot
allocation, automatic inter-batch pipelining and batch-preemption, plus
the paper's four comparison schedulers, benchmark suite, workload
scenarios and every evaluation experiment.

Quickstart
----------
>>> from repro import Hypervisor, make_scheduler, scenario_sequence, STRESS
>>> hv = Hypervisor(make_scheduler("nimblock"))
>>> for request in scenario_sequence(STRESS, seed=1, num_events=5).to_requests():
...     _ = hv.submit(request)
>>> hv.run()
>>> results = hv.results()
"""

from repro.config import PRIORITY_LEVELS, SystemConfig, ZCU106_CONFIG
from repro.errors import ReproError
from repro.faults import FaultConfig, FaultInjector, FaultStats, RecoveryPolicy
from repro.apps import BENCHMARK_NAMES, BenchmarkApp, get_benchmark
from repro.taskgraph import TaskGraph, TaskSpec
from repro.hypervisor import (
    AppRequest,
    AppResult,
    FaaSGateway,
    FPGACluster,
    Hypervisor,
    single_slot_latency_ms,
)
from repro.sim import render_timeline
from repro.schedulers import ALL_SCHEDULERS, SchedulerPolicy, make_scheduler
from repro.core import NimblockScheduler
from repro.workload import (
    CHAOS_SCENARIOS,
    ChaosScenario,
    EventGenerator,
    EventSequence,
    EventSpec,
    REALTIME,
    SCENARIOS,
    STANDARD,
    STRESS,
    chaos_scenario,
    fixed_batch_sequence,
    scenario_sequence,
)

__version__ = "1.0.0"

__all__ = [
    "PRIORITY_LEVELS",
    "SystemConfig",
    "ZCU106_CONFIG",
    "ReproError",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "RecoveryPolicy",
    "BENCHMARK_NAMES",
    "BenchmarkApp",
    "get_benchmark",
    "TaskGraph",
    "TaskSpec",
    "AppRequest",
    "AppResult",
    "FaaSGateway",
    "FPGACluster",
    "Hypervisor",
    "single_slot_latency_ms",
    "render_timeline",
    "ALL_SCHEDULERS",
    "SchedulerPolicy",
    "make_scheduler",
    "NimblockScheduler",
    "CHAOS_SCENARIOS",
    "ChaosScenario",
    "EventGenerator",
    "EventSequence",
    "EventSpec",
    "REALTIME",
    "SCENARIOS",
    "STANDARD",
    "STRESS",
    "chaos_scenario",
    "fixed_batch_sequence",
    "scenario_sequence",
    "__version__",
]
