"""Nimblock reproduction: fine-grained FPGA sharing through virtualization.

A faithful, simulation-backed reproduction of *"Nimblock: Scheduling for
Fine-grained FPGA Sharing through Virtualization"* (ISCA 2023). The library
models a slot-based FPGA overlay (ZCU106, ten slots, serialized 80 ms
partial reconfiguration), a hypervisor runtime, the Nimblock scheduling
algorithm with token-based candidate selection, goal-number slot
allocation, automatic inter-batch pipelining and batch-preemption, plus
the paper's four comparison schedulers, benchmark suite, workload
scenarios and every evaluation experiment.

Quickstart
----------
>>> from repro import Hypervisor, make_scheduler, scenario_sequence, STRESS
>>> hv = Hypervisor(make_scheduler("nimblock"))
>>> for request in scenario_sequence(STRESS, seed=1, num_events=5).to_requests():
...     _ = hv.submit(request)
>>> hv.run()
>>> results = hv.results()
"""

from repro.version import __version__
from repro.config import PRIORITY_LEVELS, SystemConfig, ZCU106_CONFIG
from repro.errors import ExperimentError, ReproError
from repro.faults import FaultConfig, FaultInjector, FaultStats, RecoveryPolicy
from repro.apps import BENCHMARK_NAMES, BenchmarkApp, get_benchmark
from repro.taskgraph import TaskGraph, TaskSpec
from repro.hypervisor import (
    AppRequest,
    AppResult,
    FaaSGateway,
    FPGACluster,
    Hypervisor,
    single_slot_latency_ms,
)
from repro.sim import render_timeline
from repro.schedulers import ALL_SCHEDULERS, SchedulerPolicy, make_scheduler
from repro.core import NimblockScheduler
from repro.workload import (
    CHAOS_SCENARIOS,
    ChaosScenario,
    EventGenerator,
    EventSequence,
    EventSpec,
    REALTIME,
    SCENARIOS,
    STANDARD,
    STRESS,
    chaos_scenario,
    fixed_batch_sequence,
    make_arrivals,
    scenario_sequence,
    service_rate_process,
)
# Experiment-harness and observability entry points resolve lazily (PEP
# 562): simulating through the core never pays for — or even imports —
# the observe/experiments layers unless they are actually used. The
# zero-overhead structural test in tests/test_observe.py pins this down.
_LAZY_EXPORTS = {
    "ExperimentSettings": "repro.experiments.runner",
    "RunCache": "repro.experiments.runner",
    "Experiment": "repro.experiments.registry",
    "ExperimentResult": "repro.experiments.registry",
    "experiment_names": "repro.experiments.registry",
    "get_experiment": "repro.experiments.registry",
    "run_experiment": "repro.experiments.registry",
    "SimulationRun": "repro.facade",
    "simulate": "repro.facade",
    "serve": "repro.facade",
    "fleet": "repro.facade",
    "cluster_report": "repro.facade",
    "tune": "repro.facade",
    "tune_report": "repro.facade",
    "AutotuneConfig": "repro.autotune",
    "Autotuner": "repro.autotune",
    "ConfigPatch": "repro.autotune",
    "DetectorConfig": "repro.autotune",
    "Symptom": "repro.autotune",
    "TunableConfig": "repro.autotune",
    "detect": "repro.autotune",
    "propose": "repro.autotune",
    "replay_episode": "repro.autotune",
    "verify_candidates": "repro.autotune",
    "BoardProfile": "repro.cluster",
    "Cluster": "repro.cluster",
    "ClusterReport": "repro.cluster",
    "PLACEMENT_POLICIES": "repro.cluster",
    "PlacementDecision": "repro.cluster",
    "board_profile": "repro.cluster",
    "fleet_profiles": "repro.cluster",
    "make_placement": "repro.cluster",
    "QuantileSketch": "repro.service",
    "ServiceLoop": "repro.service",
    "ServiceReport": "repro.service",
    "WindowedMetrics": "repro.service",
    "SloTarget": "repro.metrics.slo",
    "Instrumentation": "repro.observe",
    "Span": "repro.observe",
    "build_spans": "repro.observe",
    "collect_metrics": "repro.observe",
    "observed_run": "repro.observe",
    "snapshot_run": "repro.observe",
    "ADMISSION_POLICIES": "repro.admission",
    "AdmissionController": "repro.admission",
    "AdmissionStats": "repro.admission",
    "Watchdog": "repro.admission",
    "WatchdogConfig": "repro.admission",
    "make_admission_policy": "repro.admission",
    "InvariantChecker": "repro.invariants",
    "checked_run": "repro.invariants",
}


def __getattr__(name: str):
    module_path = _LAZY_EXPORTS.get(name)
    if module_path is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_path), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "PRIORITY_LEVELS",
    "SystemConfig",
    "ZCU106_CONFIG",
    "ReproError",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "RecoveryPolicy",
    "BENCHMARK_NAMES",
    "BenchmarkApp",
    "get_benchmark",
    "TaskGraph",
    "TaskSpec",
    "AppRequest",
    "AppResult",
    "FaaSGateway",
    "FPGACluster",
    "Hypervisor",
    "single_slot_latency_ms",
    "render_timeline",
    "ALL_SCHEDULERS",
    "SchedulerPolicy",
    "make_scheduler",
    "NimblockScheduler",
    "CHAOS_SCENARIOS",
    "ChaosScenario",
    "EventGenerator",
    "EventSequence",
    "EventSpec",
    "REALTIME",
    "SCENARIOS",
    "STANDARD",
    "STRESS",
    "chaos_scenario",
    "fixed_batch_sequence",
    "make_arrivals",
    "scenario_sequence",
    "service_rate_process",
    "ExperimentError",
    "ExperimentSettings",
    "RunCache",
    "Experiment",
    "ExperimentResult",
    "experiment_names",
    "get_experiment",
    "run_experiment",
    "SimulationRun",
    "simulate",
    "serve",
    "fleet",
    "cluster_report",
    "tune",
    "tune_report",
    "AutotuneConfig",
    "Autotuner",
    "ConfigPatch",
    "DetectorConfig",
    "Symptom",
    "TunableConfig",
    "detect",
    "propose",
    "replay_episode",
    "verify_candidates",
    "BoardProfile",
    "Cluster",
    "ClusterReport",
    "PLACEMENT_POLICIES",
    "PlacementDecision",
    "board_profile",
    "fleet_profiles",
    "make_placement",
    "QuantileSketch",
    "ServiceLoop",
    "ServiceReport",
    "WindowedMetrics",
    "SloTarget",
    "Instrumentation",
    "Span",
    "build_spans",
    "collect_metrics",
    "observed_run",
    "snapshot_run",
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionStats",
    "Watchdog",
    "WatchdogConfig",
    "make_admission_policy",
    "InvariantChecker",
    "checked_run",
    "__version__",
]
