"""Fault injection and recovery for the virtualized FPGA (``repro.faults``).

The fault-free simulator models a perfect ZCU106; this subsystem makes it
survive an imperfect one. :class:`FaultConfig` describes transient slot
faults, permanent slot failures, reconfiguration failures and ICAP jitter;
:class:`FaultInjector` schedules them deterministically on the simulation
event heap; :class:`RecoveryPolicy` tunes how the hypervisor retries,
relocates and blacklists. Reliability metrics live in
:mod:`repro.metrics.reliability`; chaos scenarios in
:mod:`repro.workload.scenarios`.

Quickstart
----------
>>> from repro import AppRequest, Hypervisor, get_benchmark, make_scheduler
>>> from repro.faults import FaultConfig, FaultInjector
>>> injector = FaultInjector(FaultConfig(seed=7, transient_mtbf_ms=5000.0))
>>> hv = Hypervisor(make_scheduler("nimblock"), faults=injector)
>>> of = get_benchmark("of")
>>> _ = hv.submit(AppRequest(of.name, of.graph, batch_size=5, priority=9,
...                          arrival_ms=0.0))
>>> hv.run()
>>> hv.all_retired
True
"""

from repro.faults.injector import FAULT_EVENT_PRIORITY, FaultInjector
from repro.faults.models import FaultConfig, FaultStats
from repro.faults.recovery import RecoveryPolicy

__all__ = [
    "FAULT_EVENT_PRIORITY",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "RecoveryPolicy",
]
