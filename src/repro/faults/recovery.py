"""Recovery policies the hypervisor applies when faults strike.

Three mechanisms, all built on primitives the paper already provides:

* **retry with backoff** — a failed reconfiguration rolls the task back to
  PENDING and schedules an extra scheduler pass after an exponentially
  growing (capped) backoff; the policy then naturally re-issues the
  configuration, preferring whichever healthy slot is free first;
* **relocate to a healthy slot** — a task evicted by a slot fault is
  detached with the batch-boundary rollback machinery
  (:meth:`repro.hypervisor.application.TaskRun.detach`, the same primitive
  Algorithm 2's preemption uses), so its ``items_done`` counter *is* its
  checkpoint and it resumes on any other slot with zero recomputation of
  completed items;
* **slot blacklisting** — a permanent fault marks the slot DEAD; the
  injector refuses to kill the last ``min_healthy_slots`` slots so the
  workload always retains forward progress.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RecoveryError


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for the hypervisor's fault-recovery behaviour.

    ``backoff_ms(attempt)`` implements capped exponential backoff:
    ``min(base x factor^(attempt-1), cap)``.

    >>> RecoveryPolicy().backoff_ms(1)
    5.0
    >>> RecoveryPolicy(backoff_base_ms=4.0, backoff_factor=2.0).backoff_ms(3)
    16.0
    """

    backoff_base_ms: float = 5.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 200.0
    min_healthy_slots: int = 1

    def __post_init__(self) -> None:
        if self.backoff_base_ms <= 0:
            raise RecoveryError(
                f"backoff_base_ms must be > 0, got {self.backoff_base_ms}"
            )
        if self.backoff_factor < 1:
            raise RecoveryError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_cap_ms < self.backoff_base_ms:
            raise RecoveryError(
                "backoff_cap_ms must be >= backoff_base_ms, got "
                f"{self.backoff_cap_ms} < {self.backoff_base_ms}"
            )
        if self.min_healthy_slots < 1:
            raise RecoveryError(
                "min_healthy_slots must be >= 1, got "
                f"{self.min_healthy_slots}"
            )

    def backoff_ms(self, attempt: int) -> float:
        """Delay before the ``attempt``-th retry (attempts count from 1)."""
        if attempt < 1:
            raise RecoveryError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_base_ms * self.backoff_factor ** (attempt - 1),
            self.backoff_cap_ms,
        )
