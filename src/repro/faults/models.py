"""Fault models for the virtualized FPGA (configuration + counters).

Four failure modes, motivated by the reliability literature on partially
reconfigurable fabrics (THEMIS's heterogeneous/failing tenants; task-based
preemptive PR scheduling treating DPR as an unreliable, contended
operation):

* **transient slot faults** — SEU-style upsets arriving per slot as a
  Poisson process (exponential inter-arrival, mean ``transient_mtbf_ms``);
  the slot is unusable until a scrub lasting ``transient_repair_ms``
  completes;
* **permanent slot failures** — Poisson arrivals with mean
  ``permanent_mtbf_ms``; the slot is blacklisted forever;
* **reconfiguration failures** — each partial reconfiguration fails with
  probability ``config_failure_prob`` (CRC error, ICAP abort); the wasted
  CAP time is charged and the task rolls back to PENDING;
* **ICAP latency jitter** — each reconfiguration's duration is perturbed
  by ``uniform(-f, +f) x reconfig_ms`` with ``f = config_jitter_frac``.

All values are in simulated milliseconds. A default-constructed
:class:`FaultConfig` disables everything (``enabled`` is False), which the
hypervisor treats as identical to running without an injector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_FAULT_REPAIR_MS
from repro.errors import FaultInjectionError


@dataclass(frozen=True)
class FaultConfig:
    """Immutable description of which faults to inject, and how often.

    A rate knob of ``0.0`` disables that failure mode entirely; a fully
    zero config injects nothing and draws nothing that affects the run.
    """

    seed: int = 0
    transient_mtbf_ms: float = 0.0
    transient_repair_ms: float = DEFAULT_FAULT_REPAIR_MS
    permanent_mtbf_ms: float = 0.0
    config_failure_prob: float = 0.0
    config_jitter_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.transient_mtbf_ms < 0:
            raise FaultInjectionError(
                f"transient_mtbf_ms must be >= 0, got {self.transient_mtbf_ms}"
            )
        if self.transient_repair_ms <= 0:
            raise FaultInjectionError(
                "transient_repair_ms must be > 0, got "
                f"{self.transient_repair_ms}"
            )
        if self.permanent_mtbf_ms < 0:
            raise FaultInjectionError(
                f"permanent_mtbf_ms must be >= 0, got {self.permanent_mtbf_ms}"
            )
        if not 0 <= self.config_failure_prob < 1:
            raise FaultInjectionError(
                "config_failure_prob must be in [0, 1), got "
                f"{self.config_failure_prob}"
            )
        if not 0 <= self.config_jitter_frac < 1:
            raise FaultInjectionError(
                "config_jitter_frac must be in [0, 1), got "
                f"{self.config_jitter_frac}"
            )

    @property
    def enabled(self) -> bool:
        """True if any failure mode can actually fire."""
        return (
            self.transient_mtbf_ms > 0
            or self.permanent_mtbf_ms > 0
            or self.config_failure_prob > 0
            or self.config_jitter_frac > 0
        )


@dataclass
class FaultStats:
    """Mutable counters the hypervisor accumulates during one run.

    All zero after a fault-free run; ``work_lost_ms`` sums the partial
    batch-item time destroyed by slot faults plus the CAP time wasted by
    failed reconfigurations (batch-boundary rollback itself loses nothing —
    completed items are retained, exactly the paper's preemption argument).
    """

    transient_faults: int = 0
    permanent_faults: int = 0
    config_failures: int = 0
    repairs: int = 0
    evictions: int = 0
    relocations: int = 0
    items_lost: int = 0
    work_lost_ms: float = 0.0

    @property
    def total_faults(self) -> int:
        """All injected faults of every kind."""
        return (
            self.transient_faults
            + self.permanent_faults
            + self.config_failures
        )
