"""Deterministic fault injection driven by the simulation event heap.

The injector owns *when* faults happen; the hypervisor owns *what* they do
(eviction, rollback, tracing — see
:meth:`repro.hypervisor.hypervisor.Hypervisor.inject_slot_fault`).

Determinism contract
--------------------
Every random draw comes from a private stream seeded by
``(config.seed, purpose, slot)``, and every injection is an ordinary event
on the engine's ``(time, priority, sequence)`` heap. Two runs of the same
workload with the same :class:`FaultConfig` therefore produce
byte-identical traces — the same guarantee the fault-free simulator makes,
extended to chaos runs (guarded by ``tests/test_faults.py``).

Fault timelines are per slot and Poisson: inter-arrival times are
exponential with the configured MTBF. A timeline stops rescheduling once
the workload has fully retired (so the event heap always drains) and a
permanent-fault timeline additionally stops once its slot is dead.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import FaultInjectionError
from repro.faults.models import FaultConfig
from repro.overlay.device import SlotHealth

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.hypervisor import Hypervisor

#: Event priority for fault arrivals and repairs: after application
#: arrivals (-5), before item completions (-2), so a fault lands on the
#: state the slot was in "just before" anything else happens this instant.
FAULT_EVENT_PRIORITY = -3


class FaultInjector:
    """Schedules slot faults, repairs, and per-reconfiguration outcomes."""

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        self.config = config or FaultConfig()
        self._hv: Optional["Hypervisor"] = None
        self._config_rng = random.Random(f"{self.config.seed}:config")
        self._transient_rngs: List[random.Random] = []
        self._permanent_rngs: List[random.Random] = []

    @property
    def attached(self) -> bool:
        """True once wired to a hypervisor."""
        return self._hv is not None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, hypervisor: "Hypervisor") -> None:
        """Bind to one hypervisor and arm the per-slot fault timelines."""
        if self._hv is not None:
            raise FaultInjectionError(
                "a FaultInjector drives exactly one hypervisor; "
                "create a fresh injector per run"
            )
        self._hv = hypervisor
        num_slots = hypervisor.device.num_slots
        seed = self.config.seed
        self._transient_rngs = [
            random.Random(f"{seed}:transient:{i}") for i in range(num_slots)
        ]
        self._permanent_rngs = [
            random.Random(f"{seed}:permanent:{i}") for i in range(num_slots)
        ]
        if self.config.transient_mtbf_ms > 0:
            for index in range(num_slots):
                self._arm_transient(index)
        if self.config.permanent_mtbf_ms > 0:
            for index in range(num_slots):
                self._arm_permanent(index)

    def _require_hv(self) -> "Hypervisor":
        if self._hv is None:
            raise FaultInjectionError("injector is not attached")
        return self._hv

    # ------------------------------------------------------------------
    # Transient (SEU-style) slot faults
    # ------------------------------------------------------------------
    def _arm_transient(self, slot_index: int) -> None:
        hv = self._require_hv()
        delta = self._transient_rngs[slot_index].expovariate(
            1.0 / self.config.transient_mtbf_ms
        )
        hv.engine.schedule_delay(
            delta,
            lambda now, i=slot_index: self._on_transient(now, i),
            FAULT_EVENT_PRIORITY,
        )

    def _on_transient(self, now: float, slot_index: int) -> None:
        hv = self._require_hv()
        if hv.all_retired:
            return  # workload drained; let the heap empty out
        if hv.device.slot(slot_index).health is SlotHealth.DEAD:
            return  # permanently failed; this timeline is over
        injected = hv.inject_slot_fault(now, slot_index, permanent=False)
        if injected:
            hv.engine.schedule_delay(
                self.config.transient_repair_ms,
                lambda done, i=slot_index: hv.repair_slot(done, i),
                FAULT_EVENT_PRIORITY,
            )
        self._arm_transient(slot_index)

    # ------------------------------------------------------------------
    # Permanent slot failures
    # ------------------------------------------------------------------
    def _arm_permanent(self, slot_index: int) -> None:
        hv = self._require_hv()
        delta = self._permanent_rngs[slot_index].expovariate(
            1.0 / self.config.permanent_mtbf_ms
        )
        hv.engine.schedule_delay(
            delta,
            lambda now, i=slot_index: self._on_permanent(now, i),
            FAULT_EVENT_PRIORITY,
        )

    def _on_permanent(self, now: float, slot_index: int) -> None:
        hv = self._require_hv()
        if hv.all_retired:
            return
        if hv.device.slot(slot_index).health is SlotHealth.DEAD:
            return
        injected = hv.inject_slot_fault(now, slot_index, permanent=True)
        if not injected:
            # Refused (last-healthy-slot guard); try again later so a
            # repaired board can still degrade further.
            self._arm_permanent(slot_index)

    # ------------------------------------------------------------------
    # Reconfiguration outcomes
    # ------------------------------------------------------------------
    def draw_config_outcome(self, reconfig_ms: float) -> Tuple[bool, float]:
        """(will_fail, jitter_ms) for one partial reconfiguration.

        Draw order is the hypervisor's configuration order, which the
        event heap makes deterministic. Modes that are disabled draw
        nothing, so e.g. a jitter-only config perturbs durations without
        consuming failure-stream entropy.
        """
        will_fail = False
        jitter_ms = 0.0
        if self.config.config_failure_prob > 0:
            will_fail = (
                self._config_rng.random() < self.config.config_failure_prob
            )
        if self.config.config_jitter_frac > 0:
            frac = self.config.config_jitter_frac
            jitter_ms = reconfig_ms * self._config_rng.uniform(-frac, frac)
        return will_fail, jitter_ms
