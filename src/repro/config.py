"""System-wide configuration for the virtualized FPGA platform.

The values here mirror the evaluation platform of the paper (Section 5.1):
a Xilinx ZCU106 whose overlay is partitioned into ten uniform slots, a
partial-reconfiguration latency of roughly 80 ms per slot, a 400 ms
scheduling interval, and the three PREMA priority levels 1/3/9.

All timing values are in **milliseconds** of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

#: Priority levels used throughout the paper (low, medium, high).
PRIORITY_LEVELS: Tuple[int, ...] = (1, 3, 9)

#: Default number of reconfigurable slots on the ZCU106 overlay.
DEFAULT_NUM_SLOTS = 10

#: Average partial-reconfiguration time for one slot (paper: ~80 ms).
DEFAULT_RECONFIG_MS = 80.0

#: Hypervisor software cost charged per dispatched reconfiguration: the
#: ARM core loads the partial bitstream, programs the CAP and allocates
#: buffers before the hardware transfer starts. The paper notes measured
#: response times "may include additional overhead from scheduler
#: actions"; modeling it keeps idealized single-slot deadlines (computed
#: from the raw 80 ms) unreachable by a zero-slack schedule, as on the
#: real board.
DEFAULT_DISPATCH_OVERHEAD_MS = 2.0

#: Interval at which slot reallocation is triggered (paper: 400 ms).
DEFAULT_SCHEDULING_INTERVAL_MS = 400.0

# ---------------------------------------------------------------------------
# Fault-injection calibration (repro.faults)
# ---------------------------------------------------------------------------
#: A chaos ``fault_rate`` of 1.0 means one transient fault per slot per
#: ten seconds; the scenario weights in ``repro.workload.scenarios`` divide
#: this base MTBF by ``fault_rate x weight``. The base is sized so that at
#: the drill rates (0.02-0.1) even the longest benchmark item (deep
#: reconstruction, ~66 s per batch item) usually survives a slot's MTBF —
#: faults perturb runs without making forward progress improbable.
FAULT_RATE_UNIT_MTBF_MS = 10_000.0

#: Time to scrub/repair a slot after a transient (SEU-style) fault —
#: roughly two partial reconfigurations: blank the region, re-write it.
DEFAULT_FAULT_REPAIR_MS = 160.0


@dataclass(frozen=True)
class SystemConfig:
    """Immutable description of the simulated platform and scheduler knobs.

    Parameters
    ----------
    num_slots:
        Number of uniform reconfigurable slots in the overlay.
    reconfig_ms:
        Latency of one partial reconfiguration. Reconfigurations are
        serialized through a single configuration access port (CAP).
    scheduling_interval_ms:
        Period of the timer that triggers token accumulation and slot
        reallocation even when no other event fires.
    priority_levels:
        Increasing priority levels; tokens thresholds are floored to these.
    token_alpha:
        The ``alpha`` multiplier in Algorithm 1 line 6 controlling how fast
        waiting applications accumulate tokens. The paper does not publish
        its value; we calibrate to 0.05 so that under dense (real-time)
        arrivals lower-priority applications take several seconds of
        degradation to cross the next priority level, preserving the
        candidate-pool pruning that protects high-priority deadlines
        (Figure 7's shape). Larger values erode priority separation,
        smaller values starve low-priority applications longer.
    saturation_threshold:
        Minimum fractional latency improvement required for one more slot to
        be considered useful during saturation-point analysis.
    hls_estimation_error:
        Bound on the relative deviation of synthesized HLS latency
        estimates from true task latencies. Zero reproduces the paper
        (whose estimates come straight from the HLS reports); nonzero
        values drive the estimate-sensitivity extension study.
    """

    num_slots: int = DEFAULT_NUM_SLOTS
    reconfig_ms: float = DEFAULT_RECONFIG_MS
    dispatch_overhead_ms: float = DEFAULT_DISPATCH_OVERHEAD_MS
    scheduling_interval_ms: float = DEFAULT_SCHEDULING_INTERVAL_MS
    hls_estimation_error: float = 0.0
    priority_levels: Tuple[int, ...] = field(default=PRIORITY_LEVELS)
    token_alpha: float = 0.05
    saturation_threshold: float = 0.05

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {self.num_slots}")
        if self.reconfig_ms < 0:
            raise ValueError(f"reconfig_ms must be >= 0, got {self.reconfig_ms}")
        if self.dispatch_overhead_ms < 0:
            raise ValueError(
                "dispatch_overhead_ms must be >= 0, got "
                f"{self.dispatch_overhead_ms}"
            )
        if self.scheduling_interval_ms <= 0:
            raise ValueError(
                "scheduling_interval_ms must be > 0, got "
                f"{self.scheduling_interval_ms}"
            )
        if not self.priority_levels:
            raise ValueError("priority_levels must not be empty")
        levels = tuple(self.priority_levels)
        if list(levels) != sorted(levels):
            raise ValueError(f"priority_levels must be increasing, got {levels}")
        if any(p <= 0 for p in levels):
            raise ValueError(f"priority_levels must be positive, got {levels}")
        if self.token_alpha <= 0:
            raise ValueError(f"token_alpha must be > 0, got {self.token_alpha}")
        if not 0 < self.saturation_threshold < 1:
            raise ValueError(
                "saturation_threshold must be in (0, 1), got "
                f"{self.saturation_threshold}"
            )
        if not 0 <= self.hls_estimation_error < 1:
            raise ValueError(
                "hls_estimation_error must be in [0, 1), got "
                f"{self.hls_estimation_error}"
            )

    @property
    def highest_priority(self) -> int:
        """The numerically largest (most urgent) priority level."""
        return self.priority_levels[-1]

    @property
    def lowest_priority(self) -> int:
        """The numerically smallest (least urgent) priority level."""
        return self.priority_levels[0]

    def validate_priority(self, priority: int) -> int:
        """Return ``priority`` if it is a known level, else raise ValueError."""
        if priority not in self.priority_levels:
            raise ValueError(
                f"priority {priority} is not one of {self.priority_levels}"
            )
        return priority

    def floor_priority(self, value: float) -> float:
        """Round ``value`` down to the nearest priority level.

        This is the ``floor_prio`` operator in Algorithm 1 line 8. Values
        below the lowest level floor to 0 so freshly arrived low-priority
        applications do not raise the candidate threshold above themselves.
        """
        # Levels are validated increasing; scan from the top so the common
        # case (token at or above the highest level) exits immediately.
        for level in reversed(self.priority_levels):
            if value >= level:
                return float(level)
        return 0.0

    def with_slots(self, num_slots: int) -> "SystemConfig":
        """A copy of this configuration with a different slot count."""
        return replace(self, num_slots=num_slots)


#: Configuration used by the paper's evaluation.
ZCU106_CONFIG = SystemConfig()
