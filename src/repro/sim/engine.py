"""Array-native event core of the discrete-event simulator.

The engine owns the virtual clock and a set of pending
``(time, priority, seq, callback, handle)`` entries. The ``seq`` number
makes ordering fully deterministic — two events scheduled for the same
instant fire in scheduling order, so repeated runs of the same workload
produce byte-identical traces.

Performance notes
-----------------
Pending events live in three plain-array structures instead of one
binary heap:

* ``_staged`` — an unsorted append-only list of entries scheduled while
  the engine is idle (between ``run()`` calls). Appending is O(1) with
  no sift.
* ``_run_list`` — the staged entries sorted **descending** once at
  ``run()`` entry, so the next event is always ``_run_list[-1]`` and
  popping it is an O(1) ``list.pop()``. One bulk Timsort over n entries
  is far cheaper than n ``heapq`` sifts.
* ``_overflow`` — a small min-heap for entries scheduled *during* the
  run by event callbacks. The loop compares the run-list tail against
  the overflow head each pop; in practice the overflow heap stays tiny
  (only the dynamic frontier lives there), so its ``heappush`` cost is
  amortised over far fewer elements than a single global heap.

Entries are plain tuples of scalars; comparisons stop at the unique
``seq`` and never reach the trailing callback/handle. The optional
:class:`Event` handle is only allocated by the compatibility API
(:meth:`SimulationEngine.schedule_at` / ``schedule_after``); hot
internal paths use the raw :meth:`SimulationEngine.schedule` /
``schedule_delay`` entry points which return a bare ``seq`` int and
allocate nothing beyond the entry tuple. Cancellation is a (usually
empty) set of cancelled seqs consulted at pop time, and ``_live`` keeps
:attr:`SimulationEngine.pending` O(1). None of this affects event
ordering: the merge of the three structures pops in exact
``(time, priority, seq)`` order, byte-identical to the heap it
replaced (pinned by ``tests/test_perf_equivalence.py``).

The engine accepts the run-``mode`` flag (``"full"`` or ``"metrics"``)
so one ``mode=`` travels the whole stack — facade → hypervisor →
engine — and components hanging off the engine can consult
``engine.mode`` to pick their storage strategy. Event ordering and
timing are identical in both modes by contract; only per-event
*recording* costs may differ.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.modes import normalize_mode

#: Signature of a simulation callback; receives the firing time.
EventCallback = Callable[[float], None]


class Event:
    """A cancellable handle to a pending simulation event.

    Events order by ``(time, priority, seq)``; the callback itself never
    participates in comparisons. Lower ``priority`` fires first among
    same-time events, which lets the hypervisor order e.g. completions
    before the scheduling pass that reacts to them.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled",
                 "_fired", "_engine")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: EventCallback,
        engine: Optional["SimulationEngine"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            engine._cancel_seq(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"seq={self.seq}{flag})"
        )


class SimulationEngine:
    """A deterministic discrete-event loop.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(5.0, lambda now: fired.append(now))
    >>> engine.run()
    >>> fired
    [5.0]
    """

    def __init__(
        self, observer: Optional[object] = None, mode: str = "full"
    ) -> None:
        self._now = 0.0
        # Entries are (time, priority, seq, callback, handle) tuples:
        # comparisons stop at the unique seq, never touching the
        # callback. handle is the Event object for schedule_at/
        # schedule_after, None for the raw schedule()/schedule_delay().
        self._staged: list = []     # scheduled while idle; unsorted
        self._run_list: list = []   # sorted DESCENDING; next event at [-1]
        self._overflow: list = []   # min-heap; scheduled while running
        self._cancelled: set = set()
        self._seq = 0
        self._running = False
        self._processed = 0
        # Cancels ever issued (monotonic). ``pending`` is derived as
        # seq - processed - cancels, so neither schedule nor the hot
        # loop maintains a live counter per event.
        self._cancel_count = 0
        # Observability hook (repro.observe). None costs one predicate per
        # executed event; the engine never imports the observe package.
        self._observer = observer
        self.mode = normalize_mode(mode)

    def set_observer(self, observer: Optional[object]) -> None:
        """Install (or remove, with None) an observability hook.

        The observer's ``on_engine_event(now)`` is called once per
        executed event. Installing one never alters event ordering or
        timing — observers are read-only bystanders. Must be installed
        before ``run()``; the hot loop binds it once at entry.
        """
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._seq - self._processed - self._cancel_count

    @property
    def processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    # -- raw array-native API (no handle allocation) --------------------
    def schedule(
        self, time: float, callback: EventCallback, priority: int = 0
    ) -> int:
        """Schedule ``callback`` at absolute ``time``; returns its seq.

        The no-handle fast path: allocates only the entry tuple. Use
        :meth:`cancel` with the returned seq — but only while the event
        is still pending; callers must track firing themselves (the
        hypervisor pops its bookkeeping on completion, so it never
        cancels a fired seq). When a cancellable handle with safe
        late-cancel semantics is needed, use :meth:`schedule_at`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        # Raw entries are 4-tuples (no handle slot). Mixed 4/5-tuple
        # comparisons are safe: seq is unique, so ordering is decided
        # at index 2 and never reaches the callback.
        entry = (time, priority, seq, callback)
        if self._running:
            heapq.heappush(self._overflow, entry)
        else:
            self._staged.append(entry)
        return seq

    def schedule_delay(
        self, delay: float, callback: EventCallback, priority: int = 0
    ) -> int:
        """Schedule ``callback`` ``delay`` ms from now; returns its seq."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # now + delay >= now holds whenever delay >= 0.
        seq = self._seq
        self._seq = seq + 1
        entry = (self._now + delay, priority, seq, callback)
        if self._running:
            heapq.heappush(self._overflow, entry)
        else:
            self._staged.append(entry)
        return seq

    def cancel(self, seq: int) -> None:
        """Cancel a pending raw-scheduled event by seq.

        The seq must still be pending (scheduled, not yet fired): the
        raw path keeps no per-event record of firing, so cancelling an
        already-fired seq would skew the live count and could suppress
        a future event reusing the set slot. ``schedule_at`` handles
        carry that protection; raw callers own it themselves.
        """
        if seq in self._cancelled:
            return
        self._cancelled.add(seq)
        self._cancel_count += 1

    def _cancel_seq(self, seq: int) -> None:
        # Event.cancel() guards against fired/double cancels already.
        self._cancelled.add(seq)
        self._cancel_count += 1

    # -- Event-handle compatibility API ----------------------------------
    def schedule_at(
        self, time: float, callback: EventCallback, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, self)
        entry = (time, priority, seq, callback, event)
        if self._running:
            heapq.heappush(self._overflow, entry)
        else:
            self._staged.append(entry)
        return event

    def schedule_after(
        self, delay: float, callback: EventCallback, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, self)
        entry = (time, priority, seq, callback, event)
        if self._running:
            heapq.heappush(self._overflow, entry)
        else:
            self._staged.append(entry)
        return event

    # -- execution --------------------------------------------------------
    def _merge_staged(self) -> None:
        """Fold newly staged entries into the sorted run list."""
        staged = self._staged
        if staged:
            staged.sort(reverse=True)
            run_list = self._run_list
            if run_list:
                # Two descending runs concatenated: Timsort merges them
                # in O(n) without comparisons inside either run.
                run_list.extend(staged)
                run_list.sort(reverse=True)
                staged.clear()
            else:
                self._run_list = staged
                self._staged = []

    def step(self) -> bool:
        """Execute the next event. Returns False if nothing is pending."""
        self._merge_staged()
        run_list = self._run_list
        overflow = self._overflow
        cancelled = self._cancelled
        while run_list or overflow:
            if run_list and not (overflow and overflow[0] < run_list[-1]):
                entry = run_list.pop()
            else:
                entry = heapq.heappop(overflow)
            if cancelled and entry[2] in cancelled:
                cancelled.discard(entry[2])
                continue
            time = entry[0]
            if time < self._now:
                raise SimulationError(
                    f"event at {time} popped after clock reached {self._now}"
                )
            self._now = time
            if len(entry) == 5:
                entry[4]._fired = True
            self._processed += 1
            if self._observer is not None:
                self._observer.on_engine_event(time)
            entry[3](time)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until events drain, ``until`` is reached, or budget ends.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        A horizon below the already-advanced clock never moves time
        backwards; the clock clamps at its current value.
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run())")
        self._running = True
        try:
            self._merge_staged()
            if until is None and max_events is None:
                self._run_fast()
            else:
                self._run_general(until, max_events)
        finally:
            self._running = False

    def _run_fast(self) -> None:
        # The engine's hottest loop: everything bound to locals, one
        # attribute store for the clock and one for the processed count
        # per event (callbacks may read both mid-run).
        run_list = self._run_list
        overflow = self._overflow
        cancelled = self._cancelled
        observer = self._observer
        heappop = heapq.heappop
        while run_list or overflow:
            if run_list and not (overflow and overflow[0] < run_list[-1]):
                entry = run_list.pop()
            else:
                entry = heappop(overflow)
            if cancelled and entry[2] in cancelled:
                cancelled.discard(entry[2])
                continue
            self._now = entry[0]
            if len(entry) == 5:
                entry[4]._fired = True
            self._processed += 1
            if observer is not None:
                observer.on_engine_event(entry[0])
            entry[3](entry[0])

    def _run_general(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        run_list = self._run_list
        overflow = self._overflow
        cancelled = self._cancelled
        heappop = heapq.heappop
        heappush = heapq.heappush
        executed = 0
        while run_list or overflow:
            if max_events is not None and executed >= max_events:
                return
            if run_list and not (overflow and overflow[0] < run_list[-1]):
                entry = run_list.pop()
                from_run_list = True
            else:
                entry = heappop(overflow)
                from_run_list = False
            if cancelled and entry[2] in cancelled:
                # Drop cancelled noise without running horizon checks.
                cancelled.discard(entry[2])
                continue
            time = entry[0]
            if until is not None and time > until:
                # Beyond the horizon: restore the entry and clamp.
                if from_run_list:
                    run_list.append(entry)
                else:
                    heappush(overflow, entry)
                if until > self._now:
                    self._now = until
                return
            if time < self._now:
                raise SimulationError(
                    f"event at {time} popped after clock reached {self._now}"
                )
            self._now = time
            if len(entry) == 5:
                entry[4]._fired = True
            self._processed += 1
            if self._observer is not None:
                self._observer.on_engine_event(time)
            entry[3](time)
            executed += 1

    def credit_events(self, count: int) -> None:
        """Account ``count`` events as scheduled-and-executed in bulk.

        The macro-event replay cache (:mod:`repro.sim.replay`) applies a
        memoized execution segment as one batched operation instead of
        dispatching its interior events; this keeps ``processed`` (and
        the derived ``pending``) exactly what a live dispatch of those
        events would have left behind. Both ``_seq`` and ``_processed``
        advance together, so later seq assignments — and therefore
        same-instant tie-breaking of post-segment events — match the
        live run number-for-number.
        """
        if count < 0:
            raise SimulationError(f"cannot credit {count} events")
        self._seq += count
        self._processed += count

    def peek_next_time(self) -> Optional[float]:
        """Earliest pending entry's time, or None with nothing pending.

        Cancelled-but-unpopped entries still count (their time is a
        lower bound on the next live event), so the answer is
        conservative — callers using it as a clear-horizon check may
        get a false "busy", never a false "clear".
        """
        best: Optional[float] = None
        staged = self._staged
        if staged:
            best = min(entry[0] for entry in staged)
        run_list = self._run_list
        if run_list:
            time = run_list[-1][0]
            if best is None or time < best:
                best = time
        overflow = self._overflow
        if overflow:
            time = overflow[0][0]
            if best is None or time < best:
                best = time
        return best

    def drain(self) -> None:
        """Discard all pending events (used by tests)."""
        for entries in (self._staged, self._run_list, self._overflow):
            for entry in entries:
                if len(entry) == 5:
                    entry[4]._fired = True
            entries.clear()
        self._cancelled.clear()
        # Everything ever scheduled is now fired or discarded.
        self._cancel_count = self._seq - self._processed
