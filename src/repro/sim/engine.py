"""Event-heap core of the discrete-event simulator.

The engine is intentionally minimal: it owns the virtual clock and a heap
of ``(time, priority, seq, event)`` tuples. The ``seq`` number makes
ordering fully deterministic — two events scheduled for the same instant
fire in scheduling order, so repeated runs of the same workload produce
byte-identical traces.

Performance notes
-----------------
The heap stores plain tuples rather than :class:`Event` objects so that
``heapq`` sift operations compare native floats/ints instead of calling a
generated dataclass ``__lt__``; ``seq`` is unique, so comparisons never
reach the trailing :class:`Event` handle. :class:`Event` itself is a
``__slots__`` class, and cancellation bookkeeping is kept live in
``_live`` so :attr:`SimulationEngine.pending` is O(1) instead of a heap
scan. Neither change affects event ordering.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SimulationError

#: Signature of a simulation callback; receives the firing time.
EventCallback = Callable[[float], None]


class Event:
    """A pending simulation event.

    Events order by ``(time, priority, seq)``; the callback itself never
    participates in comparisons. Lower ``priority`` fires first among
    same-time events, which lets the hypervisor order e.g. completions
    before the scheduling pass that reacts to them.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: EventCallback,
        engine: Optional["SimulationEngine"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"seq={self.seq}{flag})"
        )


class SimulationEngine:
    """A deterministic discrete-event loop.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(5.0, lambda now: fired.append(now))
    >>> engine.run()
    >>> fired
    [5.0]
    """

    def __init__(self, observer: Optional[object] = None) -> None:
        self._now = 0.0
        # Heap of (time, priority, seq, Event): comparisons stop at the
        # unique seq, never touching the Event handle.
        self._heap: list = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        # Live (scheduled, not fired, not cancelled) event count; kept
        # exact by schedule/cancel/pop so ``pending`` is O(1).
        self._live = 0
        # Observability hook (repro.observe). None costs one predicate per
        # executed event; the engine never imports the observe package.
        self._observer = observer

    def set_observer(self, observer: Optional[object]) -> None:
        """Install (or remove, with None) an observability hook.

        The observer's ``on_engine_event(now)`` is called once per
        executed event. Installing one never alters event ordering or
        timing — observers are read-only bystanders.
        """
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._live

    @property
    def processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    def _on_cancel(self) -> None:
        self._live -= 1

    def schedule_at(
        self, time: float, callback: EventCallback, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time, priority, next(self._seq), callback, self)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        self._live += 1
        return event

    def schedule_after(
        self, delay: float, callback: EventCallback, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Body of schedule_at inlined (this is the hot scheduling entry
        # point; now + delay >= now holds whenever delay >= 0).
        time = self._now + delay
        event = Event(time, priority, next(self._seq), callback, self)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        self._live += 1
        return event

    def step(self) -> bool:
        """Execute the next event. Returns False if the heap is empty."""
        heap = self._heap
        while heap:
            time, _, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            if time < self._now:
                raise SimulationError(
                    f"event at {time} popped after clock reached {self._now}"
                )
            self._now = time
            self._live -= 1
            # Detach so a late cancel() of a fired event cannot skew the
            # live counter.
            event._engine = None
            self._processed += 1
            if self._observer is not None:
                self._observer.on_engine_event(time)
            event.callback(time)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or event budget ends.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        A horizon below the already-advanced clock never moves time
        backwards; the clock clamps at its current value.
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run())")
        self._running = True
        try:
            # Inlined event loop (same semantics as repeated step() calls):
            # the per-event method call and attribute reloads are the
            # engine's own overhead floor, so the hot loop keeps pop and
            # fire local. step() remains the single-event entry point.
            heap = self._heap
            heappop = heapq.heappop
            executed = 0
            while heap:
                if max_events is not None and executed >= max_events:
                    return
                head = heap[0]
                event = head[3]
                if event.cancelled:
                    # Drop cancelled noise without running horizon checks.
                    heappop(heap)
                    continue
                time = head[0]
                if until is not None and time > until:
                    self._now = max(self._now, until)
                    return
                heappop(heap)
                if time < self._now:
                    raise SimulationError(
                        f"event at {time} popped after clock reached {self._now}"
                    )
                self._now = time
                self._live -= 1
                # Detach so a late cancel() of a fired event cannot skew
                # the live counter.
                event._engine = None
                self._processed += 1
                if self._observer is not None:
                    self._observer.on_engine_event(time)
                event.callback(time)
                executed += 1
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard all pending events (used by tests)."""
        for entry in self._heap:
            entry[3]._engine = None
        self._heap.clear()
        self._live = 0
