"""Event-heap core of the discrete-event simulator.

The engine is intentionally minimal: it owns the virtual clock and a heap of
``(time, priority, sequence, callback)`` entries. The ``sequence`` number
makes ordering fully deterministic — two events scheduled for the same
instant fire in scheduling order, so repeated runs of the same workload
produce byte-identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError

#: Signature of a simulation callback; receives the firing time.
EventCallback = Callable[[float], None]


@dataclass(order=True)
class Event:
    """A pending simulation event.

    Events compare by ``(time, priority, seq)``; the callback itself never
    participates in comparisons. Lower ``priority`` fires first among
    same-time events, which lets the hypervisor order e.g. completions
    before the scheduling pass that reacts to them.
    """

    time: float
    priority: int
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class SimulationEngine:
    """A deterministic discrete-event loop.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(5.0, lambda now: fired.append(now))
    >>> engine.run()
    >>> fired
    [5.0]
    """

    def __init__(self, observer: Optional[object] = None) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        # Observability hook (repro.observe). None costs one predicate per
        # executed event; the engine never imports the observe package.
        self._observer = observer

    def set_observer(self, observer: Optional[object]) -> None:
        """Install (or remove, with None) an observability hook.

        The observer's ``on_engine_event(now)`` is called once per
        executed event. Installing one never alters event ordering or
        timing — observers are read-only bystanders.
        """
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    def schedule_at(
        self, time: float, callback: EventCallback, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time, priority, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, callback: EventCallback, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, priority)

    def step(self) -> bool:
        """Execute the next event. Returns False if the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"event at {event.time} popped after clock reached {self._now}"
                )
            self._now = event.time
            self._processed += 1
            if self._observer is not None:
                self._observer.on_engine_event(self._now)
            event.callback(self._now)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or event budget ends.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run())")
        self._running = True
        try:
            executed = 0
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                # Peek for the horizon check without popping cancelled noise.
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    return
                if not self.step():
                    return
                executed += 1
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard all pending events (used by tests)."""
        self._heap.clear()
