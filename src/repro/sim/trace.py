"""Structured trace of everything that happens on the simulated board.

The hypervisor emits one :class:`TraceEvent` per state change. The metrics
layer (Figures 5-11, Table 3) is computed entirely from traces, so every
experiment is post-processable without re-running the simulation.

Performance notes
-----------------
:class:`Trace` stores events **columnar-internally**: ``record`` appends a
plain ``(time, kind, app_id, task_id, slot, detail)`` tuple, which is far
cheaper than constructing a frozen dataclass on the hot path, and keeps a
per-kind index of row positions so ``of_kind``/``first`` and the busy-time
accumulators never re-scan the full trace. :class:`TraceEvent` objects are
materialised lazily — the first time user code iterates the trace — and
cached, so repeated metric queries pay the construction cost once. None of
this changes what is recorded or in which order: an exported trace is
byte-identical to the pre-columnar format.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple


class TraceKind(str, Enum):
    """Kinds of trace events recorded by the hypervisor."""

    APP_ARRIVED = "app_arrived"
    APP_STARTED = "app_started"          # first task began executing
    APP_RETIRED = "app_retired"
    TASK_CONFIG_START = "task_config_start"
    TASK_CONFIG_DONE = "task_config_done"
    ITEM_START = "item_start"
    ITEM_DONE = "item_done"
    TASK_DONE = "task_done"              # all batch items finished
    TASK_PREEMPTED = "task_preempted"
    TASK_RESUMED = "task_resumed"
    DEADLINE_ASSIGNED = "deadline_assigned"
    SCHEDULER_PASS = "scheduler_pass"
    # Fault-injection kinds (repro.faults). SLOT_FAULT carries the work
    # lost to the in-flight item (ms) in ``detail``; CONFIG_FAILED carries
    # the wasted reconfiguration time; TASK_RELOCATED carries the old slot.
    SLOT_FAULT = "slot_fault"
    SLOT_REPAIRED = "slot_repaired"
    CONFIG_FAILED = "config_failed"
    TASK_RELOCATED = "task_relocated"
    # Overload-protection kinds (repro.admission). APP_REJECTED carries the
    # retry attempt number in ``detail`` (the final rejection of a dropped
    # app carries a negative attempt); APP_SHED carries the victim's
    # priority; OVERLOAD_ENTER/EXIT carry the pending-queue depth at the
    # transition; WATCHDOG_STALL carries the stalled pass count and
    # WATCHDOG_KICK the recovery action's magnitude (slots detached, or the
    # starved app's pre-boost token).
    APP_REJECTED = "app_rejected"
    APP_SHED = "app_shed"
    OVERLOAD_ENTER = "overload_enter"
    OVERLOAD_EXIT = "overload_exit"
    WATCHDOG_STALL = "watchdog_stall"
    WATCHDOG_KICK = "watchdog_kick"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence on the simulated platform."""

    time: float
    kind: TraceKind
    app_id: Optional[int] = None
    task_id: Optional[str] = None
    slot: Optional[int] = None
    detail: Optional[float] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{self.time:10.1f}ms {self.kind.value}"]
        if self.app_id is not None:
            parts.append(f"app={self.app_id}")
        if self.task_id is not None:
            parts.append(f"task={self.task_id}")
        if self.slot is not None:
            parts.append(f"slot={self.slot}")
        if self.detail is not None:
            parts.append(f"detail={self.detail}")
        return " ".join(parts)


#: Internal row layout: mirrors the TraceEvent field order exactly.
_Row = Tuple[float, TraceKind, Optional[int], Optional[str], Optional[int],
             Optional[float]]


class Trace:
    """Append-only log of :class:`TraceEvent` records."""

    __slots__ = ("_rows", "_by_kind", "_cache")

    def __init__(self) -> None:
        self._rows: List[_Row] = []
        #: Row positions per kind, in record (= time) order.
        self._by_kind: Dict[TraceKind, List[int]] = {}
        #: Lazily materialised TraceEvent objects, kept in sync by record.
        self._cache: Optional[List[TraceEvent]] = None

    def record(
        self,
        time: float,
        kind: TraceKind,
        app_id: Optional[int] = None,
        task_id: Optional[str] = None,
        slot: Optional[int] = None,
        detail: Optional[float] = None,
    ) -> None:
        """Append one event to the trace."""
        rows = self._rows
        index = self._by_kind.get(kind)
        if index is None:
            index = self._by_kind[kind] = []
        index.append(len(rows))
        rows.append((time, kind, app_id, task_id, slot, detail))
        if self._cache is not None:
            self._cache.append(
                TraceEvent(time, kind, app_id, task_id, slot, detail)
            )

    def record_many(self, rows: List[_Row]) -> None:
        """Append many events in one call (the replay-cache bulk path).

        ``rows`` are ``(time, kind, app_id, task_id, slot, detail)``
        tuples in record order. Equivalent to calling :meth:`record`
        per row — subclasses with per-event side effects override this
        with a per-row loop so effect order is preserved — but the
        columnar base class appends the whole batch with one ``extend``.
        """
        store = self._rows
        by_kind = self._by_kind
        base = len(store)
        for offset, row in enumerate(rows):
            index = by_kind.get(row[1])
            if index is None:
                index = by_kind[row[1]] = []
            index.append(base + offset)
        store.extend(rows)
        if self._cache is not None:
            self._cache.extend(TraceEvent(*row) for row in rows)

    @property
    def events(self) -> List[TraceEvent]:
        """All events in record order (materialised lazily, then cached)."""
        cache = self._cache
        if cache is None:
            cache = self._cache = [TraceEvent(*row) for row in self._rows]
        return cache

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def start_ms(self) -> float:
        """Time of the first recorded event (O(1))."""
        return self._rows[0][0]

    @property
    def end_ms(self) -> float:
        """Time of the last recorded event (O(1))."""
        return self._rows[-1][0]

    def count(self, kind: TraceKind) -> int:
        """Number of events of one kind (O(1) via the kind index)."""
        index = self._by_kind.get(kind)
        return len(index) if index is not None else 0

    def of_kind(self, kind: TraceKind) -> List[TraceEvent]:
        """All events of one kind, in time order."""
        index = self._by_kind.get(kind)
        if not index:
            return []
        if self._cache is not None:
            cache = self._cache
            return [cache[i] for i in index]
        rows = self._rows
        return [TraceEvent(*rows[i]) for i in index]

    def for_app(self, app_id: int) -> List[TraceEvent]:
        """All events belonging to one application."""
        return [event for event in self.events if event.app_id == app_id]

    def first(self, kind: TraceKind, app_id: Optional[int] = None) -> Optional[TraceEvent]:
        """First event of ``kind`` (optionally for one app), or None."""
        index = self._by_kind.get(kind)
        if not index:
            return None
        rows = self._rows
        for i in index:
            row = rows[i]
            if app_id is not None and row[2] != app_id:
                continue
            if self._cache is not None:
                return self._cache[i]
            return TraceEvent(*row)
        return None

    def _paired_busy_ms(
        self,
        start_kind: TraceKind,
        done_kind: TraceKind,
        app_id: Optional[int],
        key_detail: bool,
    ) -> float:
        """Sum of (done - start) over matching start/done row pairs."""
        positions = sorted(
            self._by_kind.get(start_kind, []) + self._by_kind.get(done_kind, [])
        )
        rows = self._rows
        starts: Dict[tuple, float] = {}
        total = 0.0
        for i in positions:
            time, kind, row_app, task_id, slot, detail = rows[i]
            if app_id is not None and row_app != app_id:
                continue
            key = (
                (row_app, task_id, slot, detail) if key_detail
                else (row_app, task_id, slot)
            )
            if kind is start_kind:
                starts[key] = time
            elif key in starts:
                total += time - starts.pop(key)
        return total

    def reconfig_busy_ms(self, app_id: Optional[int] = None) -> float:
        """Total time spent reconfiguring slots (optionally for one app)."""
        return self._paired_busy_ms(
            TraceKind.TASK_CONFIG_START, TraceKind.TASK_CONFIG_DONE,
            app_id, key_detail=False,
        )

    def run_busy_ms(self, app_id: Optional[int] = None) -> float:
        """Total task execution time summed over all items (and apps)."""
        return self._paired_busy_ms(
            TraceKind.ITEM_START, TraceKind.ITEM_DONE,
            app_id, key_detail=True,
        )


class MetricsTrace(Trace):
    """A rowless :class:`Trace` for ``mode="metrics"`` runs.

    ``record`` skips columnar row appends entirely and folds each event
    directly into lifetime counters: the per-kind counts, first/last
    timestamps and busy-time accumulators every *aggregate* consumer
    (admission controller, watchdog, observe counter folds, service
    windows, cluster board payloads) reads are **exact** — identical to
    what a full-mode trace would report — while memory stays O(1) in
    the event count.

    Busy time is paired *streaming*: ``TASK_CONFIG_START`` /
    ``TASK_CONFIG_DONE`` and ``ITEM_START`` / ``ITEM_DONE`` events match
    up through the same keys :meth:`Trace._paired_busy_ms` uses, so
    :meth:`run_busy_ms` and :meth:`reconfig_busy_ms` (whole-board form)
    equal the full-mode row scan to the bit.

    Row-level queries (``events``, iteration, ``of_kind``, ``first``,
    ``for_app``, per-app busy time) have nothing to read and raise
    :class:`~repro.errors.ExperimentError` naming the fix: rerun with
    ``mode="full"``.
    """

    __slots__ = ("_total", "_total_by_kind", "_first_ms", "_last_ms",
                 "fold")

    def __init__(self) -> None:
        super().__init__()
        # Deferred import: sim.fold imports TraceKind from this module.
        from repro.sim.fold import TraceFold

        self._total = 0
        self._total_by_kind: Dict[TraceKind, int] = {}
        self._first_ms: Optional[float] = None
        self._last_ms: Optional[float] = None
        #: Live span/recovery fold; the observe layer snapshots from it
        #: (full mode builds the identical fold by replaying rows). The
        #: fold also carries the DONE-paired busy totals, so ``record``
        #: needs no pairing of its own.
        self.fold = TraceFold()

    def record(
        self,
        time: float,
        kind: TraceKind,
        app_id: Optional[int] = None,
        task_id: Optional[str] = None,
        slot: Optional[int] = None,
        detail: Optional[float] = None,
    ) -> None:
        """Fold one event into the lifetime aggregates (no row stored)."""
        self._total += 1
        by_kind = self._total_by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if self._first_ms is None:
            self._first_ms = time
        self._last_ms = time
        # Record order is time order, so the fold's start-overwrites and
        # done-pops see the same pairs the full-mode row scan would.
        self.fold.feed(time, kind, app_id, task_id, slot, detail)

    def record_many(self, rows) -> None:
        """Fold many events in record order (no rows stored).

        Per-row loop (not a columnar append): every row must pass
        through :meth:`record` so the streaming fold sees events in the
        exact order a live run would feed them.
        """
        record = self.record
        for time, kind, app_id, task_id, slot, detail in rows:
            record(time, kind, app_id, task_id, slot, detail)

    def _rows_unavailable(self, what: str) -> "ExperimentError":
        from repro.errors import ExperimentError

        return ExperimentError(
            f"{what} requires trace rows, which mode='metrics' does not "
            "record; rerun with mode='full'"
        )

    # -- lifetime aggregates (exact over every recorded event) ----------
    def __len__(self) -> int:
        return self._total

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (all folded, none stored)."""
        return self._total

    def count(self, kind: TraceKind) -> int:
        """Lifetime number of events of one kind (O(1))."""
        return self._total_by_kind.get(kind, 0)

    @property
    def start_ms(self) -> float:
        """Time of the first event ever recorded (O(1))."""
        if self._first_ms is None:
            raise IndexError("trace is empty")
        return self._first_ms

    @property
    def end_ms(self) -> float:
        """Time of the last event ever recorded (O(1))."""
        if self._last_ms is None:
            raise IndexError("trace is empty")
        return self._last_ms

    def reconfig_busy_ms(self, app_id: Optional[int] = None) -> float:
        """Whole-board reconfiguration busy time (exact, streaming)."""
        if app_id is not None:
            raise self._rows_unavailable("per-app reconfig_busy_ms")
        return self.fold.config_busy_done_ms

    def run_busy_ms(self, app_id: Optional[int] = None) -> float:
        """Whole-board item execution busy time (exact, streaming)."""
        if app_id is not None:
            raise self._rows_unavailable("per-app run_busy_ms")
        return self.fold.item_busy_done_ms

    # -- row-level queries: nothing to read --------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        raise self._rows_unavailable("trace row access")

    def __iter__(self) -> Iterator[TraceEvent]:
        raise self._rows_unavailable("trace iteration")

    def of_kind(self, kind: TraceKind) -> List[TraceEvent]:
        raise self._rows_unavailable("of_kind row query")

    def for_app(self, app_id: int) -> List[TraceEvent]:
        raise self._rows_unavailable("for_app row query")

    def first(self, kind: TraceKind, app_id: Optional[int] = None):
        raise self._rows_unavailable("first-event row query")


class BoundedTrace(Trace):
    """A :class:`Trace` retaining only the most recent ``capacity`` rows.

    The online service tier (:mod:`repro.service`) runs to millions of
    submissions; an append-only trace would dominate memory long before
    the run finished. ``BoundedTrace`` keeps the lifetime aggregates the
    admission controller and watchdog consume **exact** — :meth:`count`,
    :attr:`total_recorded`, :attr:`start_ms` and :attr:`end_ms` cover
    every event ever recorded — while row storage is trimmed to a tail of
    the most recent ``capacity`` events (a debugging window). Row-level
    queries (``events``, ``of_kind``, ``first``, the busy-time
    accumulators) therefore see only the retained tail; full-fidelity
    post-processing belongs to closed runs on the unbounded parent.

    Trimming drops the oldest half once ``2 * capacity`` rows accumulate,
    so ``record`` stays amortized O(1) and memory is O(capacity)
    regardless of run length.
    """

    __slots__ = ("capacity", "_total", "_total_by_kind", "_first_ms",
                 "_last_ms")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__()
        self.capacity = capacity
        self._total = 0
        self._total_by_kind: Dict[TraceKind, int] = {}
        self._first_ms: Optional[float] = None
        self._last_ms: Optional[float] = None

    def record(
        self,
        time: float,
        kind: TraceKind,
        app_id: Optional[int] = None,
        task_id: Optional[str] = None,
        slot: Optional[int] = None,
        detail: Optional[float] = None,
    ) -> None:
        """Append one event, trimming the retained tail when it fills."""
        self._total += 1
        self._total_by_kind[kind] = self._total_by_kind.get(kind, 0) + 1
        if self._first_ms is None:
            self._first_ms = time
        self._last_ms = time
        super().record(time, kind, app_id, task_id, slot, detail)
        if len(self._rows) >= 2 * self.capacity:
            self._trim()

    def record_many(self, rows) -> None:
        """Append many events, trimming as each lands.

        Per-row loop: trim points must fall exactly where a live
        per-event run would place them, so the retained tail is
        identical whether rows arrived singly or in bulk.
        """
        record = self.record
        for time, kind, app_id, task_id, slot, detail in rows:
            record(time, kind, app_id, task_id, slot, detail)

    def _trim(self) -> None:
        rows = self._rows[-self.capacity:]
        self._rows = rows
        by_kind: Dict[TraceKind, List[int]] = {}
        for position, row in enumerate(rows):
            index = by_kind.get(row[1])
            if index is None:
                index = by_kind[row[1]] = []
            index.append(position)
        self._by_kind = by_kind
        self._cache = None

    # -- lifetime aggregates (exact over every recorded event) ----------
    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including trimmed ones."""
        return self._total

    @property
    def dropped(self) -> int:
        """Events trimmed away (``total_recorded`` minus retained)."""
        return self._total - len(self._rows)

    def count(self, kind: TraceKind) -> int:
        """Lifetime number of events of one kind (trim-proof, O(1))."""
        return self._total_by_kind.get(kind, 0)

    @property
    def start_ms(self) -> float:
        """Time of the first event ever recorded (O(1), trim-proof)."""
        if self._first_ms is None:
            raise IndexError("trace is empty")
        return self._first_ms

    @property
    def end_ms(self) -> float:
        """Time of the last event ever recorded (O(1), trim-proof)."""
        if self._last_ms is None:
            raise IndexError("trace is empty")
        return self._last_ms
