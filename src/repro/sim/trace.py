"""Structured trace of everything that happens on the simulated board.

The hypervisor emits one :class:`TraceEvent` per state change. The metrics
layer (Figures 5-11, Table 3) is computed entirely from traces, so every
experiment is post-processable without re-running the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional


class TraceKind(str, Enum):
    """Kinds of trace events recorded by the hypervisor."""

    APP_ARRIVED = "app_arrived"
    APP_STARTED = "app_started"          # first task began executing
    APP_RETIRED = "app_retired"
    TASK_CONFIG_START = "task_config_start"
    TASK_CONFIG_DONE = "task_config_done"
    ITEM_START = "item_start"
    ITEM_DONE = "item_done"
    TASK_DONE = "task_done"              # all batch items finished
    TASK_PREEMPTED = "task_preempted"
    TASK_RESUMED = "task_resumed"
    DEADLINE_ASSIGNED = "deadline_assigned"
    SCHEDULER_PASS = "scheduler_pass"
    # Fault-injection kinds (repro.faults). SLOT_FAULT carries the work
    # lost to the in-flight item (ms) in ``detail``; CONFIG_FAILED carries
    # the wasted reconfiguration time; TASK_RELOCATED carries the old slot.
    SLOT_FAULT = "slot_fault"
    SLOT_REPAIRED = "slot_repaired"
    CONFIG_FAILED = "config_failed"
    TASK_RELOCATED = "task_relocated"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence on the simulated platform."""

    time: float
    kind: TraceKind
    app_id: Optional[int] = None
    task_id: Optional[str] = None
    slot: Optional[int] = None
    detail: Optional[float] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{self.time:10.1f}ms {self.kind.value}"]
        if self.app_id is not None:
            parts.append(f"app={self.app_id}")
        if self.task_id is not None:
            parts.append(f"task={self.task_id}")
        if self.slot is not None:
            parts.append(f"slot={self.slot}")
        if self.detail is not None:
            parts.append(f"detail={self.detail}")
        return " ".join(parts)


@dataclass
class Trace:
    """Append-only log of :class:`TraceEvent` records."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(
        self,
        time: float,
        kind: TraceKind,
        app_id: Optional[int] = None,
        task_id: Optional[str] = None,
        slot: Optional[int] = None,
        detail: Optional[float] = None,
    ) -> None:
        """Append one event to the trace."""
        self.events.append(TraceEvent(time, kind, app_id, task_id, slot, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: TraceKind) -> List[TraceEvent]:
        """All events of one kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def for_app(self, app_id: int) -> List[TraceEvent]:
        """All events belonging to one application."""
        return [event for event in self.events if event.app_id == app_id]

    def first(self, kind: TraceKind, app_id: Optional[int] = None) -> Optional[TraceEvent]:
        """First event of ``kind`` (optionally for one app), or None."""
        for event in self.events:
            if event.kind != kind:
                continue
            if app_id is not None and event.app_id != app_id:
                continue
            return event
        return None

    def reconfig_busy_ms(self, app_id: Optional[int] = None) -> float:
        """Total time spent reconfiguring slots (optionally for one app)."""
        starts: Dict[tuple, float] = {}
        total = 0.0
        for event in self.events:
            if app_id is not None and event.app_id != app_id:
                continue
            key = (event.app_id, event.task_id, event.slot)
            if event.kind == TraceKind.TASK_CONFIG_START:
                starts[key] = event.time
            elif event.kind == TraceKind.TASK_CONFIG_DONE and key in starts:
                total += event.time - starts.pop(key)
        return total

    def run_busy_ms(self, app_id: Optional[int] = None) -> float:
        """Total task execution time summed over all items (and apps)."""
        starts: Dict[tuple, float] = {}
        total = 0.0
        for event in self.events:
            if app_id is not None and event.app_id != app_id:
                continue
            key = (event.app_id, event.task_id, event.slot, event.detail)
            if event.kind == TraceKind.ITEM_START:
                starts[key] = event.time
            elif event.kind == TraceKind.ITEM_DONE and key in starts:
                total += event.time - starts.pop(key)
        return total
