"""Steady-state macro-event replay: memoized execution segments.

Sustained low-rate service runs spend most of their engine events inside
*isolated* application executions: the board is empty, one request
arrives, runs its task graph to retirement, and the board drains again
before the next arrival. Every such execution of the same
``(graph, batch_size, priority)`` request against the same quiescent
board is event-for-event identical up to time translation — the
simulator recomputes the identical cascade of configure / launch /
item-done / tick / pass events thousands of times.

:class:`ReplayCache` breaks that per-event dispatch wall. On the first
qualifying arrival of a request shape it *records* the execution once in
a scratch hypervisor (same config, same scheduler construction, fresh
admission/watchdog mirrors) built around a :class:`_RecordingEngine`
that logs, for every scheduled event, its **parent event and relative
delay**. On later qualifying arrivals it *applies* the memoized segment
as one batched operation:

* the arrival prelude runs live (bitstream registration, latency
  estimate, :class:`~repro.hypervisor.application.AppRun` construction,
  pending-queue insert, ``APP_ARRIVED`` trace row, scheduler arrival
  notification) — exactly the code the live path runs;
* all interior trace rows are appended in bulk
  (:meth:`~repro.sim.trace.Trace.record_many`) with absolute times
  reconstructed through the recorded parent/delay chains — the same
  float additions (``parent_fire_time + delay``) the live engine would
  perform, so every timestamp is **bit-identical** to live execution;
* engine event counts, scheduler passes, reconfiguration-port counters
  and buffer-manager counters are credited in bulk with the same
  float-addition order the live run uses;
* retirement is **deferred**: one real engine event at the recorded
  retirement instant calls the hypervisor's own ``_retire``, so the
  pending queue, retire listeners, completion notification and the
  ``APP_RETIRED`` row all happen live at the exact live time. Between
  arrival and retirement the application is visibly *in the system*
  (pending depth 1, non-quiescent), so any window close that fires
  mid-segment observes live-identical state.

Replay engages only when the context is provably reproducible. The
gate requires an empty board (no pending apps, no in-flight items, idle
reconfiguration port, all slots free and healthy), no scheduled tick or
pass, no fault injector, no observer, no bitstream-load modeling, exact
HLS estimates, a quiet watchdog (no stall streak, no progress entries),
a non-overloaded admission controller, and a strictly later next
arrival (so no foreign event interleaves with the segment's span). The
recording itself is ground truth for anything the gate cannot see: a
scratch run that sheds, rejects, overloads, stalls, faults, cancels an
event or fails to retire exactly once marks the shape *non-replayable*
(negative cache) and every future arrival of that shape takes the live
path. Fallback is always the live simulation — replay never guesses.

Correctness contract: a run with replay enabled is **byte-identical**
(trace rows, report payloads, window aggregates, engine event totals)
to the same run with replay disabled. ``tests/test_replay.py`` pins
this across every registered scheduler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.hls import application_latency_estimate_ms
from repro.hypervisor.application import AppRequest, AppRun
from repro.sim.engine import SimulationEngine
from repro.sim.trace import Trace, TraceKind

#: Trace kinds whose presence in a recording proves the segment is not a
#: clean isolated execution (overload protection, watchdog intervention
#: or fault machinery engaged — all carry absolute-time-dependent or
#: cross-arrival state).
_NON_REPLAYABLE_KINDS = frozenset({
    TraceKind.APP_REJECTED,
    TraceKind.APP_SHED,
    TraceKind.OVERLOAD_ENTER,
    TraceKind.OVERLOAD_EXIT,
    TraceKind.WATCHDOG_STALL,
    TraceKind.WATCHDOG_KICK,
    TraceKind.SLOT_FAULT,
    TraceKind.SLOT_REPAIRED,
    TraceKind.CONFIG_FAILED,
    TraceKind.TASK_RELOCATED,
})

#: Engine priority of the deferred retirement event: the live path
#: retires inside the final item-completion event, which is scheduled
#: at priority −2 (see ``Hypervisor._launch_ready_items``).
_RETIRE_PRIORITY = -2


def _noop_event(now: float) -> None:
    """The applied segment's end marker (a live trailing tick is a no-op)."""


class _RecordingEngine(SimulationEngine):
    """Engine that logs the parent/delay lineage of every event.

    Each scheduled event gets an *ordinal* (its scheduling order). The
    log keeps, per ordinal, the ordinal of the event whose callback
    scheduled it plus the relative delay, so absolute fire times can be
    reconstructed later for any segment start ``T`` with exactly the
    float additions the live engine performs (``schedule_delay``
    computes ``parent_fire_time + delay``; so does the reconstruction).
    """

    def __init__(self) -> None:
        super().__init__(mode="full")
        self.parents: List[int] = []
        self.delays: List[float] = []
        self.priorities: List[int] = []
        self.fire_order: List[int] = []
        #: Ordinal of the event currently firing (−1 before the run).
        self.current = -1
        #: Set when the run used a scheduling pattern replay cannot
        #: reproduce (absolute-time schedule mid-run, handle API).
        self.invalid = False

    def _wrap(self, ordinal: int, callback):
        def fire(now: float, _ordinal=ordinal, _callback=callback) -> None:
            self.current = _ordinal
            self.fire_order.append(_ordinal)
            _callback(now)
        return fire

    def schedule(self, time, callback, priority=0):
        # Only the t=0 arrival submission may use absolute scheduling;
        # anything else has no parent to anchor its reconstruction.
        if self._running or self.parents or time != 0.0:
            self.invalid = True
        ordinal = len(self.parents)
        self.parents.append(-1)
        self.delays.append(time)
        self.priorities.append(priority)
        return super().schedule(time, self._wrap(ordinal, callback), priority)

    def schedule_delay(self, delay, callback, priority=0):
        ordinal = len(self.parents)
        self.parents.append(self.current)
        self.delays.append(delay)
        self.priorities.append(priority)
        return super().schedule_delay(
            delay, self._wrap(ordinal, callback), priority
        )

    def schedule_at(self, time, callback, priority=0):
        self.invalid = True
        return super().schedule_at(time, callback, priority)

    def schedule_after(self, delay, callback, priority=0):
        self.invalid = True
        return super().schedule_after(delay, callback, priority)


class _RecordingTrace(Trace):
    """Trace that logs each row with the ordinal of its emitting event."""

    def __init__(self, engine: _RecordingEngine) -> None:
        super().__init__()
        self._engine = engine
        #: (ordinal, kind, has_app_id, task_id, slot, detail) per row.
        self.log: List[tuple] = []
        #: False if any row's time differed from the engine clock (a
        #: backdated record could not be reconstructed from fire times).
        self.valid_times = True

    def record(self, time, kind, app_id=None, task_id=None, slot=None,
               detail=None):
        engine = self._engine
        if time != engine._now:
            self.valid_times = False
        self.log.append(
            (engine.current, kind, app_id is not None, task_id, slot, detail)
        )
        super().record(time, kind, app_id, task_id, slot, detail)


class Segment:
    """One memoized execution: event lineage, trace rows, counter bulk."""

    __slots__ = (
        "parents", "delays", "records", "retire_ordinal", "end_ordinal",
        "end_priority", "credit_ordinals", "event_count", "passes",
        "reconfig_durations", "buffer_publishes", "peak_bytes",
        "started_ordinal", "last_item_ordinal", "task_finals",
    )

    def __init__(
        self,
        parents: Tuple[int, ...],
        delays: Tuple[float, ...],
        records: Tuple[tuple, ...],
        retire_ordinal: int,
        end_ordinal: int,
        end_priority: int,
        credit_ordinals: Tuple[int, ...],
        event_count: int,
        passes: int,
        reconfig_durations: Tuple[float, ...],
        buffer_publishes: int,
        peak_bytes: int,
        started_ordinal: int,
        last_item_ordinal: int,
        task_finals: Tuple[tuple, ...],
    ) -> None:
        self.parents = parents
        self.delays = delays
        #: Interior trace rows (everything between APP_ARRIVED and
        #: APP_RETIRED, both exclusive — those two are emitted live).
        self.records = records
        self.retire_ordinal = retire_ordinal
        #: Last event to fire (the trailing tick or final pass). Applied
        #: as a real no-op event so the engine clock visits the same
        #: final instant a live run would (``span_ms`` fidelity) and so
        #: an end-of-stream drain terminates at the live time.
        self.end_ordinal = end_ordinal
        self.end_priority = end_priority
        #: Fired ordinals credited in bulk (all but the live arrival,
        #: the deferred retirement and the end marker), in fire order.
        self.credit_ordinals = credit_ordinals
        self.event_count = event_count
        self.passes = passes
        self.reconfig_durations = reconfig_durations
        self.buffer_publishes = buffer_publishes
        self.peak_bytes = peak_bytes
        #: Ordinal of the event that recorded APP_STARTED (stamps
        #: ``first_item_start_ms``) and of the last ITEM_DONE row
        #: (stamps ``last_item_done_ms``).
        self.started_ordinal = started_ordinal
        self.last_item_ordinal = last_item_ordinal
        #: Final per-task state, copied verbatim from the scratch app so
        #: :meth:`Hypervisor.results` sees live-identical task records:
        #: (task_id, items_done, configure_count, preemption_count,
        #: state, slot_index, was_detached, relocated_from,
        #: producer_slots).
        self.task_finals = task_finals

    def absolute_times(self, start: float) -> List[float]:
        """Fire time per ordinal for a segment starting at ``start``.

        Each time is ``parent_fire_time + delay`` — the identical float
        expression the live engine evaluates — so reconstructed times
        are bit-equal to a live execution beginning at ``start``.
        """
        parents = self.parents
        delays = self.delays
        times = [start] * len(parents)
        for ordinal in range(1, len(parents)):
            times[ordinal] = times[parents[ordinal]] + delays[ordinal]
        return times


class ReplayCache:
    """Memoized per-request-shape execution segments for one hypervisor.

    Attach with ``hypervisor._replay = ReplayCache(hypervisor, ...)``;
    the hypervisor consults :meth:`try_replay` on each admitted arrival
    and falls through to live simulation whenever it returns False.

    ``scheduler_factory`` must build a scheduler configured identically
    to the live one (the attach sites construct both from the same
    registry name). ``admission_factory`` / ``watchdog_factory`` mirror
    the live overload protection into the scratch recording run; they
    are required whenever the live hypervisor has those components.

    ``next_arrival_ms`` supplies the next arrival instant for the gap
    check: a callable returning None (no future arrival), the arrival
    time in ms, or any negative value ("unknown" — blocks replay). When
    omitted, the engine's own pending-event horizon is used, which is
    exact for closed runs that pre-submit every arrival.

    ``on_credit`` (optional) receives the absolute fire times of every
    bulk-credited engine event, in fire order — the service loop uses
    it to attribute events to metric windows exactly.
    """

    def __init__(
        self,
        hypervisor,
        scheduler_factory: Callable[[], object],
        *,
        admission_factory: Optional[Callable[[], object]] = None,
        watchdog_factory: Optional[Callable[[], object]] = None,
        next_arrival_ms: Optional[Callable[[], Optional[float]]] = None,
        on_credit: Optional[Callable[[List[float]], None]] = None,
    ) -> None:
        self._hv = hypervisor
        self._scheduler_factory = scheduler_factory
        self._admission_factory = admission_factory
        self._watchdog_factory = watchdog_factory
        self._next_arrival_ms = next_arrival_ms
        self._on_credit = on_credit
        #: (graph id, batch, priority) -> (graph ref, Segment | None).
        #: The strong graph reference keeps the id stable; None marks a
        #: shape proven non-replayable (negative cache).
        self._segments: Dict[tuple, tuple] = {}
        self.hits = 0
        self.misses = 0
        self.recordings = 0

    # ------------------------------------------------------------------
    # Gate
    # ------------------------------------------------------------------
    def _context_replayable(self) -> bool:
        """True when the board state is provably reproducible."""
        hv = self._hv
        if len(hv.pending) or hv.shed or hv._item_events:
            return False
        if hv._tick_scheduled or hv._pass_pending:
            return False
        port = hv._port
        if port._active is not None or port._queue:
            return False
        device = hv.device
        if len(device.free_slots()) != device.num_slots:
            return False
        if hv.faults is not None or hv.observer is not None:
            return False
        if hv.engine._observer is not None:
            return False
        if hv._model_bitstream_loads or not hv._zero_cost_interconnect:
            return False
        if hv.config.hls_estimation_error != 0:
            return False
        watchdog = hv.watchdog
        if watchdog is not None:
            if self._watchdog_factory is None:
                return False
            if watchdog._stalled_passes or watchdog._app_progress:
                return False
        admission = hv.admission
        if admission is not None:
            if self._admission_factory is None:
                return False
            if admission._overload_since is not None:
                return False
        return True

    def _gap_clear(self, end_ms: float) -> bool:
        """True when no foreign event can fire before ``end_ms``.

        Window closes (and the feeder pump riding the next arrival) are
        the only loop events that may interleave; closes observe
        live-identical state mid-segment, and everything else is pinned
        strictly after the segment by this check.
        """
        if self._next_arrival_ms is not None:
            nxt = self._next_arrival_ms()
            return nxt is None or nxt > end_ms
        nxt = self._hv.engine.peek_next_time()
        if nxt is None:
            return True
        # The engine horizon includes the loop's own close chain; a
        # close inside the segment is harmless, but distinguishing it
        # from a foreign event is the attach site's job (next_arrival_ms
        # hook). Without the hook, demand a fully clear horizon.
        return nxt > end_ms

    # ------------------------------------------------------------------
    # Entry point (called by Hypervisor._on_arrival)
    # ------------------------------------------------------------------
    def try_replay(self, now: float, app_id: int, request) -> bool:
        """Apply a memoized segment for this arrival; False → live path."""
        if not self._context_replayable():
            self.misses += 1
            return False
        key = (id(request.graph), request.batch_size, request.priority)
        entry = self._segments.get(key)
        if entry is None:
            segment = self._record(request)
            self._segments[key] = (request.graph, segment)
        else:
            segment = entry[1]
        if segment is None:
            self.misses += 1
            return False
        times = segment.absolute_times(now)
        if not self._gap_clear(times[segment.end_ordinal]):
            self.misses += 1
            return False
        self._apply(now, app_id, request, segment, times)
        self.hits += 1
        return True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, request) -> Optional[Segment]:
        """Run the request in a scratch world; memoize its event lineage.

        Returns None (negative cache) when the execution is not a clean
        isolated run — the recording itself is the proof either way.
        """
        from repro.hypervisor.hypervisor import Hypervisor

        self.recordings += 1
        hv = self._hv
        engine = _RecordingEngine()
        scratch = Hypervisor(
            scheduler=self._scheduler_factory(),
            config=hv.config,
            engine=engine,
            buffer_capacity_bytes=hv.buffers._capacity,
            item_buffer_bytes=hv.item_buffer_bytes,
            admission=(
                self._admission_factory()
                if hv.admission is not None else None
            ),
            watchdog=(
                self._watchdog_factory()
                if hv.watchdog is not None else None
            ),
            mode="full",
        )
        trace = _RecordingTrace(engine)
        scratch.trace = trace
        port = scratch.device.port
        durations: List[float] = []
        port_request = port.request

        def logging_request(slot, duration_ms, on_done):
            # The CAP pumps FIFO, so call order is busy-accrual order.
            durations.append(duration_ms)
            port_request(slot, duration_ms, on_done)

        port.request = logging_request
        scratch.submit(AppRequest(
            name=request.name,
            graph=request.graph,
            batch_size=request.batch_size,
            priority=request.priority,
            arrival_ms=0.0,
        ))
        engine.run()

        event_count = len(engine.parents)
        rows = trace.log
        if (
            engine.invalid
            or not trace.valid_times
            or engine._cancel_count
            or engine._seq != event_count
            or engine._processed != event_count
            or len(engine.fire_order) != event_count
            or len(scratch.retired) != 1
            or scratch.shed
            or len(scratch.pending)
            or scratch._item_events
            or scratch._tick_scheduled
            or scratch._pass_pending
            or port._active is not None
            or port._queue
            or scratch.buffers._used != 0
            or len(scratch.device.free_slots()) != scratch.device.num_slots
            or not rows
            or rows[0][1] is not TraceKind.APP_ARRIVED
            or rows[-1][1] is not TraceKind.APP_RETIRED
        ):
            return None
        if any(row[1] in _NON_REPLAYABLE_KINDS for row in rows):
            return None
        started_ordinal = -1
        last_item_ordinal = -1
        for row in rows:
            kind = row[1]
            if kind is TraceKind.APP_STARTED and started_ordinal < 0:
                started_ordinal = row[0]
            elif kind is TraceKind.ITEM_DONE:
                last_item_ordinal = row[0]
        if started_ordinal < 0 or last_item_ordinal < 0:
            return None
        retire_ordinal = rows[-1][0]
        end_ordinal = engine.fire_order[-1]
        if (
            engine.fire_order[0] != 0
            or retire_ordinal == 0
            or retire_ordinal == end_ordinal
            or engine.priorities[retire_ordinal] != _RETIRE_PRIORITY
        ):
            return None
        return Segment(
            parents=tuple(engine.parents),
            delays=tuple(engine.delays),
            records=tuple(rows[1:-1]),
            retire_ordinal=retire_ordinal,
            end_ordinal=end_ordinal,
            end_priority=engine.priorities[end_ordinal],
            credit_ordinals=tuple(
                ordinal for ordinal in engine.fire_order
                if ordinal != 0 and ordinal != retire_ordinal
                and ordinal != end_ordinal
            ),
            event_count=event_count,
            passes=scratch.scheduler_passes,
            reconfig_durations=tuple(durations),
            buffer_publishes=scratch.buffers._next_id,
            peak_bytes=scratch.buffers.peak_bytes,
            started_ordinal=started_ordinal,
            last_item_ordinal=last_item_ordinal,
            task_finals=tuple(
                (
                    task_id, run.items_done, run.configure_count,
                    run.preemption_count, run.state, run.slot_index,
                    run.was_detached, run.relocated_from,
                    tuple(run.producer_slots),
                )
                for task_id, run in scratch.retired[0].tasks.items()
            ),
        )

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------
    def _apply(
        self, now: float, app_id: int, request,
        segment: Segment, times: List[float],
    ) -> None:
        hv = self._hv
        # -- live arrival prelude (mirrors Hypervisor._on_arrival) ------
        hv._register_bitstreams(request)
        graph = request.graph
        key = (id(graph), request.batch_size)
        hit = hv._estimate_cache.get(key)
        if hit is not None and hit[0] is graph:
            estimate = hit[1]
        else:
            estimate = application_latency_estimate_ms(
                graph, request.batch_size, hv.config.reconfig_ms,
                estimation_error=0.0,
            )
            hv._estimate_cache[key] = (graph, estimate)
        app = AppRun(app_id, request, estimate, None)
        hv.apps[app_id] = app
        hv.pending.add(app)
        hv.trace.record(now, TraceKind.APP_ARRIVED, app_id=app_id)
        hv.scheduler.notify_arrival(hv._ctx, app)

        # -- memoized final state ---------------------------------------
        # Everything the segment's events would have written onto the
        # app, so post-run readers (``Hypervisor.results``, the cluster
        # worker) see live-identical records. Timestamps come from the
        # reconstructed fire times of the exact events that stamp them
        # live; ``reconfig_busy_ms`` repeats the live per-configure
        # additions in order for bit-equal float accumulation. Nothing
        # that fires mid-segment (window closes only) reads these
        # fields, so writing them at arrival time is unobservable.
        app.first_item_start_ms = times[segment.started_ordinal]
        hv.pending.mark_started(app_id)
        app.last_item_done_ms = times[segment.last_item_ordinal]
        for duration in segment.reconfig_durations:
            app.reconfig_busy_ms += duration
        for (task_id, items, configures, preemptions, state, slot_index,
             was_detached, relocated_from, producers) in segment.task_finals:
            run = app.tasks[task_id]
            run.items_done = items
            run.configure_count = configures
            run.preemption_count = preemptions
            run.state = state
            run.slot_index = slot_index
            run.was_detached = was_detached
            run.relocated_from = relocated_from
            run.producer_slots = list(producers)

        # -- bulk trace application -------------------------------------
        hv.trace.record_many([
            (
                times[ordinal], kind,
                app_id if has_app else None,
                task_id, slot, detail,
            )
            for ordinal, kind, has_app, task_id, slot, detail
            in segment.records
        ])

        # -- bulk counter credits (live addition order preserved) -------
        hv.scheduler_passes += segment.passes
        port = hv._port
        port.total_reconfigs += len(segment.reconfig_durations)
        for duration in segment.reconfig_durations:
            port.busy_ms += duration
        buffers = hv.buffers
        buffers._next_id += segment.buffer_publishes
        if segment.peak_bytes > buffers.peak_bytes:
            buffers.peak_bytes = segment.peak_bytes
        hv.engine.credit_events(segment.event_count - 3)
        if self._on_credit is not None:
            self._on_credit(
                [times[ordinal] for ordinal in segment.credit_ordinals]
            )

        # -- the two real interior events -------------------------------
        # Deferred retirement: the hypervisor's own retire runs at the
        # recorded instant, so queue state, listeners and the APP_RETIRED
        # row are live. The end marker replays the segment's final event
        # (the trailing tick / final pass, a no-op on an empty board) so
        # the engine clock — and with it span_ms and end-of-run drains —
        # visits the exact instant a live execution would end on.
        hv.engine.schedule(
            times[segment.retire_ordinal],
            lambda done_now, _app=app: hv._retire(_app, done_now),
            _RETIRE_PRIORITY,
        )
        hv.engine.schedule(
            times[segment.end_ordinal],
            _noop_event,
            segment.end_priority,
        )
