"""ASCII timeline rendering of a board trace (debugging/teaching aid).

Renders one row per slot over a time window: ``#`` while reconfiguring,
an application letter while an item executes, ``-`` while a task is
resident but idle at a batch boundary, and space while the slot is empty.
This makes sharing modes (Figure 2 of the paper) directly visible in a
terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.sim.trace import Trace, TraceKind

#: Application marker alphabet (app_id modulo its length).
APP_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _intervals_per_slot(
    trace: Trace,
) -> Dict[int, List[Tuple[float, float, str]]]:
    """Per-slot (start, end, glyph) intervals from a trace."""
    intervals: Dict[int, List[Tuple[float, float, str]]] = {}
    config_start: Dict[int, float] = {}
    item_start: Dict[int, Tuple[float, int]] = {}
    resident_since: Dict[int, Tuple[float, int]] = {}

    def add(slot: int, start: float, end: float, glyph: str) -> None:
        if end > start:
            intervals.setdefault(slot, []).append((start, end, glyph))

    def close_resident(slot: int, now: float) -> None:
        opened = resident_since.pop(slot, None)
        if opened is not None:
            start, app_id = opened
            add(slot, start, now, "-")

    for event in trace:
        slot = event.slot
        if slot is None:
            continue
        if event.kind == TraceKind.TASK_CONFIG_START:
            config_start[slot] = event.time
        elif event.kind == TraceKind.TASK_CONFIG_DONE:
            start = config_start.pop(slot, event.time)
            add(slot, start, event.time, "#")
            resident_since[slot] = (event.time, event.app_id or 0)
        elif event.kind == TraceKind.ITEM_START:
            close_resident(slot, event.time)
            item_start[slot] = (event.time, event.app_id or 0)
        elif event.kind == TraceKind.ITEM_DONE:
            opened = item_start.pop(slot, None)
            if opened is not None:
                start, app_id = opened
                add(slot, start, event.time, APP_MARKERS[app_id % 26])
            resident_since[slot] = (event.time, event.app_id or 0)
        elif event.kind in (TraceKind.TASK_DONE, TraceKind.TASK_PREEMPTED):
            close_resident(slot, event.time)
    return intervals


def render_timeline(
    trace: Trace,
    num_slots: int,
    start_ms: Optional[float] = None,
    end_ms: Optional[float] = None,
    width: int = 80,
) -> str:
    """Render the board's slot occupancy over [start_ms, end_ms].

    Legend: ``#`` reconfiguration, letters = application items (A = app 0,
    B = app 1, ...), ``-`` resident but waiting, space = empty slot.
    """
    if width < 10:
        raise ExperimentError("timeline width must be >= 10")
    if num_slots < 1:
        raise ExperimentError("num_slots must be >= 1")
    if not len(trace):
        raise ExperimentError("cannot render an empty trace")

    times = [event.time for event in trace]
    t0 = times[0] if start_ms is None else start_ms
    t1 = times[-1] if end_ms is None else end_ms
    if t1 <= t0:
        raise ExperimentError(f"empty window [{t0}, {t1}]")
    span = t1 - t0

    per_slot = _intervals_per_slot(trace)
    lines = [
        f"timeline {t0:.0f}..{t1:.0f} ms "
        f"(#=reconfig, letter=app item, -=resident idle)"
    ]
    for slot in range(num_slots):
        row = [" "] * width
        for start, end, glyph in per_slot.get(slot, []):
            if end <= t0 or start >= t1:
                continue
            first = int((max(start, t0) - t0) / span * (width - 1))
            last = int((min(end, t1) - t0) / span * (width - 1))
            for col in range(first, last + 1):
                row[col] = glyph
        lines.append(f"slot {slot:2d} |{''.join(row)}|")
    return "\n".join(lines)
