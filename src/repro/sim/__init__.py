"""Deterministic discrete-event simulation engine.

The engine replaces the wall clock of the paper's bare-metal ARM testbed.
It provides a millisecond-resolution virtual clock, a stable event heap and
a trace recorder used by the metrics layer.
"""

from repro.sim.engine import Event, SimulationEngine
from repro.sim.timeline import render_timeline
from repro.sim.trace import Trace, TraceEvent, TraceKind
from repro.sim.trace_export import load_trace, save_trace

__all__ = [
    "Event",
    "SimulationEngine",
    "Trace",
    "TraceEvent",
    "TraceKind",
    "render_timeline",
    "load_trace",
    "save_trace",
]
