"""Trace export: persist a run's full event log as JSON.

Every experiment is computed from traces; exporting them lets external
tooling (spreadsheets, notebooks, the paper-artifact parsing scripts this
mirrors) post-process a run without re-simulating. The format is a flat
list of events plus a small header; round-tripping is exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ExperimentError
from repro.sim.trace import Trace, TraceKind

#: Format identifier for forward compatibility.
TRACE_FORMAT_VERSION = 1


def trace_to_dict(trace: Trace, label: str = "") -> dict:
    """JSON-serializable representation of a trace."""
    return {
        "format": TRACE_FORMAT_VERSION,
        "label": label,
        "events": [
            {
                "time": event.time,
                "kind": event.kind.value,
                "app_id": event.app_id,
                "task_id": event.task_id,
                "slot": event.slot,
                "detail": event.detail,
            }
            for event in trace
        ],
    }


def trace_from_dict(payload: dict) -> Trace:
    """Rebuild a trace exported by :func:`trace_to_dict`."""
    if not isinstance(payload, dict):
        raise ExperimentError(
            f"expected an object, got {type(payload).__name__}"
        )
    if payload.get("format") != TRACE_FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported trace format {payload.get('format')!r}"
        )
    events = payload.get("events")
    if not isinstance(events, list):
        raise ExperimentError("trace file has no events list")
    trace = Trace()
    for index, raw in enumerate(events):
        try:
            trace.record(
                time=float(raw["time"]),
                kind=TraceKind(raw["kind"]),
                app_id=raw.get("app_id"),
                task_id=raw.get("task_id"),
                slot=raw.get("slot"),
                detail=raw.get("detail"),
            )
        except (KeyError, ValueError) as error:
            raise ExperimentError(
                f"bad trace event {index}: {error}"
            ) from None
    return trace


def save_trace(
    trace: Trace, path: Union[str, Path], label: str = ""
) -> Path:
    """Write a trace to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(trace_to_dict(trace, label)) + "\n", encoding="utf-8"
    )
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no trace file at {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ExperimentError(f"{path} is not valid JSON: {error}") from None
    return trace_from_dict(payload)
