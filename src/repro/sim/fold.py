"""Streaming span/recovery fold shared by both run modes.

The observe layer's snapshot (``repro.observe.instrument.observe_run``)
derives histograms and gauges from *intervals*: reconfiguration spans,
batch-item spans, preemption waits, fault recoveries. In ``mode="full"``
those intervals are reconstructed from trace rows; ``mode="metrics"``
records no rows, so the pairing must happen while events stream past.

:class:`TraceFold` is that pairing, written once and used by **both**
modes: a metrics-mode trace feeds it live from ``record``, and the
full-mode fold replays the stored rows through the identical code in the
identical (record = time) order. Equal inputs therefore produce
bit-identical aggregates — including the float sums, whose addition
order matters — which is what pins ``mode="metrics"`` observe snapshots
``to_dict``-exact against full-mode folds (tests/test_mode_equivalence).

The pairing rules mirror :func:`repro.observe.spans.build_spans` and
:func:`repro.metrics.reliability.recovery_times_ms`:

* ``dpr``: TASK_CONFIG_START closed by TASK_CONFIG_DONE or CONFIG_FAILED;
* ``item``: ITEM_START closed by ITEM_DONE, or killed at SLOT_FAULT on
  the same slot;
* ``wait``: TASK_PREEMPTED (or an eviction edge of SLOT_FAULT) closed by
  TASK_RESUMED;
* ``recovery``: SLOT_FAULT to the slot's next SLOT_REPAIRED, and
  CONFIG_FAILED to the task's next successful TASK_CONFIG_DONE.

Intervals still open when the run ends are closed at the horizon by
:meth:`TraceFold.aggregates` (recoveries contribute nothing, matching
``recovery_times_ms``). ``aggregates`` never mutates the fold, so it is
safe to snapshot a run more than once.

This module is dependency-free within the sim layer; the observe layer
imports *from* it (``MS_BUCKETS`` lives here so a metrics-mode
hypervisor never has to import the observe package).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import TraceKind

#: Histogram buckets for simulated-millisecond durations. Canonical
#: definition — ``repro.observe.metrics`` re-exports it.
MS_BUCKETS: Tuple[float, ...] = (
    1.0, 5.0, 10.0, 50.0, 80.0, 100.0, 200.0, 500.0,
    1_000.0, 5_000.0, 10_000.0, 60_000.0,
)


class _HistStream:
    """Fixed-bucket duration accumulator (Prometheus observe semantics).

    Observations land in *raw* per-bucket bins via ``bisect`` (one C-level
    search instead of a Python loop over every bucket); the cumulative
    ≤-upper-bound counts Prometheus semantics call for are materialized
    on demand by :attr:`bucket_counts`, which only snapshots read.
    """

    __slots__ = ("buckets", "_bins", "count", "sum")

    def __init__(self, buckets: Tuple[float, ...] = MS_BUCKETS) -> None:
        self.buckets = buckets
        self._bins = [0] * len(buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        index = bisect_left(self.buckets, value)
        if index < len(self._bins):
            self._bins[index] += 1

    @property
    def bucket_counts(self) -> List[int]:
        """Cumulative counts (observations ≤ each bucket's upper bound)."""
        counts = []
        total = 0
        for bin_count in self._bins:
            total += bin_count
            counts.append(total)
        return counts

    def copy(self) -> "_HistStream":
        clone = _HistStream(self.buckets)
        clone._bins = list(self._bins)
        clone.count = self.count
        clone.sum = self.sum
        return clone


@dataclass
class FoldAggregates:
    """Everything ``observe_run`` reads off a finished fold."""

    dpr: _HistStream
    item: _HistStream
    wait: _HistStream
    recovery: _HistStream
    dpr_busy_ms: float
    compute_busy_ms: float
    peak_compute: int


class TraceFold:
    """Streaming interval pairing over one run's trace events."""

    __slots__ = ("_dpr", "_item", "_wait", "_recovery",
                 "_dpr_busy", "_compute_busy", "_depth", "_peak",
                 "item_busy_done_ms", "config_busy_done_ms",
                 "_open_configs", "_open_items", "_open_waits",
                 "_open_slot_faults", "_open_config_faults")

    def __init__(self) -> None:
        self._dpr = _HistStream()
        self._item = _HistStream()
        self._wait = _HistStream()
        self._recovery = _HistStream()
        self._dpr_busy = 0.0
        self._compute_busy = 0.0
        #: DONE-paired busy totals, matching ``Trace.run_busy_ms`` /
        #: ``Trace.reconfig_busy_ms`` (whole-board form): unlike the
        #: horizon-closed span accumulators above, these exclude spans
        #: killed by faults or still open, exactly like the full-mode
        #: row scan. ``MetricsTrace`` reads them directly.
        self.item_busy_done_ms = 0.0
        self.config_busy_done_ms = 0.0
        #: Concurrently open compute spans (streaming peak-concurrency).
        self._depth = 0
        self._peak = 0
        self._open_configs: Dict[tuple, float] = {}
        self._open_items: Dict[tuple, float] = {}
        self._open_waits: Dict[tuple, float] = {}
        self._open_slot_faults: Dict[int, float] = {}
        self._open_config_faults: Dict[tuple, float] = {}

    def feed(
        self,
        time: float,
        kind: TraceKind,
        app_id: Optional[int] = None,
        task_id: Optional[str] = None,
        slot: Optional[int] = None,
        detail: Optional[float] = None,
    ) -> None:
        """Fold one trace event (must arrive in record order).

        The dispatch chain is ordered by event frequency — item starts
        and completions dominate every workload (one pair per batch
        item), reconfigurations come second — since each event walks the
        chain until its kind matches. Kinds are mutually exclusive, so
        ordering cannot change what is folded.
        """
        if kind is TraceKind.ITEM_DONE:
            started = self._open_items.pop((app_id, task_id, slot), None)
            if started is not None:
                duration = time - started
                self._item.observe(duration)
                self._compute_busy += duration
                self.item_busy_done_ms += duration
                self._depth -= 1
        elif kind is TraceKind.ITEM_START:
            self._open_items[(app_id, task_id, slot)] = time
            self._depth += 1
            if self._depth > self._peak:
                self._peak = self._depth
        elif kind is TraceKind.TASK_CONFIG_START:
            self._open_configs[(app_id, task_id, slot)] = time
        elif kind is TraceKind.TASK_CONFIG_DONE:
            started = self._open_configs.pop((app_id, task_id, slot), None)
            if started is not None:
                duration = time - started
                self._dpr.observe(duration)
                self._dpr_busy += duration
                self.config_busy_done_ms += duration
            recovered = self._open_config_faults.pop((app_id, task_id), None)
            if recovered is not None:
                self._recovery.observe(time - recovered)
        elif kind is TraceKind.CONFIG_FAILED:
            started = self._open_configs.pop((app_id, task_id, slot), None)
            if started is not None:
                duration = time - started
                self._dpr.observe(duration)
                self._dpr_busy += duration
            self._open_config_faults.setdefault((app_id, task_id), time)
        elif kind is TraceKind.TASK_PREEMPTED:
            self._open_waits[(app_id, task_id)] = time
        elif kind is TraceKind.TASK_RESUMED:
            started = self._open_waits.pop((app_id, task_id), None)
            if started is not None:
                self._wait.observe(time - started)
        elif kind is TraceKind.SLOT_FAULT:
            if slot is not None:
                # The fault kills whatever item was in flight on the slot.
                for key in [k for k in self._open_items if k[2] == slot]:
                    started = self._open_items.pop(key)
                    duration = time - started
                    self._item.observe(duration)
                    self._compute_busy += duration
                    self._depth -= 1
                self._open_slot_faults.setdefault(slot, time)
            if app_id is not None:
                self._open_waits[(app_id, task_id)] = time
        elif kind is TraceKind.SLOT_REPAIRED:
            if slot is not None:
                started = self._open_slot_faults.pop(slot, None)
                if started is not None:
                    self._recovery.observe(time - started)

    def aggregates(self, horizon: float) -> FoldAggregates:
        """Close still-open intervals at ``horizon`` (without mutating).

        Open recoveries contribute nothing, exactly like
        :func:`~repro.metrics.reliability.recovery_times_ms`.
        """
        dpr = self._dpr.copy()
        item = self._item.copy()
        wait = self._wait.copy()
        dpr_busy = self._dpr_busy
        compute_busy = self._compute_busy
        for started in self._open_configs.values():
            duration = max(horizon, started) - started
            dpr.observe(duration)
            dpr_busy += duration
        for started in self._open_items.values():
            duration = max(horizon, started) - started
            item.observe(duration)
            compute_busy += duration
        for started in self._open_waits.values():
            wait.observe(max(horizon, started) - started)
        return FoldAggregates(
            dpr=dpr, item=item, wait=wait, recovery=self._recovery.copy(),
            dpr_busy_ms=dpr_busy, compute_busy_ms=compute_busy,
            peak_compute=self._peak,
        )


def fold_rows(rows) -> TraceFold:
    """Replay stored trace rows (full mode) through a fresh fold."""
    fold = TraceFold()
    feed = fold.feed
    for row in rows:
        feed(*row)
    return fold
