"""Runtime invariant checking for the simulated hypervisor.

Attach an :class:`InvariantChecker` through the existing ``observer=``
hook; a run without one executes zero invariant code. Violations raise
:class:`repro.errors.InvariantViolation` with the offending trace window.

>>> from repro import Hypervisor, make_scheduler
>>> from repro.invariants import InvariantChecker
>>> hv = Hypervisor(make_scheduler("nimblock"), observer=InvariantChecker())

See ``docs/robustness.md`` for the invariant catalogue.
"""

from repro.invariants.checker import InvariantChecker, checked_run

__all__ = ["InvariantChecker", "checked_run"]
