"""Runtime invariant checker for the hypervisor/board state machine.

The checker implements the same observer protocol as
:class:`repro.observe.Instrumentation` and attaches through the existing
``Hypervisor(observer=...)`` hook — so it inherits the zero-cost-when-off
contract: without a checker no invariant code is imported or executed.

After every scheduler pass (`pass_finished`) it verifies:

* **slot mutual exclusion** — each occupied slot hosts exactly one
  CONFIGURED task whose ``slot_index`` points back at it, and no task is
  resident in two slots;
* **config-port serialization** — at most one partial reconfiguration is
  active (the device can only drive one DPR at a time), and the number
  of RECONFIGURING slots equals the port's active+queued requests;
* **allocation discipline** — ``slots_used <= slots_allocated`` outside
  preemption windows: an application may *shrink* into over-consumption
  when reallocation takes slots away (that is what batch-preemption then
  claws back), but may never *grow* its slot usage while already at or
  above its allocation. Checked only when the policy maintains
  allocations at all (FCFS-style policies leave them at zero);
* **token conservation** — scheduling tokens never decrease while an
  application is pending (Algorithm 1 only ever accumulates; the
  watchdog's starvation boost only raises);
* **pending-queue/index consistency** — the tombstoned backing list, the
  position map and the id index of :class:`PendingQueue` agree.

A violation raises :class:`repro.errors.InvariantViolation` carrying the
last ``window`` trace events, so the failing transition is diagnosable
from the exception alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import InvariantViolation, SchedulerError
from repro.hypervisor.application import TaskRunState
from repro.overlay.device import SlotPhase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hypervisor.hypervisor import Hypervisor


class InvariantChecker:
    """Observer verifying hypervisor invariants on every transition.

    Example
    -------
    >>> from repro import Hypervisor, make_scheduler
    >>> from repro.invariants import InvariantChecker
    >>> checker = InvariantChecker()
    >>> hv = Hypervisor(make_scheduler("nimblock"), observer=checker)
    >>> # ... submit + run: raises InvariantViolation on the first breach
    """

    def __init__(self, window: int = 24, check_every: int = 1) -> None:
        if window < 1:
            raise SchedulerError(f"window must be >= 1, got {window}")
        if check_every < 1:
            raise SchedulerError(
                f"check_every must be >= 1, got {check_every}"
            )
        self.window = window
        self.check_every = check_every
        #: Scheduler passes inspected (diagnostics; also the bench knob).
        self.passes_checked = 0
        self.engine_events = 0
        self._pass_count = 0
        #: Previous per-app (slots_used, slots_allocated) snapshots.
        self._usage: Dict[int, Tuple[int, int]] = {}
        #: Previous per-app token readings.
        self._tokens: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Observer protocol (same shape as repro.observe.Instrumentation)
    # ------------------------------------------------------------------
    def pass_started(self) -> None:
        """Hook: a scheduler pass begins (no state needed)."""
        return None

    def pass_finished(
        self, hypervisor: "Hypervisor", now: float, token: object
    ) -> None:
        """Hook: verify every invariant over the post-pass state."""
        self._pass_count += 1
        if self._pass_count % self.check_every:
            return
        self.check_now(hypervisor, now)

    def on_engine_event(self, now: float) -> None:
        """Hook: one engine event executed (kept for protocol parity)."""
        self.engine_events += 1

    # ------------------------------------------------------------------
    def check_now(self, hv: "Hypervisor", now: float) -> None:
        """Run the full invariant suite against the current state."""
        self.passes_checked += 1
        self._check_slot_exclusion(hv, now)
        self._check_port_serialization(hv, now)
        self._check_allocation_discipline(hv, now)
        self._check_token_conservation(hv, now)
        self._check_queue_consistency(hv, now)

    def _fail(self, hv: "Hypervisor", invariant: str, message: str) -> None:
        events = hv.trace.events[-self.window:]
        raise InvariantViolation(invariant, f"at t={hv.engine.now:.3f}ms: {message}", events)

    # ------------------------------------------------------------------
    def _check_slot_exclusion(self, hv: "Hypervisor", now: float) -> None:
        seen: Dict[Tuple[int, str], int] = {}
        for slot in hv.device.slots:
            if slot.phase is not SlotPhase.OCCUPIED:
                continue
            occupant = slot.occupant
            if occupant is None:
                self._fail(
                    hv, "slot-mutual-exclusion",
                    f"slot {slot.index} is OCCUPIED with no occupant",
                )
            app, task = occupant
            key = (app.app_id, task.task_id)
            if key in seen:
                self._fail(
                    hv, "slot-mutual-exclusion",
                    f"task {task.task_id!r} of app {app.app_id} is resident "
                    f"in slots {seen[key]} and {slot.index} simultaneously",
                )
            seen[key] = slot.index
            if task.state is not TaskRunState.CONFIGURED:
                self._fail(
                    hv, "slot-mutual-exclusion",
                    f"slot {slot.index} hosts task {task.task_id!r} in "
                    f"state {task.state.value!r} (expected configured)",
                )
            if task.slot_index != slot.index:
                self._fail(
                    hv, "slot-mutual-exclusion",
                    f"task {task.task_id!r} thinks it is in slot "
                    f"{task.slot_index}, but slot {slot.index} hosts it",
                )

    def _check_port_serialization(self, hv: "Hypervisor", now: float) -> None:
        port = hv.device.port
        reconfiguring = sum(
            1 for slot in hv.device.slots
            if slot.phase is SlotPhase.RECONFIGURING
        )
        active = 1 if port.is_busy else 0
        if reconfiguring > active + port.queue_depth:
            self._fail(
                hv, "config-port-serialization",
                f"{reconfiguring} slots are RECONFIGURING but the port "
                f"accounts for {active} active + {port.queue_depth} queued",
            )
        if not port.is_busy and port.queue_depth:
            self._fail(
                hv, "config-port-serialization",
                f"port is idle with {port.queue_depth} queued requests",
            )

    def _check_allocation_discipline(
        self, hv: "Hypervisor", now: float
    ) -> None:
        pending = hv.pending.in_arrival_order()
        # FCFS/RR-style policies never write slots_allocated: every app
        # sits at 0 allocated and the discipline is vacuous. Only check
        # once some live application actually carries an allocation.
        if not any(app.slots_allocated > 0 for app in pending):
            self._usage = {
                app.app_id: (app.slots_used, app.slots_allocated)
                for app in pending
            }
            return
        usage: Dict[int, Tuple[int, int]] = {}
        for app in pending:
            used = app.slots_used
            if used != app._slots_used:
                self._fail(
                    hv, "allocation-discipline",
                    f"app {app.app_id} slot-occupancy mirror drifted: "
                    f"counter {app._slots_used}, recount {used}",
                )
            allocated = app.slots_allocated
            usage[app.app_id] = (used, allocated)
            if used <= allocated:
                continue
            if self.check_every != 1:
                # Growth attribution needs adjacent-pass snapshots; with
                # sampled checking a legal configure-then-shrink between
                # two checks is indistinguishable from a breach.
                continue
            previous = self._usage.get(app.app_id)
            previous_used = previous[0] if previous else 0
            if used > previous_used:
                # Over-allocated AND grew since the last pass: the pass
                # configured a slot for an app already at/over its
                # allocation — a genuine discipline breach. (Shrinking
                # into over-consumption via reallocation is legal; the
                # preemption machinery reclaims it.)
                self._fail(
                    hv, "allocation-discipline",
                    f"app {app.app_id} grew to {used} slots used with "
                    f"only {allocated} allocated "
                    f"(was {previous_used} used)",
                )
        self._usage = usage

    def _check_token_conservation(self, hv: "Hypervisor", now: float) -> None:
        tokens: Dict[int, float] = {}
        for app in hv.pending.in_arrival_order():
            token = app.token
            tokens[app.app_id] = token
            if token < app.priority - 1e-9:
                self._fail(
                    hv, "token-conservation",
                    f"app {app.app_id} token {token:.6f} fell below its "
                    f"arrival value {app.priority}",
                )
            previous = self._tokens.get(app.app_id)
            if previous is not None and token < previous - 1e-9:
                self._fail(
                    hv, "token-conservation",
                    f"app {app.app_id} token decreased "
                    f"{previous:.6f} -> {token:.6f}",
                )
        self._tokens = tokens

    def _check_queue_consistency(self, hv: "Hypervisor", now: float) -> None:
        try:
            hv.pending.self_check()
        except SchedulerError as error:
            self._fail(hv, "pending-queue-consistency", str(error))
        ordered = hv.pending.in_arrival_order()
        for first, second in zip(ordered, ordered[1:]):
            if first.age_key > second.age_key:
                self._fail(
                    hv, "pending-queue-consistency",
                    f"arrival order broken: app {first.app_id} "
                    f"{first.age_key} precedes app {second.app_id} "
                    f"{second.age_key}",
                )
        for app in ordered:
            if app.retire_ms is not None:
                self._fail(
                    hv, "pending-queue-consistency",
                    f"retired app {app.app_id} is still pending",
                )


def checked_run(
    scheduler_name: str,
    sequence,
    fault_config=None,
    config=None,
    admission=None,
    watchdog=None,
    window: int = 24,
):
    """Convenience: run one sequence with the invariant checker attached.

    Returns ``(hypervisor, checker)``; raises
    :class:`~repro.errors.InvariantViolation` on the first breach. Used
    by the CI ``paranoid`` job and the chaos drills.
    """
    from repro.faults.injector import FaultInjector
    from repro.hypervisor.hypervisor import Hypervisor
    from repro.schedulers.registry import make_scheduler

    injector = None
    if fault_config is not None and fault_config.enabled:
        injector = FaultInjector(fault_config)
    checker = InvariantChecker(window=window)
    hypervisor = Hypervisor(
        make_scheduler(scheduler_name), config=config, faults=injector,
        observer=checker, admission=admission, watchdog=watchdog,
    )
    for request in sequence.to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    checker.check_now(hypervisor, hypervisor.engine.now)
    return hypervisor, checker
