"""Single source of the package version.

Lives in its own module so lightweight consumers (the CLI's
``--version`` flag, packaging metadata) can read it without importing
the full :mod:`repro` surface.
"""

__version__ = "1.1.0"
