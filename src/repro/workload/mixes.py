"""Weighted benchmark mixes for robustness studies.

The paper's random workloads draw the six benchmarks uniformly. Real
tenant populations skew: an inference cluster is short-task-heavy, a batch
analytics cluster long-task-heavy. Each mix below is a weighted pool
(weights expressed by repetition) handed to the event generator.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import WorkloadError
from repro.workload.events import EventSequence
from repro.workload.generator import EventGenerator

#: Named mixes: benchmark pools with repetition as weighting.
MIXES: Dict[str, Tuple[str, ...]] = {
    # The paper's uniform draw over the whole suite.
    "balanced": ("lenet", "alexnet", "imgc", "of", "3dr", "dr"),
    # Interactive/inference tenants: sub-second benchmarks dominate.
    "short_heavy": (
        "imgc", "imgc", "imgc", "lenet", "lenet", "lenet",
        "3dr", "3dr", "of", "alexnet",
    ),
    # Batch analytics tenants: long-running benchmarks dominate.
    "long_heavy": (
        "dr", "dr", "alexnet", "alexnet", "alexnet", "of", "of", "of",
        "lenet", "imgc",
    ),
    # No kilosecond outlier at all (isolates head-of-line effects).
    "no_outlier": ("lenet", "alexnet", "imgc", "of", "3dr"),
}


def mix_sequence(
    mix: str,
    seed: int,
    num_events: int,
    delay_range_ms: Tuple[float, float] = (150.0, 200.0),
) -> EventSequence:
    """A random sequence drawn from one named mix."""
    pool = MIXES.get(mix)
    if pool is None:
        raise WorkloadError(f"unknown mix {mix!r}; known: {sorted(MIXES)}")
    generator = EventGenerator(seed, benchmarks=pool)
    return generator.sequence(
        num_events=num_events,
        delay_range_ms=delay_range_ms,
        label=f"mix-{mix}-n{num_events}-seed{seed}",
    )
