"""Event model: application arrivals released to the hypervisor (§5.1).

The paper's testbed reads a sequence of events, each carrying an
application name, batch information, priority level and arrival time, and
releases each event to the hypervisor once its arrival time has passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.apps.catalog import get_benchmark
from repro.errors import WorkloadError
from repro.hypervisor.application import AppRequest


@dataclass(frozen=True)
class EventSpec:
    """One application arrival in a test sequence."""

    benchmark: str
    batch_size: int
    priority: int
    arrival_ms: float

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise WorkloadError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.priority < 1:
            raise WorkloadError(f"priority must be >= 1, got {self.priority}")
        if self.arrival_ms < 0:
            raise WorkloadError(f"arrival_ms must be >= 0, got {self.arrival_ms}")

    def to_request(self) -> AppRequest:
        """Materialize the event into a hypervisor request."""
        app = get_benchmark(self.benchmark)
        return AppRequest(
            name=app.name,
            graph=app.graph,
            batch_size=self.batch_size,
            priority=self.priority,
            arrival_ms=self.arrival_ms,
        )


class EventSequence:
    """An ordered, validated sequence of arrival events."""

    def __init__(self, events: Sequence[EventSpec], label: str = "") -> None:
        if not events:
            raise WorkloadError("event sequence must be non-empty")
        ordered = sorted(events, key=lambda e: e.arrival_ms)
        if list(events) != ordered:
            raise WorkloadError("events must be given in arrival order")
        self._events: List[EventSpec] = list(events)
        self.label = label

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[EventSpec]:
        return iter(self._events)

    def __getitem__(self, index: int) -> EventSpec:
        return self._events[index]

    @property
    def events(self) -> List[EventSpec]:
        """The events in arrival order."""
        return list(self._events)

    @property
    def span_ms(self) -> float:
        """Time between the first and last arrival."""
        return self._events[-1].arrival_ms - self._events[0].arrival_ms

    def benchmarks_used(self) -> List[str]:
        """Distinct benchmark names, in first-appearance order."""
        seen: List[str] = []
        for event in self._events:
            if event.benchmark not in seen:
                seen.append(event.benchmark)
        return seen

    def to_requests(self) -> List[AppRequest]:
        """All events as hypervisor requests."""
        return [event.to_request() for event in self._events]
