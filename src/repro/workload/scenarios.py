"""The paper's three congestion scenarios plus fixed-batch variants (§5.1),
and the chaos scenarios of the fault-injection extension (repro.faults).

* **standard** — moderate delay between arrivals (1500–2000 ms), the
  low-demand case where tasks can leverage additional resources;
* **stress** — a rapid stream (150–200 ms delays);
* **real-time** — a consistent 50 ms between arrivals, emulating
  streaming input.

Two fixed-batch workloads support Table 3 (batch 5, 500 ms delay) and the
ablation study of §5.6 (stress delays, fixed batch per run). The chaos
scenarios map one ``fault_rate`` knob onto a :class:`repro.faults.FaultConfig`
per failure mode (transient / permanent / reconfig / jitter / mixed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.config import FAULT_RATE_UNIT_MTBF_MS
from repro.errors import WorkloadError
from repro.faults.models import FaultConfig
from repro.workload.events import EventSequence
from repro.workload.generator import EVENTS_PER_SEQUENCE, EventGenerator


@dataclass(frozen=True)
class Scenario:
    """One congestion scenario: a named inter-arrival delay range."""

    name: str
    delay_range_ms: Tuple[float, float]
    description: str


STANDARD = Scenario(
    "standard", (1500.0, 2000.0),
    "moderate arrival delay; low demand, room to use extra resources",
)
STRESS = Scenario(
    "stress", (150.0, 200.0),
    "rapid event stream with little delay between arrivals",
)
REALTIME = Scenario(
    "realtime", (50.0, 50.0),
    "consistent 50 ms between events; streaming input",
)

#: All three congestion scenarios in Figure 5 order.
SCENARIOS: Tuple[Scenario, ...] = (STANDARD, STRESS, REALTIME)

#: Fixed batch sizes swept by the ablation study (Figures 9-11).
ABLATION_BATCH_SIZES: Tuple[int, ...] = (1, 5, 10, 15, 20)


def scenario_sequence(
    scenario: Scenario,
    seed: int,
    num_events: int = EVENTS_PER_SEQUENCE,
) -> EventSequence:
    """A random sequence under one congestion scenario."""
    generator = EventGenerator(seed)
    return generator.sequence(
        num_events=num_events,
        delay_range_ms=scenario.delay_range_ms,
        label=f"{scenario.name}-n{num_events}-seed{seed}",
    )


def overload_sequence(
    scenario: Scenario,
    seed: int,
    num_events: int = EVENTS_PER_SEQUENCE,
    rate_multiplier: float = 1.0,
    batch_range: Optional[Tuple[int, int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> EventSequence:
    """A scenario sequence with its arrival rate scaled up.

    ``rate_multiplier`` divides the inter-arrival delays: 1.0 with the
    default ``batch_range``/``benchmarks`` reproduces
    :func:`scenario_sequence` exactly (same label, byte-identical
    events), 4.0 compresses the stream into a quarter of the time — the
    overload study's congestion knob. ``batch_range`` optionally narrows
    the per-event batch sizes and ``benchmarks`` restricts the benchmark
    pool; the overload study uses small batches and a pool without the
    heavyweight outliers so the uncongested 1x point really is
    uncongested (paper-default batches saturate the board on their own,
    drowning any arrival-rate signal).
    """
    if rate_multiplier <= 0:
        raise WorkloadError(
            f"rate_multiplier must be > 0, got {rate_multiplier}"
        )
    if rate_multiplier == 1.0 and batch_range is None and benchmarks is None:
        return scenario_sequence(scenario, seed, num_events)
    low, high = scenario.delay_range_ms
    if benchmarks is None:
        generator = EventGenerator(seed)
    else:
        generator = EventGenerator(seed, benchmarks=tuple(benchmarks))
    label = f"{scenario.name}-x{rate_multiplier:g}-n{num_events}-seed{seed}"
    kwargs = {}
    if batch_range is not None:
        kwargs["batch_range"] = batch_range
        label = (
            f"{scenario.name}-x{rate_multiplier:g}"
            f"-b{batch_range[0]}-{batch_range[1]}-n{num_events}-seed{seed}"
        )
    return generator.sequence(
        num_events=num_events,
        delay_range_ms=(low / rate_multiplier, high / rate_multiplier),
        label=label,
        **kwargs,
    )


def fixed_batch_sequence(
    batch_size: int,
    seed: int,
    delay_ms: float = 500.0,
    num_events: int = EVENTS_PER_SEQUENCE,
) -> EventSequence:
    """A random-benchmark sequence with a fixed batch size.

    With the defaults (batch 5, 500 ms delay) this is the Table 3
    workload; the ablation study reuses it with stress-test delays.
    """
    generator = EventGenerator(seed)
    return generator.sequence(
        num_events=num_events,
        delay_range_ms=(delay_ms, delay_ms),
        fixed_batch=batch_size,
        label=(
            f"batch{batch_size}-d{delay_ms:g}-n{num_events}-seed{seed}"
        ),
    )


# ---------------------------------------------------------------------------
# Chaos scenarios (fault injection, repro.faults)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosScenario:
    """One fault-injection scenario: weights per failure mode.

    ``fault_config(rate, seed)`` maps a single dimensionless ``rate`` knob
    (0 disables everything) onto a :class:`repro.faults.FaultConfig`:

    * transient/permanent MTBF = ``FAULT_RATE_UNIT_MTBF_MS / (rate x w)``
      (``rate`` = 1.0 with weight 1.0 means one fault per slot per ten
      seconds);
    * reconfiguration failure probability = ``min(0.9, rate x w)``;
    * ICAP jitter fraction = ``min(0.9, rate x w)``.
    """

    name: str
    description: str
    transient_weight: float = 0.0
    permanent_weight: float = 0.0
    config_failure_weight: float = 0.0
    jitter_weight: float = 0.0

    def fault_config(self, fault_rate: float, seed: int = 0) -> FaultConfig:
        """The scenario at strength ``fault_rate`` (>= 0; 0 disables)."""
        if fault_rate < 0:
            raise WorkloadError(f"fault_rate must be >= 0, got {fault_rate}")
        if fault_rate == 0:
            return FaultConfig(seed=seed)

        def mtbf(weight: float) -> float:
            if weight <= 0:
                return 0.0
            return FAULT_RATE_UNIT_MTBF_MS / (fault_rate * weight)

        def prob(weight: float) -> float:
            return min(0.9, fault_rate * weight)

        return FaultConfig(
            seed=seed,
            transient_mtbf_ms=mtbf(self.transient_weight),
            permanent_mtbf_ms=mtbf(self.permanent_weight),
            config_failure_prob=prob(self.config_failure_weight),
            config_jitter_frac=prob(self.jitter_weight),
        )


TRANSIENT_FAULTS = ChaosScenario(
    "transient",
    "SEU-style transient slot faults; slots scrub and return to service",
    transient_weight=1.0,
)
PERMANENT_FAULTS = ChaosScenario(
    "permanent",
    "rare permanent slot failures; the board degrades and blacklists",
    permanent_weight=0.1,
)
RECONFIG_FAULTS = ChaosScenario(
    "reconfig",
    "probabilistic DPR/ICAP reconfiguration failures with mild jitter",
    config_failure_weight=1.0,
    jitter_weight=2.0,
)
JITTER_FAULTS = ChaosScenario(
    "jitter",
    "ICAP stall/latency jitter only; nothing fails outright",
    jitter_weight=8.0,
)
MIXED_FAULTS = ChaosScenario(
    "mixed",
    "everything at once at half strength: the full chaos drill",
    transient_weight=0.5,
    permanent_weight=0.05,
    config_failure_weight=0.5,
    jitter_weight=2.0,
)
SURGE_FAULTS = ChaosScenario(
    "surge",
    "the overload drill: transient faults + heavy ICAP jitter while the "
    "arrival rate is multiplied (repro.admission stress companion)",
    transient_weight=0.75,
    config_failure_weight=0.25,
    jitter_weight=4.0,
)

#: All chaos scenarios, mildest-to-wildest.
CHAOS_SCENARIOS: Tuple[ChaosScenario, ...] = (
    JITTER_FAULTS,
    RECONFIG_FAULTS,
    TRANSIENT_FAULTS,
    PERMANENT_FAULTS,
    MIXED_FAULTS,
    SURGE_FAULTS,
)


def chaos_scenario(name: str) -> ChaosScenario:
    """Look up a chaos scenario by name."""
    for scenario in CHAOS_SCENARIOS:
        if scenario.name == name:
            return scenario
    known = sorted(s.name for s in CHAOS_SCENARIOS)
    raise WorkloadError(f"unknown chaos scenario {name!r}; known: {known}")
