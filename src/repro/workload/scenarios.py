"""The paper's three congestion scenarios plus fixed-batch variants (§5.1).

* **standard** — moderate delay between arrivals (1500–2000 ms), the
  low-demand case where tasks can leverage additional resources;
* **stress** — a rapid stream (150–200 ms delays);
* **real-time** — a consistent 50 ms between arrivals, emulating
  streaming input.

Two fixed-batch workloads support Table 3 (batch 5, 500 ms delay) and the
ablation study of §5.6 (stress delays, fixed batch per run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.workload.events import EventSequence
from repro.workload.generator import EVENTS_PER_SEQUENCE, EventGenerator


@dataclass(frozen=True)
class Scenario:
    """One congestion scenario: a named inter-arrival delay range."""

    name: str
    delay_range_ms: Tuple[float, float]
    description: str


STANDARD = Scenario(
    "standard", (1500.0, 2000.0),
    "moderate arrival delay; low demand, room to use extra resources",
)
STRESS = Scenario(
    "stress", (150.0, 200.0),
    "rapid event stream with little delay between arrivals",
)
REALTIME = Scenario(
    "realtime", (50.0, 50.0),
    "consistent 50 ms between events; streaming input",
)

#: All three congestion scenarios in Figure 5 order.
SCENARIOS: Tuple[Scenario, ...] = (STANDARD, STRESS, REALTIME)

#: Fixed batch sizes swept by the ablation study (Figures 9-11).
ABLATION_BATCH_SIZES: Tuple[int, ...] = (1, 5, 10, 15, 20)


def scenario_sequence(
    scenario: Scenario,
    seed: int,
    num_events: int = EVENTS_PER_SEQUENCE,
) -> EventSequence:
    """A random sequence under one congestion scenario."""
    generator = EventGenerator(seed)
    return generator.sequence(
        num_events=num_events,
        delay_range_ms=scenario.delay_range_ms,
        label=f"{scenario.name}-n{num_events}-seed{seed}",
    )


def fixed_batch_sequence(
    batch_size: int,
    seed: int,
    delay_ms: float = 500.0,
    num_events: int = EVENTS_PER_SEQUENCE,
) -> EventSequence:
    """A random-benchmark sequence with a fixed batch size.

    With the defaults (batch 5, 500 ms delay) this is the Table 3
    workload; the ablation study reuses it with stress-test delays.
    """
    generator = EventGenerator(seed)
    return generator.sequence(
        num_events=num_events,
        delay_range_ms=(delay_ms, delay_ms),
        fixed_batch=batch_size,
        label=(
            f"batch{batch_size}-d{delay_ms:g}-n{num_events}-seed{seed}"
        ),
    )
