"""Workload generation: the testbed event sequences of §5.1.

An *event* is the arrival of an application at the hypervisor: benchmark
name, batch size, priority level and arrival time. Sequences of randomly
generated events — under the standard / stress / real-time congestion
scenarios — drive every experiment in the paper. The open-loop *arrival
processes* (:mod:`repro.workload.arrivals`) are the service tier's lazy
counterpart: seeded infinite streams for sustained-load runs.
"""

from repro.workload.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceReplayArrivals,
    make_arrivals,
    service_rate_process,
)
from repro.workload.events import EventSequence, EventSpec
from repro.workload.generator import EventGenerator
from repro.workload.trace_io import (
    load_sequence,
    load_suite,
    save_sequence,
    save_suite,
)
from repro.workload.scenarios import (
    ABLATION_BATCH_SIZES,
    CHAOS_SCENARIOS,
    ChaosScenario,
    JITTER_FAULTS,
    MIXED_FAULTS,
    PERMANENT_FAULTS,
    REALTIME,
    RECONFIG_FAULTS,
    STANDARD,
    STRESS,
    Scenario,
    SCENARIOS,
    TRANSIENT_FAULTS,
    chaos_scenario,
    fixed_batch_sequence,
    scenario_sequence,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "DiurnalArrivals",
    "EventSequence",
    "EventSpec",
    "EventGenerator",
    "MMPPArrivals",
    "PoissonArrivals",
    "TraceReplayArrivals",
    "make_arrivals",
    "service_rate_process",
    "ABLATION_BATCH_SIZES",
    "CHAOS_SCENARIOS",
    "ChaosScenario",
    "JITTER_FAULTS",
    "MIXED_FAULTS",
    "PERMANENT_FAULTS",
    "REALTIME",
    "RECONFIG_FAULTS",
    "STANDARD",
    "STRESS",
    "Scenario",
    "SCENARIOS",
    "TRANSIENT_FAULTS",
    "chaos_scenario",
    "fixed_batch_sequence",
    "scenario_sequence",
    "load_sequence",
    "load_suite",
    "save_sequence",
    "save_suite",
]
