"""Random event-sequence generation (paper §5.1).

Each sequence consists of randomly selected events from the application
pool; batch sizes (up to 30), priority levels (1/3/9) and inter-arrival
delays are drawn uniformly. Generation is fully seeded so every scheduler
sees byte-identical stimuli — the paper's "same set of stimuli" fairness
requirement.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.apps.catalog import BENCHMARK_NAMES
from repro.config import PRIORITY_LEVELS
from repro.errors import WorkloadError
from repro.workload.events import EventSequence, EventSpec

#: Paper: "The maximum batch size for an event is 30."
MAX_BATCH_SIZE = 30

#: Paper: "each sequence consists of 20 randomly selected events".
EVENTS_PER_SEQUENCE = 20


class EventGenerator:
    """Seeded generator of random arrival sequences."""

    def __init__(
        self,
        seed: int,
        benchmarks: Sequence[str] = BENCHMARK_NAMES,
        priorities: Sequence[int] = PRIORITY_LEVELS,
    ) -> None:
        if not benchmarks:
            raise WorkloadError("benchmark pool must be non-empty")
        if not priorities:
            raise WorkloadError("priority pool must be non-empty")
        self._seed = seed
        self._benchmarks = tuple(benchmarks)
        self._priorities = tuple(priorities)

    def sequence(
        self,
        num_events: int = EVENTS_PER_SEQUENCE,
        delay_range_ms: Tuple[float, float] = (1500.0, 2000.0),
        batch_range: Tuple[int, int] = (1, MAX_BATCH_SIZE),
        fixed_batch: Optional[int] = None,
        label: str = "",
    ) -> EventSequence:
        """Generate one sequence of ``num_events`` arrivals.

        ``delay_range_ms`` bounds the delay between consecutive arrivals;
        ``fixed_batch`` overrides random batch-size selection (used by the
        Table 3 and ablation experiments).
        """
        if num_events < 1:
            raise WorkloadError(f"num_events must be >= 1, got {num_events}")
        low, high = delay_range_ms
        if low < 0 or high < low:
            raise WorkloadError(f"bad delay range {delay_range_ms}")
        batch_low, batch_high = batch_range
        if batch_low < 1 or batch_high < batch_low:
            raise WorkloadError(f"bad batch range {batch_range}")
        if fixed_batch is not None and fixed_batch < 1:
            raise WorkloadError(f"fixed_batch must be >= 1, got {fixed_batch}")

        rng = random.Random(self._seed)
        events = []
        arrival = 0.0
        for index in range(num_events):
            if index > 0:
                arrival += rng.uniform(low, high)
            if fixed_batch is not None:
                batch = fixed_batch
            else:
                batch = rng.randint(batch_low, batch_high)
            events.append(
                EventSpec(
                    benchmark=rng.choice(self._benchmarks),
                    batch_size=batch,
                    priority=rng.choice(self._priorities),
                    arrival_ms=arrival,
                )
            )
        return EventSequence(events, label=label or f"seed{self._seed}")
