"""Open-loop arrival processes for the online service tier (repro.service).

Every experiment before the service tier replayed a closed, finite
:class:`~repro.workload.events.EventSequence` that was fully materialized
up front. An *arrival process* is the open-loop counterpart: a seeded,
lazily evaluated stream of :class:`~repro.workload.events.EventSpec`
records that can run to millions of submissions without ever holding more
than one event in memory. Four generators cover the service studies:

* **Poisson** — memoryless arrivals at a constant mean rate, the
  open-loop baseline of every queueing study;
* **MMPP** — a two-state Markov-modulated Poisson process alternating
  between a calm and a burst rate with exponentially distributed state
  holding times: bursty traffic with tunable burst duty cycle;
* **diurnal** — a sinusoidal rate curve between a trough and a peak over
  a configurable period (default: one simulated day), sampled exactly by
  Lewis-Shedler thinning;
* **trace replay** — replay of a saved JSON sequence
  (:mod:`repro.workload.trace_io`), optionally looped forever with the
  recorded span as the repeat offset.

Determinism contract: every process owns its seed, and ``events()``
returns a *fresh* iterator that replays the identical stream on every
call. ``skip(n)`` fast-forwards a new iterator past ``n`` arrivals (the
checkpoint/resume primitive of :mod:`repro.service.snapshot`) — the
resumed stream is byte-identical to the tail of an uninterrupted one.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Iterator, Optional, Sequence, Tuple

from repro.apps.catalog import BENCHMARK_NAMES
from repro.config import PRIORITY_LEVELS
from repro.errors import WorkloadError
from repro.workload.events import EventSpec

#: Default batch-size range for service arrivals. Mirrors the overload
#: study's small-batch regime: paper-default batches (up to 30) saturate
#: the ten-slot board on their own, drowning any arrival-rate signal.
SERVICE_BATCH_RANGE: Tuple[int, int] = (1, 4)

#: Default benchmark pool for service arrivals — the overload study's
#: pool without the heavyweight outliers ("dr" runs up to 787 s single
#: slot and would dominate every windowed tail).
SERVICE_BENCHMARKS: Tuple[str, ...] = ("lenet", "imgc", "3dr", "of")

#: Registry names of the built-in arrival processes.
ARRIVAL_KINDS: Tuple[str, ...] = (
    "poisson", "mmpp", "diurnal", "replay", "episode",
)


class ArrivalProcess:
    """Base class: a seeded, replayable, lazy stream of arrivals.

    Subclasses implement :meth:`_generate`, yielding events with
    non-decreasing ``arrival_ms`` forever (or until their natural end for
    finite processes such as un-looped trace replay). Consumers bound the
    stream themselves (``itertools.islice`` or the service loop's
    ``max_submissions``).
    """

    #: Registry name of the process (set by subclasses).
    kind: str = "abstract"

    def __init__(
        self,
        seed: int,
        benchmarks: Sequence[str] = SERVICE_BENCHMARKS,
        batch_range: Tuple[int, int] = SERVICE_BATCH_RANGE,
        priorities: Sequence[int] = PRIORITY_LEVELS,
    ) -> None:
        if not benchmarks:
            raise WorkloadError("benchmark pool must be non-empty")
        if not priorities:
            raise WorkloadError("priority pool must be non-empty")
        low, high = batch_range
        if low < 1 or high < low:
            raise WorkloadError(f"bad batch range {batch_range}")
        self.seed = seed
        self._benchmarks = tuple(benchmarks)
        self._batch_range = (low, high)
        self._priorities = tuple(priorities)

    # -- the lazy stream ------------------------------------------------
    def events(self, skip: int = 0) -> Iterator[EventSpec]:
        """A fresh iterator over the process's arrival stream.

        Every call replays the identical stream from the beginning;
        ``skip`` discards the first ``skip`` arrivals (O(skip) cheap RNG
        draws, no simulation) so a resumed service run sees exactly the
        tail an uninterrupted run would have seen.
        """
        stream = self._generate()
        if skip:
            stream = itertools.islice(stream, skip, None)
        return stream

    def _generate(self) -> Iterator[EventSpec]:
        raise NotImplementedError

    # -- shared per-event draws -----------------------------------------
    def _spec(self, rng: random.Random, arrival_ms: float) -> EventSpec:
        """Draw one event's benchmark/batch/priority at ``arrival_ms``."""
        return EventSpec(
            benchmark=rng.choice(self._benchmarks),
            batch_size=rng.randint(*self._batch_range),
            priority=rng.choice(self._priorities),
            arrival_ms=arrival_ms,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.kind}(seed={self.seed})"


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant mean rate (events per second)."""

    kind = "poisson"

    def __init__(self, seed: int, rate_per_s: float, **pool_knobs) -> None:
        super().__init__(seed, **pool_knobs)
        if rate_per_s <= 0:
            raise WorkloadError(f"rate_per_s must be > 0, got {rate_per_s}")
        self.rate_per_s = rate_per_s

    def _generate(self) -> Iterator[EventSpec]:
        rng = random.Random(f"poisson:{self.seed}:{self.rate_per_s!r}")
        mean_gap_ms = 1000.0 / self.rate_per_s
        arrival = 0.0
        while True:
            arrival += rng.expovariate(1.0) * mean_gap_ms
            yield self._spec(rng, arrival)

    def describe(self) -> str:
        return f"poisson(rate={self.rate_per_s:g}/s, seed={self.seed})"


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process: calm runs, hot bursts.

    The modulating chain holds each state for an exponentially
    distributed time (means ``mean_calm_s`` / ``mean_burst_s``); within a
    state, arrivals are Poisson at that state's rate. The long-run mean
    rate is the holding-time-weighted average of the two rates.
    """

    kind = "mmpp"

    def __init__(
        self,
        seed: int,
        calm_rate_per_s: float,
        burst_rate_per_s: float,
        mean_calm_s: float = 30.0,
        mean_burst_s: float = 5.0,
        **pool_knobs,
    ) -> None:
        super().__init__(seed, **pool_knobs)
        for name, value in (
            ("calm_rate_per_s", calm_rate_per_s),
            ("burst_rate_per_s", burst_rate_per_s),
            ("mean_calm_s", mean_calm_s),
            ("mean_burst_s", mean_burst_s),
        ):
            if value <= 0:
                raise WorkloadError(f"{name} must be > 0, got {value}")
        self.calm_rate_per_s = calm_rate_per_s
        self.burst_rate_per_s = burst_rate_per_s
        self.mean_calm_s = mean_calm_s
        self.mean_burst_s = mean_burst_s

    def mean_rate_per_s(self) -> float:
        """Long-run arrival rate (holding-time-weighted state average)."""
        calm, burst = self.mean_calm_s, self.mean_burst_s
        return (
            self.calm_rate_per_s * calm + self.burst_rate_per_s * burst
        ) / (calm + burst)

    def _generate(self) -> Iterator[EventSpec]:
        rng = random.Random(
            f"mmpp:{self.seed}:{self.calm_rate_per_s!r}"
            f":{self.burst_rate_per_s!r}"
        )
        arrival = 0.0
        burst = False
        # Remaining holding time of the current state, ms.
        hold_ms = rng.expovariate(1.0) * self.mean_calm_s * 1000.0
        while True:
            rate = self.burst_rate_per_s if burst else self.calm_rate_per_s
            gap = rng.expovariate(1.0) * 1000.0 / rate
            # Burn through state switches that fall inside the gap; the
            # crossing gap is re-drawn at the new state's rate from the
            # switch point (memorylessness makes this exact).
            while gap >= hold_ms:
                arrival += hold_ms
                gap = rng.expovariate(1.0) * 1000.0 / (
                    self.calm_rate_per_s if burst else self.burst_rate_per_s
                )
                burst = not burst
                mean_s = self.mean_burst_s if burst else self.mean_calm_s
                hold_ms = rng.expovariate(1.0) * mean_s * 1000.0
            arrival += gap
            hold_ms -= gap
            yield self._spec(rng, arrival)

    def describe(self) -> str:
        return (
            f"mmpp(calm={self.calm_rate_per_s:g}/s, "
            f"burst={self.burst_rate_per_s:g}/s, seed={self.seed})"
        )


class EpisodeArrivals(ArrivalProcess):
    """Deterministic piecewise-constant rate phases, cycled forever.

    ``phases`` is a sequence of ``(duration_s, rate_per_s)`` pairs;
    within a phase arrivals are Poisson at that phase's rate, and the
    schedule cycles. Unlike :class:`MMPPArrivals` the phase boundaries
    are *fixed instants*, which is what overload-drill studies need: a
    calm warm-up, an exactly-timed burst (e.g. 4x for two minutes), and
    a recovery tail land at the same simulated times every seed, so
    "was the episode detected and remediated in time" is a sharp,
    reproducible question.
    """

    kind = "episode"

    def __init__(
        self,
        seed: int,
        phases: Sequence[Tuple[float, float]],
        **pool_knobs,
    ) -> None:
        super().__init__(seed, **pool_knobs)
        phases = tuple((float(d), float(r)) for d, r in phases)
        if not phases:
            raise WorkloadError("episode needs at least one phase")
        for duration_s, rate_per_s in phases:
            if duration_s <= 0:
                raise WorkloadError(
                    f"phase duration must be > 0s, got {duration_s}"
                )
            if rate_per_s <= 0:
                raise WorkloadError(
                    f"phase rate must be > 0/s, got {rate_per_s}"
                )
        self.phases = phases

    def mean_rate_per_s(self) -> float:
        """Duration-weighted mean rate over one cycle."""
        total_s = sum(d for d, _ in self.phases)
        return sum(d * r for d, r in self.phases) / total_s

    def _generate(self) -> Iterator[EventSpec]:
        rng = random.Random(f"episode:{self.seed}:{self.phases!r}")
        arrival = 0.0
        phase = 0
        hold_ms = self.phases[0][0] * 1000.0
        while True:
            gap = rng.expovariate(1.0) * 1000.0 / self.phases[phase][1]
            # Burn through phase boundaries inside the gap; the crossing
            # gap is re-drawn from the boundary at the next phase's rate
            # (memorylessness makes this exact, as in the MMPP).
            while gap >= hold_ms:
                arrival += hold_ms
                phase = (phase + 1) % len(self.phases)
                hold_ms = self.phases[phase][0] * 1000.0
                gap = rng.expovariate(1.0) * 1000.0 / self.phases[phase][1]
            arrival += gap
            hold_ms -= gap
            yield self._spec(rng, arrival)

    def describe(self) -> str:
        schedule = "+".join(f"{d:g}s@{r:g}/s" for d, r in self.phases)
        return f"episode({schedule}, seed={self.seed})"


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate curve between a trough and a peak rate.

    ``rate(t) = trough + (peak - trough) * (1 - cos(2 pi t / period)) / 2``
    — the curve starts at the trough, peaks at half period, and returns.
    Sampled by Lewis-Shedler thinning against the peak rate, which is
    exact for any bounded rate curve.
    """

    kind = "diurnal"

    def __init__(
        self,
        seed: int,
        trough_rate_per_s: float,
        peak_rate_per_s: float,
        period_s: float = 86_400.0,
        **pool_knobs,
    ) -> None:
        super().__init__(seed, **pool_knobs)
        if trough_rate_per_s <= 0:
            raise WorkloadError(
                f"trough_rate_per_s must be > 0, got {trough_rate_per_s}"
            )
        if peak_rate_per_s < trough_rate_per_s:
            raise WorkloadError(
                f"peak rate {peak_rate_per_s} must be >= trough rate "
                f"{trough_rate_per_s}"
            )
        if period_s <= 0:
            raise WorkloadError(f"period_s must be > 0, got {period_s}")
        self.trough_rate_per_s = trough_rate_per_s
        self.peak_rate_per_s = peak_rate_per_s
        self.period_s = period_s

    def rate_at(self, t_ms: float) -> float:
        """Instantaneous rate (events/s) at simulated time ``t_ms``."""
        phase = 2.0 * math.pi * (t_ms / 1000.0) / self.period_s
        span = self.peak_rate_per_s - self.trough_rate_per_s
        return self.trough_rate_per_s + span * (1.0 - math.cos(phase)) / 2.0

    def _generate(self) -> Iterator[EventSpec]:
        rng = random.Random(
            f"diurnal:{self.seed}:{self.trough_rate_per_s!r}"
            f":{self.peak_rate_per_s!r}:{self.period_s!r}"
        )
        peak = self.peak_rate_per_s
        arrival = 0.0
        while True:
            # Thinning: candidate gaps at the peak rate, accepted with
            # probability rate(t)/peak.
            while True:
                arrival += rng.expovariate(1.0) * 1000.0 / peak
                if rng.random() * peak <= self.rate_at(arrival):
                    break
            yield self._spec(rng, arrival)

    def describe(self) -> str:
        return (
            f"diurnal(trough={self.trough_rate_per_s:g}/s, "
            f"peak={self.peak_rate_per_s:g}/s, "
            f"period={self.period_s:g}s, seed={self.seed})"
        )


class TraceReplayArrivals(ArrivalProcess):
    """Replay a saved JSON sequence (:mod:`repro.workload.trace_io`).

    ``rate_multiplier`` divides every recorded gap (the overload study's
    congestion knob, applied to recorded traffic); ``loop=True`` repeats
    the recording forever, advancing each cycle by the recorded span plus
    one mean gap so the stream stays strictly open-loop.
    """

    kind = "replay"

    def __init__(
        self,
        path,
        rate_multiplier: float = 1.0,
        loop: bool = False,
    ) -> None:
        from repro.workload.trace_io import load_sequence

        # The pool knobs are irrelevant: every event field is replayed.
        super().__init__(seed=0)
        if rate_multiplier <= 0:
            raise WorkloadError(
                f"rate_multiplier must be > 0, got {rate_multiplier}"
            )
        self.path = str(path)
        self.rate_multiplier = rate_multiplier
        self.loop = loop
        self._sequence = load_sequence(path)

    def _generate(self) -> Iterator[EventSpec]:
        events = self._sequence.events
        scale = 1.0 / self.rate_multiplier
        base = events[0].arrival_ms
        span = (events[-1].arrival_ms - base) * scale
        gaps = len(events) - 1
        mean_gap = (span / gaps) if gaps else 1000.0 * scale
        offset = 0.0
        while True:
            for event in events:
                yield EventSpec(
                    benchmark=event.benchmark,
                    batch_size=event.batch_size,
                    priority=event.priority,
                    arrival_ms=offset + (event.arrival_ms - base) * scale,
                )
            if not self.loop:
                return
            offset += span + mean_gap

    def describe(self) -> str:
        mode = "loop" if self.loop else "once"
        return (
            f"replay({self.path!r}, x{self.rate_multiplier:g}, {mode}, "
            f"{len(self._sequence)} events/cycle)"
        )


def make_arrivals(kind: str, seed: int = 1, **knobs) -> ArrivalProcess:
    """Build an arrival process by registry name.

    ``poisson`` needs ``rate_per_s``; ``mmpp`` needs ``calm_rate_per_s``
    and ``burst_rate_per_s``; ``diurnal`` needs ``trough_rate_per_s`` and
    ``peak_rate_per_s``; ``replay`` needs ``path``; ``episode`` needs
    ``phases`` (``(duration_s, rate_per_s)`` pairs). Unknown kinds raise
    :class:`~repro.errors.WorkloadError` listing the registry.
    """
    try:
        if kind == "poisson":
            return PoissonArrivals(seed, **knobs)
        if kind == "mmpp":
            return MMPPArrivals(seed, **knobs)
        if kind == "diurnal":
            return DiurnalArrivals(seed, **knobs)
        if kind == "replay":
            return TraceReplayArrivals(**knobs)
        if kind == "episode":
            return EpisodeArrivals(seed, **knobs)
    except TypeError as error:
        raise WorkloadError(f"bad {kind!r} arrival knobs: {error}") from None
    raise WorkloadError(
        f"unknown arrival process {kind!r}; known: {list(ARRIVAL_KINDS)}"
    )


def service_rate_process(
    rate_per_s: float, seed: int = 1, burstiness: float = 0.0, **pool_knobs
) -> ArrivalProcess:
    """The capacity study's one-knob process: a rate plus burstiness.

    ``burstiness=0`` is plain Poisson at ``rate_per_s``; positive values
    build an MMPP with the *same long-run mean rate* whose burst state
    runs ``1 + 3*burstiness`` times hotter than the mean — so capacity
    curves stay comparable across burstiness levels.
    """
    if burstiness < 0:
        raise WorkloadError(f"burstiness must be >= 0, got {burstiness}")
    if burstiness == 0:
        return PoissonArrivals(seed, rate_per_s, **pool_knobs)
    mean_calm_s, mean_burst_s = 30.0, 5.0
    hot = rate_per_s * (1.0 + 3.0 * burstiness)
    # Solve the calm rate so the holding-time-weighted mean stays put.
    calm = (
        rate_per_s * (mean_calm_s + mean_burst_s) - hot * mean_burst_s
    ) / mean_calm_s
    if calm <= 0:
        raise WorkloadError(
            f"burstiness {burstiness} too high for rate {rate_per_s}/s "
            "(calm-state rate would go non-positive)"
        )
    return MMPPArrivals(
        seed, calm_rate_per_s=calm, burst_rate_per_s=hot,
        mean_calm_s=mean_calm_s, mean_burst_s=mean_burst_s, **pool_knobs
    )


def overload_episode_process(
    rate_per_s: float,
    seed: int = 1,
    burst_multiplier: float = 4.0,
    calm_s: float = 60.0,
    burst_s: float = 120.0,
    recover_s: float = 240.0,
    **pool_knobs,
) -> EpisodeArrivals:
    """The remediation drill's canonical episode: calm → burst → recover.

    A ``burst_multiplier`` x rate spike of exactly ``burst_s`` seconds
    after a calm warm-up, then a long recovery tail at the base rate
    (and the schedule cycles if the run outlasts it). Used by the
    ``repro tune`` drill and the ext-autotune study to induce the
    overload + starvation episode the closed loop must detect and heal.
    """
    if burst_multiplier <= 0:
        raise WorkloadError(
            f"burst_multiplier must be > 0, got {burst_multiplier}"
        )
    return EpisodeArrivals(
        seed,
        phases=(
            (calm_s, rate_per_s),
            (burst_s, rate_per_s * burst_multiplier),
            (recover_s, rate_per_s),
        ),
        **pool_knobs,
    )
