"""Persist event sequences as JSON (the paper's test-sequence scripts).

The artifact appendix ships Python scripts that generate randomized test
sequences and copy them into the testbed source; a deployed system would
"easily parse the information from a JSON file" (§2.2). This module is
that JSON interchange: save a sequence, reload it bit-exactly, and
round-trip whole experiment suites.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.errors import WorkloadError
from repro.workload.events import EventSequence, EventSpec

#: Format identifier embedded in every file for forward compatibility.
FORMAT_VERSION = 1


def sequence_to_dict(sequence: EventSequence) -> dict:
    """JSON-serializable representation of one sequence."""
    return {
        "format": FORMAT_VERSION,
        "label": sequence.label,
        "events": [
            {
                "benchmark": event.benchmark,
                "batch_size": event.batch_size,
                "priority": event.priority,
                "arrival_ms": event.arrival_ms,
            }
            for event in sequence
        ],
    }


def sequence_from_dict(payload: dict) -> EventSequence:
    """Rebuild a sequence from :func:`sequence_to_dict` output."""
    if not isinstance(payload, dict):
        raise WorkloadError(f"expected an object, got {type(payload).__name__}")
    version = payload.get("format")
    if version != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported sequence format {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    raw_events = payload.get("events")
    if not isinstance(raw_events, list) or not raw_events:
        raise WorkloadError("sequence file contains no events")
    events: List[EventSpec] = []
    for index, raw in enumerate(raw_events):
        try:
            events.append(
                EventSpec(
                    benchmark=raw["benchmark"],
                    batch_size=int(raw["batch_size"]),
                    priority=int(raw["priority"]),
                    arrival_ms=float(raw["arrival_ms"]),
                )
            )
        except KeyError as missing:
            raise WorkloadError(
                f"event {index} is missing field {missing}"
            ) from None
    return EventSequence(events, label=str(payload.get("label", "")))


def save_sequence(
    sequence: EventSequence, path: Union[str, Path]
) -> Path:
    """Write one sequence to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(sequence_to_dict(sequence), indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_sequence(path: Union[str, Path]) -> EventSequence:
    """Read a sequence written by :func:`save_sequence`."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"no sequence file at {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise WorkloadError(f"{path} is not valid JSON: {error}") from None
    return sequence_from_dict(payload)


def save_suite(
    sequences: List[EventSequence], directory: Union[str, Path]
) -> List[Path]:
    """Write a set of sequences into ``directory``, one file each."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, sequence in enumerate(sequences):
        label = sequence.label or f"sequence{index}"
        paths.append(save_sequence(sequence, directory / f"{label}.json"))
    return paths


def load_suite(directory: Union[str, Path]) -> List[EventSequence]:
    """Read every ``*.json`` sequence in ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise WorkloadError(f"{directory} is not a directory")
    return [
        load_sequence(path) for path in sorted(directory.glob("*.json"))
    ]
