"""Batching strategies: one logical batch as one or many requests (§3.2).

The paper motivates large batches: "large batches are able to hide the
latency required for reconfiguration; the reconfiguration time takes up a
higher percentage of the overall latency for smaller batch sizes", and
once a pipeline is established the scheduler avoids re-deciding work that
re-submission in smaller batches would force.

A :class:`BatchingStrategy` splits one logical workload (application +
total item count) into hypervisor requests. ``whole`` submits one request;
``chunks(k)`` splits into ceil(total/k) back-to-back requests of size k;
``per_item`` is the degenerate one-item-per-request case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import WorkloadError
from repro.hypervisor.application import AppRequest
from repro.taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class BatchingStrategy:
    """How one logical batch is cut into requests."""

    name: str
    chunk_size: int  # 0 means "the whole batch in one request"

    def __post_init__(self) -> None:
        if self.chunk_size < 0:
            raise WorkloadError(f"chunk_size must be >= 0, got {self.chunk_size}")

    def split(self, total_items: int) -> List[int]:
        """Request sizes covering ``total_items`` exactly."""
        if total_items < 1:
            raise WorkloadError(f"total_items must be >= 1, got {total_items}")
        if self.chunk_size == 0 or self.chunk_size >= total_items:
            return [total_items]
        full = total_items // self.chunk_size
        sizes = [self.chunk_size] * full
        remainder = total_items - full * self.chunk_size
        if remainder:
            sizes.append(remainder)
        return sizes


def whole() -> BatchingStrategy:
    """The entire logical batch as one request."""
    return BatchingStrategy("whole", 0)


def chunks(size: int) -> BatchingStrategy:
    """Fixed-size chunks submitted back to back."""
    if size < 1:
        raise WorkloadError(f"chunk size must be >= 1, got {size}")
    return BatchingStrategy(f"chunks{size}", size)


def per_item() -> BatchingStrategy:
    """One request per item (maximum re-scheduling overhead)."""
    return BatchingStrategy("per_item", 1)


def requests_for(
    name: str,
    graph: TaskGraph,
    total_items: int,
    strategy: BatchingStrategy,
    priority: int = 3,
    arrival_ms: float = 0.0,
) -> List[AppRequest]:
    """Materialize one logical workload under a batching strategy.

    Chunks share the arrival time: the client has all the data up front
    and chooses only how to present it to the hypervisor, exactly the
    §3.2 trade-off (the later chunks simply queue).
    """
    return [
        AppRequest(
            name=f"{name}",
            graph=graph,
            batch_size=size,
            priority=priority,
            arrival_ms=arrival_ms,
        )
        for size in strategy.split(total_items)
    ]


def num_requests(total_items: int, strategy: BatchingStrategy) -> int:
    """How many requests a strategy produces (diagnostics)."""
    if strategy.chunk_size == 0:
        return 1
    return math.ceil(total_items / strategy.chunk_size)
