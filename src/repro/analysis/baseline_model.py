"""Closed-form model of the no-sharing baseline (simulator validation).

Under the baseline, applications run strictly serially: the oldest pending
application owns the whole board until it retires. For *chain*
applications the exclusive execution has an exact closed form:

* the chain prefetch-configures task ``k`` at ``k x (reconfig + dispatch)``
  after the application takes the board (CAP serialization; every task of
  a chain is configurable immediately because its predecessor is already
  resident);
* task ``k`` starts its bulk batch at
  ``max(config_done_k, finish_{k-1})`` and finishes ``batch x latency_k``
  later.

Chaining the applications — ``start_i = max(arrival_i, retire_{i-1})`` —
yields every baseline response exactly. The test suite checks the
discrete-event simulator agrees to the millisecond; that agreement is the
simulator's correctness anchor.

Only chain-shaped applications are supported (five of the six benchmarks).
Wider graphs hit slot-recycling interactions that have no tidy closed
form — that is what the simulator is for.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import SolverError
from repro.taskgraph.graph import TaskGraph
from repro.workload.events import EventSequence


def predicted_exclusive_execution_ms(
    graph: TaskGraph,
    batch_size: int,
    config: SystemConfig,
) -> Tuple[float, float]:
    """(first item start, retirement) offsets for one app alone on the board.

    Offsets are relative to the instant the application takes the board.
    Raises :class:`SolverError` for non-chain graphs.
    """
    if graph.max_width() != 1:
        raise SolverError(
            f"graph {graph.name!r} is not a chain (width "
            f"{graph.max_width()}); the closed form only covers chains"
        )
    if batch_size < 1:
        raise SolverError(f"batch_size must be >= 1, got {batch_size}")
    if graph.num_tasks > config.num_slots:
        raise SolverError(
            f"chain of {graph.num_tasks} tasks exceeds {config.num_slots} "
            "slots; prefetch would stall and the closed form breaks"
        )

    config_cost = config.reconfig_ms + config.dispatch_overhead_ms
    finish = 0.0
    first_start = None
    for index, task_id in enumerate(graph.topological_order, start=1):
        config_done = index * config_cost
        start = max(config_done, finish)
        if first_start is None:
            first_start = start
        finish = start + batch_size * graph.task(task_id).latency_ms
    assert first_start is not None
    return first_start, finish


def predicted_baseline_responses(
    sequence: EventSequence,
    config: SystemConfig,
) -> List[float]:
    """Exact response time of every event under the no-sharing baseline."""
    board_free = 0.0
    responses: List[float] = []
    cache: Dict[Tuple[str, int], Tuple[float, float]] = {}
    for event in sequence:
        request = event.to_request()
        key = (request.name, request.batch_size)
        if key not in cache:
            cache[key] = predicted_exclusive_execution_ms(
                request.graph, request.batch_size, config
            )
        _, exclusive_finish = cache[key]
        start = max(event.arrival_ms, board_free)
        retire = start + exclusive_finish
        board_free = retire
        responses.append(retire - event.arrival_ms)
    return responses
