"""Analytic cross-validation models.

Simulators earn trust by agreeing with closed-form models where those
exist. The no-sharing baseline is simple enough to solve exactly —
applications run serially, each alone on the whole board — so
:mod:`repro.analysis.baseline_model` predicts every baseline response
analytically, and the test suite checks the discrete-event simulator
reproduces the predictions to the millisecond.
"""

from repro.analysis.baseline_model import (
    predicted_baseline_responses,
    predicted_exclusive_execution_ms,
)

__all__ = [
    "predicted_baseline_responses",
    "predicted_exclusive_execution_ms",
]
