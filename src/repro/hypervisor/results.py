"""Per-application results extracted after a simulation run.

These records carry everything the paper's metrics need: response time
(retirement minus arrival, §3.1), wait time, execution window, summed task
run time, reconfiguration time and the analytic single-slot latency used to
derive deadlines (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import ExperimentError
from repro.hypervisor.application import AppRun
from repro.taskgraph.graph import TaskGraph


def single_slot_latency_ms(
    graph: TaskGraph, batch_size: int, reconfig_ms: float
) -> float:
    """Latency of the application on one slot with zero contention.

    With a single slot, tasks execute strictly serially in topological
    order, each paying one reconfiguration and then processing the full
    batch. Deadlines are this value scaled by ``D_s`` (paper §5.4).
    """
    if batch_size < 1:
        raise ExperimentError(f"batch_size must be >= 1, got {batch_size}")
    total = 0.0
    for task_id in graph.topological_order:
        total += reconfig_ms + batch_size * graph.task(task_id).latency_ms
    return total


@dataclass(frozen=True)
class AppResult:
    """Measured outcome for one application in one simulation run."""

    app_id: int
    name: str
    batch_size: int
    priority: int
    arrival_ms: float
    first_start_ms: float
    retire_ms: float
    run_busy_ms: float
    reconfig_busy_ms: float
    reconfig_count: int
    preemption_count: int
    single_slot_latency_ms: float

    @property
    def response_ms(self) -> float:
        """Response time: retirement minus arrival (paper §3.1)."""
        return self.retire_ms - self.arrival_ms

    @property
    def wait_ms(self) -> float:
        """Queueing delay before the first task item executed."""
        return self.first_start_ms - self.arrival_ms

    @property
    def execution_ms(self) -> float:
        """Window from first item start to retirement (Table 3 semantics)."""
        return self.retire_ms - self.first_start_ms

    @property
    def throughput_items_per_s(self) -> float:
        """Completed batch items per second of response time (Figure 11)."""
        return self.batch_size / (self.response_ms / 1000.0)

    def violates_deadline(self, scaling_factor: float) -> bool:
        """True if response exceeded ``D_s x single-slot latency`` (§5.4)."""
        if scaling_factor <= 0:
            raise ExperimentError(
                f"deadline scaling factor must be > 0, got {scaling_factor}"
            )
        return self.response_ms > scaling_factor * self.single_slot_latency_ms

    @classmethod
    def from_app(cls, app: AppRun, reconfig_ms: float) -> "AppResult":
        """Build the result record from a retired :class:`AppRun`."""
        if app.retire_ms is None or app.first_item_start_ms is None:
            raise ExperimentError(
                f"app {app.app_id} ({app.name}) has not retired"
            )
        total_configs = sum(
            run.configure_count for run in app.tasks.values()
        )
        total_preempts = sum(
            run.preemption_count for run in app.tasks.values()
        )
        run_busy = sum(
            run.items_done * run.latency_ms for run in app.tasks.values()
        )
        return cls(
            app_id=app.app_id,
            name=app.name,
            batch_size=app.batch_size,
            priority=app.priority,
            arrival_ms=app.arrival_ms,
            first_start_ms=app.first_item_start_ms,
            retire_ms=app.retire_ms,
            run_busy_ms=run_busy,
            reconfig_busy_ms=app.reconfig_busy_ms,
            reconfig_count=total_configs,
            preemption_count=total_preempts,
            single_slot_latency_ms=single_slot_latency_ms(
                app.graph, app.batch_size, reconfig_ms
            ),
        )
