"""Scale-out across multiple virtualized FPGAs (paper §1, feature 2).

The paper lists *scale-out* — "allowing applications to spread across
multiple FPGAs" — as a core virtualization feature, and defers multi-device
exploration to future work. This module provides the cluster layer a
deployment would put in front of several Nimblock hypervisors: arriving
applications are dispatched whole to one device (there is no inter-board
partial reconfiguration, so tasks of one application stay together), each
device runs its own scheduler, and results aggregate across the fleet.

Dispatch policies:

* ``round_robin`` — devices in rotation;
* ``least_loaded`` — the device with the least outstanding estimated work
  (the application latency estimate the hypervisor already computes),
  normalized by the device's slot count so heterogeneous fleets
  (Hetero-ViTAL-style mixes of datacenter- and edge-scale boards, paper
  §6.1) balance by capability rather than raw queue length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.hls import application_latency_estimate_ms
from repro.config import SystemConfig
from repro.errors import SchedulerError, WorkloadError
from repro.hypervisor.application import AppRequest
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.results import AppResult
from repro.schedulers.registry import make_scheduler

#: Supported dispatch policy names.
DISPATCH_POLICIES = ("round_robin", "least_loaded")


@dataclass(frozen=True)
class ClusterResult:
    """One application's outcome, annotated with its device."""

    device: int
    result: AppResult


class FPGACluster:
    """A fleet of independently scheduled virtualized FPGAs."""

    def __init__(
        self,
        num_devices: int,
        scheduler_name: str = "nimblock",
        config: Optional[SystemConfig] = None,
        dispatch: str = "least_loaded",
        device_configs: Optional[List[SystemConfig]] = None,
    ) -> None:
        """Build a fleet.

        A homogeneous fleet takes ``num_devices`` copies of ``config``;
        a heterogeneous fleet passes ``device_configs`` explicitly (its
        length overrides ``num_devices``).
        """
        if device_configs is not None:
            if not device_configs:
                raise WorkloadError("device_configs must be non-empty")
            configs = list(device_configs)
        else:
            if num_devices < 1:
                raise WorkloadError(
                    f"num_devices must be >= 1, got {num_devices}"
                )
            configs = [config or SystemConfig()] * num_devices
        if dispatch not in DISPATCH_POLICIES:
            raise SchedulerError(
                f"unknown dispatch policy {dispatch!r}; "
                f"known: {DISPATCH_POLICIES}"
            )
        self.config = configs[0]
        self.device_configs = configs
        self.dispatch = dispatch
        self.hypervisors: List[Hypervisor] = [
            Hypervisor(make_scheduler(scheduler_name), config=device_config)
            for device_config in configs
        ]
        self._estimated_load_ms: List[float] = [0.0] * len(configs)
        self._next_device = 0
        self._placements: Dict[Tuple[int, int], int] = {}
        self._ran = False

    @property
    def num_devices(self) -> int:
        """Fleet size."""
        return len(self.hypervisors)

    def _pick_device(self, estimate_ms: float) -> int:
        if self.dispatch == "round_robin":
            device = self._next_device
            self._next_device = (device + 1) % self.num_devices
            return device
        # Capability-normalized load: a 10-slot board drains the same
        # queue faster than a 4-slot one.
        return min(
            range(self.num_devices),
            key=lambda d: (
                self._estimated_load_ms[d]
                / self.device_configs[d].num_slots,
                d,
            ),
        )

    def submit(self, request: AppRequest) -> Tuple[int, int]:
        """Dispatch one application; returns (device index, device app id)."""
        if self._ran:
            raise SchedulerError("cluster already ran; create a new one")
        estimate = application_latency_estimate_ms(
            request.graph, request.batch_size, self.config.reconfig_ms
        )
        device = self._pick_device(estimate)
        app_id = self.hypervisors[device].submit(request)
        self._estimated_load_ms[device] += estimate
        self._placements[(device, app_id)] = device
        return device, app_id

    def run(self) -> None:
        """Run every device's simulation to completion."""
        self._ran = True
        for hypervisor in self.hypervisors:
            hypervisor.run()
            if not hypervisor.all_retired:
                raise SchedulerError(
                    "a cluster device failed to retire all applications"
                )

    def results(self) -> List[ClusterResult]:
        """All results across the fleet, ordered by (device, app id)."""
        out: List[ClusterResult] = []
        for device, hypervisor in enumerate(self.hypervisors):
            out.extend(
                ClusterResult(device, result)
                for result in hypervisor.results()
            )
        return out

    def mean_response_ms(self) -> float:
        """Fleet-wide mean response time."""
        results = self.results()
        if not results:
            raise SchedulerError("no applications were submitted")
        return sum(r.result.response_ms for r in results) / len(results)

    def device_utilization(self) -> List[int]:
        """Applications placed per device (dispatch balance diagnostics)."""
        counts = [0] * self.num_devices
        for device, hypervisor in enumerate(self.hypervisors):
            counts[device] = len(hypervisor.apps)
        return counts
