"""The Nimblock hypervisor runtime (paper §2.2).

The hypervisor owns the simulated board, drives partial reconfiguration,
manages application data buffers, launches batch items on configured tasks
and delegates policy decisions to a pluggable scheduler. It is the single
execution environment shared by all five evaluated scheduling algorithms.
"""

from repro.hypervisor.application import (
    AppRequest,
    AppRun,
    TaskRun,
    TaskRunState,
)
from repro.hypervisor.queues import PendingQueue
from repro.hypervisor.results import AppResult, single_slot_latency_ms
from repro.hypervisor.hypervisor import Hypervisor, SchedulerContext
from repro.hypervisor.cluster import ClusterResult, FPGACluster
from repro.hypervisor.faas import FaaSGateway, FunctionSpec, InvocationOutcome

__all__ = [
    "AppRequest",
    "AppRun",
    "TaskRun",
    "TaskRunState",
    "PendingQueue",
    "AppResult",
    "single_slot_latency_ms",
    "Hypervisor",
    "SchedulerContext",
    "ClusterResult",
    "FPGACluster",
    "FaaSGateway",
    "FunctionSpec",
    "InvocationOutcome",
]
