"""The hypervisor main loop binding scheduler policy to the simulated board.

Responsibilities mirror the paper's §2.2 description: accept application
requests, load partial bitstreams and drive reconfiguration through the
CAP, allocate and release data buffers, launch batch items on configured
tasks, retire finished applications and record response times.

Execution model
---------------
Every state change (arrival, reconfiguration completion, item completion,
periodic tick) requests a *scheduler pass*. Passes at the same simulated
instant coalesce. A pass first lets the policy act while the configuration
port is idle — preempting slots and/or starting at most one
reconfiguration, because the device can only reconfigure one slot at a
time — and then mechanically launches the next batch item on every
configured task whose dependencies (bulk or pipelined, per the policy's
flags) are satisfied.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.admission.controller import AdmissionController
    from repro.admission.watchdog import Watchdog
    from repro.faults.injector import FaultInjector

from repro.apps.hls import application_latency_estimate_ms, reports_for_benchmark
from repro.config import SystemConfig
from repro.errors import SchedulerError
from repro.faults.models import FaultStats
from repro.faults.recovery import RecoveryPolicy
from repro.hypervisor.application import (
    AppRequest,
    AppRun,
    TaskRun,
    TaskRunState,
)
from repro.hypervisor.queues import PendingQueue
from repro.hypervisor.results import AppResult
from repro.overlay.bitstream import BitstreamHeader, BitstreamStore
from repro.overlay.device import FPGADevice, Slot, SlotHealth, SlotPhase
from repro.overlay.interconnect import InterconnectModel, ZeroCost
from repro.overlay.memory import BufferManager
from repro.schedulers.base import (
    Action,
    ConfigureAction,
    PreemptAction,
    SchedulerPolicy,
)
from repro.modes import normalize_mode
from repro.sim.engine import SimulationEngine
from repro.sim.trace import MetricsTrace, Trace, TraceKind

#: Nominal size of one task-output buffer (per batch item).
ITEM_BUFFER_BYTES = 256 * 1024


class SchedulerContext:
    """Read-mostly view of hypervisor state handed to policies."""

    def __init__(self, hypervisor: "Hypervisor") -> None:
        self._hv = hypervisor

    @property
    def now(self) -> float:
        """Current simulated time (ms)."""
        return self._hv.engine.now

    @property
    def config(self) -> SystemConfig:
        """Platform configuration."""
        return self._hv.config

    @property
    def device(self) -> FPGADevice:
        """The simulated board."""
        return self._hv.device

    @property
    def pending(self) -> PendingQueue:
        """Queue of unretired applications."""
        return self._hv.pending

    def pending_apps(self) -> List[AppRun]:
        """Unretired applications, oldest first.

        Under an overloaded degrade admission policy this view is browned
        out (re-ordered priority-major); without an admission controller
        it is exactly the pending queue's cached arrival-order snapshot.
        """
        hv = self._hv
        apps = hv.pending.in_arrival_order()
        admission = hv.admission
        if admission is not None and admission._is_degrade:
            apps = admission.filter_candidates(apps)
        return apps

    def pending_version(self) -> int:
        """Mutation version of the pending queue (cache key component)."""
        return self._hv.pending.version

    def token_boosts(self) -> int:
        """Lifetime watchdog token boosts (cache key component).

        Together with :attr:`TokenAccounting.gen` and
        :meth:`pending_version` this covers every site that can change a
        pending application's scheduling token.
        """
        watchdog = self._hv.watchdog
        return watchdog.starvation_boosts if watchdog is not None else 0

    def app(self, app_id: int) -> AppRun:
        """Look up any submitted application by id."""
        return self._hv.apps[app_id]

    def free_slot_index(self) -> Optional[int]:
        """Index of the lowest-numbered free slot, or None (cached)."""
        return self._hv.device.lowest_free_slot_index()

    def free_slot_count(self) -> int:
        """Number of slots ready for reconfiguration."""
        return len(self._hv.device.free_slots())

    def slot_occupant(self, slot_index: int) -> Optional[Tuple[AppRun, TaskRun]]:
        """(app, task) pair hosted by a slot, or None."""
        slot = self._hv.device.slot(slot_index)
        if slot.phase != SlotPhase.OCCUPIED:
            return None
        return slot.occupant  # type: ignore[return-value]

    def slot_waiting(self, slot_index: int) -> bool:
        """True if a slot hosts a task idling at a batch boundary."""
        slot = self._hv.device.slot(slot_index)
        return slot.phase == SlotPhase.OCCUPIED and not slot.busy

    def healthy_slot_count(self) -> int:
        """Slots not currently faulted or blacklisted."""
        return len(self._hv.device.healthy_slots())

    def admission_slot_cap(self) -> Optional[int]:
        """Per-app slot cap while the degrade policy is overloaded.

        None — the near-universal case — means no cap: no admission
        controller is attached, its policy does not degrade, or pressure
        is below the overload watermarks.
        """
        admission = self._hv.admission
        if admission is None:
            return None
        return admission.slot_cap()


class Hypervisor:
    """System manager running one scheduling policy over one workload."""

    def __init__(
        self,
        scheduler: SchedulerPolicy,
        config: Optional[SystemConfig] = None,
        engine: Optional[SimulationEngine] = None,
        buffer_capacity_bytes: int = 16 * 1024**3,
        model_bitstream_loads: bool = False,
        interconnect: Optional["InterconnectModel"] = None,
        item_buffer_bytes: int = ITEM_BUFFER_BYTES,
        faults: Optional["FaultInjector"] = None,
        recovery: Optional[RecoveryPolicy] = None,
        observer: Optional[object] = None,
        admission: Optional["AdmissionController"] = None,
        watchdog: Optional["Watchdog"] = None,
        mode: str = "full",
    ) -> None:
        self.config = config or SystemConfig()
        #: Run mode ("full" records trace rows; "metrics" folds straight
        #: into counters). Threaded into the engine so every layer reads
        #: one source of truth.
        self.mode = normalize_mode(mode)
        self.engine = engine or SimulationEngine(mode=self.mode)
        self.scheduler = scheduler
        self.device = FPGADevice(self.engine, self.config.num_slots)
        self.store = BitstreamStore(self.config.num_slots)
        self.buffers = BufferManager(buffer_capacity_bytes)
        self.trace = Trace() if self.mode == "full" else MetricsTrace()
        self.pending = PendingQueue()
        self.apps: Dict[int, AppRun] = {}
        self.retired: List[AppRun] = []
        self._ctx = SchedulerContext(self)
        self._next_app_id = 0
        self._pass_pending = False
        self._tick_scheduled = False
        self._arrivals_outstanding = 0
        self._registered_apps: set = set()
        self._model_bitstream_loads = model_bitstream_loads
        self.interconnect = interconnect or ZeroCost()
        if item_buffer_bytes <= 0:
            raise SchedulerError(
                f"item_buffer_bytes must be > 0, got {item_buffer_bytes}"
            )
        self.item_buffer_bytes = item_buffer_bytes
        self._retire_listeners: List = []
        self.scheduler_passes = 0
        # Hoisted interconnect test: with the default ZeroCost model the
        # per-item transfer charge is always 0, so the launch loop skips
        # the per-predecessor transfer walk entirely.
        self._zero_cost_interconnect = isinstance(self.interconnect, ZeroCost)
        # Fault injection & recovery (repro.faults). With no injector the
        # hook sites below are no-ops and the run is byte-identical to the
        # pre-fault-subsystem simulator.
        self.recovery = recovery or RecoveryPolicy()
        self.fault_stats = FaultStats()
        #: In-flight item completions per slot: (engine seq, start ms).
        self._item_events: Dict[int, Tuple[int, float]] = {}
        self._corrupted_configs: set = set()
        self._config_failures: Dict[Tuple[int, str], int] = {}
        self.faults = faults
        if faults is not None:
            faults.attach(self)
        # Observability hook (repro.observe.Instrumentation, or anything
        # with the same three methods). None — the default — leaves every
        # hook site as a single predicate; no observe code is imported or
        # executed, keeping the unobserved path at seed speed.
        self.observer = observer
        if observer is not None:
            self.engine.set_observer(observer)
        # Overload protection (repro.admission). Both default to None and
        # every hook site below is a single ``is not None`` predicate, so
        # the unprotected path is byte-identical to the pre-admission
        # simulator (pinned by tests/test_perf_equivalence.py).
        self.admission = admission
        if admission is not None:
            admission.attach(self)
        self.watchdog = watchdog
        if watchdog is not None:
            watchdog.attach(self)
        #: Applications evicted by load shedding (never retired).
        self.shed: List[AppRun] = []
        #: Pass number at which the fault stall-breaker last detached
        #: residents; the watchdog stands down for that pass.
        self._last_stall_break_pass = -1
        # Per-pass hot-path constants (config and device are fixed for
        # the hypervisor's lifetime).
        self._guard_limit = 4 * self.config.num_slots + 4
        self._port = self.device.port
        self._slots = self.device.slots
        # Arrival-latency-estimate memo. Service workloads draw requests
        # from a tiny benchmark pool, so the same (graph, batch) pair
        # recurs thousands of times; the estimate is a pure function of
        # both when no estimation error is configured. Keyed by object
        # identity with a strong graph reference so ids cannot be reused.
        self._estimate_cache: Dict[tuple, tuple] = {}
        #: Macro-event replay cache (repro.sim.replay), installed by the
        #: service loop / cluster shards. None — the default — keeps the
        #: arrival path byte-identical to the pre-replay simulator.
        self._replay = None

    def add_retire_listener(self, callback) -> None:
        """Register ``callback(app_run, now)`` to fire on each retirement.

        Listeners run after the policy's completion notification; they may
        submit new applications (the FaaS gateway's admission control uses
        this to release queued invocations).
        """
        self._retire_listeners.append(callback)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: AppRequest) -> int:
        """Queue an application arrival; returns its assigned app id."""
        app_id = self._next_app_id
        self._next_app_id += 1
        self._arrivals_outstanding += 1
        self.engine.schedule(
            request.arrival_ms,
            lambda now, r=request, a=app_id: self._on_arrival(now, a, r),
            -5,
        )
        return app_id

    def _register_bitstreams(self, request: AppRequest) -> None:
        if request.name in self._registered_apps:
            return
        self._registered_apps.add(request.name)
        for task_id in request.graph.topological_order:
            spec = request.graph.task(task_id)
            header = BitstreamHeader(
                application=request.name,
                task_id=task_id,
                latency_estimate_ms=spec.latency_ms,
                batch_size=request.batch_size,
                priority=request.priority,
            )
            self.store.register_task(header)

    def _on_arrival(self, now: float, app_id: int, request: AppRequest) -> None:
        self._arrivals_outstanding -= 1
        if self.admission is not None and not self.admission.admit(
            now, app_id, request
        ):
            # Rejected: the controller has either re-scheduled this
            # arrival with backoff or dropped the application for good.
            return
        replay = self._replay
        if replay is not None and replay.try_replay(now, app_id, request):
            # The memoized segment was applied in bulk (trace rows,
            # counters, credited engine events, deferred retirement);
            # the live cascade below would duplicate it.
            return
        self._register_bitstreams(request)
        error = self.config.hls_estimation_error
        graph = request.graph
        if error == 0:
            # Pure function of (graph, batch) when estimates are exact;
            # the memo holds the graph strongly so the id stays valid.
            key = (id(graph), request.batch_size)
            hit = self._estimate_cache.get(key)
            if hit is not None and hit[0] is graph:
                estimate = hit[1]
            else:
                estimate = application_latency_estimate_ms(
                    graph, request.batch_size, self.config.reconfig_ms,
                    estimation_error=0.0,
                )
                self._estimate_cache[key] = (graph, estimate)
        else:
            estimate = application_latency_estimate_ms(
                graph, request.batch_size, self.config.reconfig_ms,
                estimation_error=error,
            )
        task_estimates = None
        if error > 0:
            task_estimates = {
                task_id: report.latency_estimate_ms
                for task_id, report in reports_for_benchmark(
                    request.graph, error
                ).items()
            }
        app = AppRun(app_id, request, estimate, task_estimates)
        self.apps[app_id] = app
        self.pending.add(app)
        self.trace.record(now, TraceKind.APP_ARRIVED, app_id=app_id)
        self.scheduler.notify_arrival(self._ctx, app)
        self._ensure_tick()
        self._request_pass()

    # ------------------------------------------------------------------
    # Periodic scheduling interval
    # ------------------------------------------------------------------
    def _workload_active(self) -> bool:
        # Ticks only run while applications are pending; arrival handling
        # restarts the chain, so a long idle gap before a future arrival
        # costs no tick events.
        return len(self.pending) > 0

    def _ensure_tick(self) -> None:
        # ``len(self.pending)`` inlined (vs _workload_active): this runs
        # once per executed tick plus once per arrival.
        if self._tick_scheduled or not len(self.pending):
            return
        self._tick_scheduled = True
        self.engine.schedule_delay(
            self.config.scheduling_interval_ms, self._on_tick, 5
        )

    def _on_tick(self, now: float) -> None:
        self._tick_scheduled = False
        if not len(self.pending):
            return
        self.scheduler.notify_tick(self._ctx)
        self._request_pass()
        self._ensure_tick()

    # ------------------------------------------------------------------
    # Scheduler pass
    # ------------------------------------------------------------------
    def _request_pass(self) -> None:
        if self._pass_pending:
            return
        self._pass_pending = True
        self.engine.schedule_delay(0.0, self._run_pass, 10)

    def _run_pass(self, now: float) -> None:
        self._pass_pending = False
        self.scheduler_passes += 1
        observer = self.observer
        pass_token = (
            observer.pass_started() if observer is not None else None
        )
        if self.admission is not None:
            # Pressure refresh + load shedding. Pass start is a batch
            # boundary for every shed victim (it has nothing in flight).
            self.admission.on_pass(now)
        guard = 0
        guard_limit = self._guard_limit
        port = self._port
        decide = self.scheduler.decide
        ctx = self._ctx
        configured = False
        # ``port._active is None`` inlines ``port.is_busy`` and the exact
        # ``type`` checks inline the common ``_apply`` dispatch; action
        # subclasses still reach ``_apply`` through the fallback.
        while port._active is None:
            guard += 1
            if guard > guard_limit:
                raise SchedulerError(
                    f"policy {self.scheduler.name!r} looped without progress"
                )
            action = decide(ctx)
            if action is None:
                break
            action_type = type(action)
            if action_type is ConfigureAction:
                self._apply_configure(action, now)
                configured = True
                break
            if action_type is PreemptAction:
                self._apply_preempt(action, now)
            else:
                self._apply(action, now)
                if isinstance(action, ConfigureAction):
                    configured = True
                    break
        self._launch_ready_items(now)
        # The stall breaker only ever acts under fault injection; gate
        # on that here so fault-free passes skip the call entirely.
        if not configured and self.faults is not None:
            self._break_fault_stall(now)
        if self.watchdog is not None:
            self.watchdog.on_pass(self, now)
        if observer is not None:
            observer.pass_finished(self, now, pass_token)

    def _break_fault_stall(self, now: float) -> None:
        """Un-wedge the board when faults strand runnable work.

        A fault can evict a task whose prefetch-configured successors
        occupy every remaining healthy slot: the successors idle-wait for
        the evicted predecessor, which has no free healthy slot to return
        to. Fault-free runs cannot reach this state (the slot complement
        never shrinks), so the breaker only engages while some slot is
        unhealthy. It detaches every idle resident at the batch boundary —
        the paper's preemption primitive, so batch progress is retained —
        and books a pass for the policy to re-place tasks in dependency
        order on the freed slots.
        """
        if self.faults is None or not self.pending:
            return
        if self.device.port.is_busy:
            return
        slots = self.device.slots
        if all(slot.health is SlotHealth.HEALTHY for slot in slots):
            return
        if any(slot.busy for slot in slots) or any(s.is_free for s in slots):
            return
        if self._detach_idle_residents(now):
            self._last_stall_break_pass = self.scheduler_passes
            self._request_pass()

    def _detach_idle_residents(self, now: float) -> int:
        """Batch-boundary detach of every occupied, non-busy slot.

        The recovery primitive shared by the fault stall-breaker and the
        watchdog's stall kick; returns the number of slots freed.
        """
        detached = 0
        slots = self.device.slots
        for index in sorted(self.device.idle_residents):
            slot = slots[index]
            app, task = slot.occupant  # type: ignore[misc]
            task.detach()
            app._slots_used -= 1
            slot.clear()
            detached += 1
            self.trace.record(
                now, TraceKind.TASK_PREEMPTED,
                app_id=app.app_id, task_id=task.task_id, slot=slot.index,
                detail=float(task.items_done),
            )
        return detached

    def _apply(self, action: Action, now: float) -> None:
        if isinstance(action, ConfigureAction):
            self._apply_configure(action, now)
        elif isinstance(action, PreemptAction):
            self._apply_preempt(action, now)
        else:  # pragma: no cover - type guard
            raise SchedulerError(f"unknown action {action!r}")

    def _apply_configure(self, action: ConfigureAction, now: float) -> None:
        app = self.apps.get(action.app_id)
        if app is None or action.app_id not in self.pending:
            raise SchedulerError(
                f"configure for unknown/retired app {action.app_id}"
            )
        task = app.tasks.get(action.task_id)
        if task is None:
            raise SchedulerError(
                f"configure for unknown task {action.task_id!r}"
            )
        if task.state != TaskRunState.PENDING:
            raise SchedulerError(
                f"task {action.task_id!r} cannot be configured from {task.state}"
            )
        if task.items_done >= app.batch_size:
            raise SchedulerError(
                f"task {action.task_id!r} already finished its batch"
            )
        slot = self.device.slot(action.slot_index)
        if not slot.is_free:
            raise SchedulerError(
                f"slot {action.slot_index} is not free for {action.task_id!r}"
            )

        duration = self.config.reconfig_ms + self.config.dispatch_overhead_ms
        if self._model_bitstream_loads:
            _, load_ms = self.store.load(app.name, task.task_id, slot.index)
            duration += load_ms
        will_fail = False
        if self.faults is not None:
            will_fail, jitter_ms = self.faults.draw_config_outcome(
                self.config.reconfig_ms
            )
            duration += jitter_ms
        task.state = TaskRunState.CONFIGURING
        app._slots_used += 1
        task.slot_index = slot.index
        task.configure_count += 1
        app.reconfig_busy_ms += duration
        self.trace.record(
            now, TraceKind.TASK_CONFIG_START,
            app_id=app.app_id, task_id=task.task_id, slot=slot.index,
        )

        def on_done(
            done_now: float, app=app, task=task, slot=slot,
            will_fail=will_fail, duration=duration,
        ) -> None:
            corrupted = slot.index in self._corrupted_configs
            self._corrupted_configs.discard(slot.index)
            if will_fail or corrupted or not slot.is_healthy:
                self._on_config_failed(done_now, app, task, slot, duration)
                return
            slot.host((app, task))
            task.state = TaskRunState.CONFIGURED
            self._config_failures.pop((app.app_id, task.task_id), None)
            if task.relocated_from is not None:
                if task.relocated_from != slot.index:
                    self.fault_stats.relocations += 1
                    self.trace.record(
                        done_now, TraceKind.TASK_RELOCATED,
                        app_id=app.app_id, task_id=task.task_id,
                        slot=slot.index, detail=float(task.relocated_from),
                    )
                task.relocated_from = None
            self.trace.record(
                done_now, TraceKind.TASK_CONFIG_DONE,
                app_id=app.app_id, task_id=task.task_id, slot=slot.index,
            )
            if task.was_detached:
                # Pairs the earlier TASK_PREEMPTED / fault eviction: the
                # task is back on the board with its batch progress intact.
                task.was_detached = False
                self.trace.record(
                    done_now, TraceKind.TASK_RESUMED,
                    app_id=app.app_id, task_id=task.task_id,
                    slot=slot.index, detail=float(task.items_done),
                )
            self._request_pass()

        self.device.port.request(slot, duration, on_done)

    def _on_config_failed(
        self, now: float, app: AppRun, task: TaskRun, slot: Slot,
        duration: float,
    ) -> None:
        """A partial reconfiguration failed: roll back and retry with backoff.

        The task returns to PENDING (its batch progress is untouched), the
        slot returns to EMPTY, and a scheduler pass is booked after an
        exponentially growing backoff so the policy re-issues the
        configuration — on whichever healthy slot is free by then.
        """
        slot.abort_reconfig()
        task.state = TaskRunState.PENDING
        app._slots_used -= 1
        task.slot_index = None
        self.fault_stats.config_failures += 1
        self.fault_stats.work_lost_ms += duration
        self.trace.record(
            now, TraceKind.CONFIG_FAILED,
            app_id=app.app_id, task_id=task.task_id, slot=slot.index,
            detail=duration,
        )
        key = (app.app_id, task.task_id)
        attempt = self._config_failures.get(key, 0) + 1
        self._config_failures[key] = attempt
        self.engine.schedule_delay(
            self.recovery.backoff_ms(attempt),
            lambda _now: self._request_pass(),
            8,
        )

    def _apply_preempt(self, action: PreemptAction, now: float) -> None:
        slot = self.device.slot(action.slot_index)
        if slot.phase != SlotPhase.OCCUPIED:
            raise SchedulerError(
                f"cannot preempt slot {action.slot_index} in phase {slot.phase}"
            )
        if slot.busy:
            raise SchedulerError(
                f"cannot preempt slot {action.slot_index} mid-item; "
                "batch-preemption only fires at batch boundaries"
            )
        app, task = slot.occupant  # type: ignore[misc]
        task.detach()
        app._slots_used -= 1
        slot.clear()
        self.trace.record(
            now, TraceKind.TASK_PREEMPTED,
            app_id=app.app_id, task_id=task.task_id, slot=slot.index,
            detail=float(task.items_done),
        )

    # ------------------------------------------------------------------
    # Item execution
    # ------------------------------------------------------------------
    def _launch_ready_items(self, now: float) -> None:
        # The device maintains the idle-resident index set inline with
        # slot transitions; sorting the handful of candidates preserves
        # the old whole-board scan's ascending-index launch order.
        idle = self.device.idle_residents
        if not idle:
            return
        pipelined = self.scheduler.pipelined
        if pipelined and self.admission is not None:
            # The degrade policy throttles pipelining depth to bulk mode
            # while the overload pressure signal is high.
            pipelined = self.admission.pipelining_allowed()
        record = self.trace.record
        schedule_delay = self.engine.schedule_delay
        slots = self._slots
        # One idle resident is by far the common case under load; skip
        # the sort (launch order is trivially ascending either way).
        indices = tuple(idle) if len(idle) == 1 else sorted(idle)
        for index in indices:
            slot = slots[index]
            app, task = slot.occupant  # type: ignore[misc]
            if not app._run_item_ready(task, pipelined):
                continue
            item = task.items_done
            slot.start_item()
            if app.first_item_start_ms is None:
                app.first_item_start_ms = now
                self.pending.mark_started(app.app_id)
                record(now, TraceKind.APP_STARTED, app_id=app.app_id)
            record(
                now, TraceKind.ITEM_START,
                app_id=app.app_id, task_id=task.task_id, slot=slot.index,
                detail=float(item),
            )
            duration = task.latency_ms
            if not self._zero_cost_interconnect:
                duration += self._transfer_in_ms(app, task, item, slot.index)
            seq = schedule_delay(
                duration,
                lambda done_now, a=app, t=task, s=slot: self._on_item_done(
                    done_now, a, t, s
                ),
                -2,
            )
            # Remember the in-flight completion so a slot fault can cancel
            # it and account the partial item as lost work. The seq is
            # popped here before any cancel can target it once the item
            # completes, so the raw no-handle cancel path is safe.
            self._item_events[slot.index] = (seq, now)

    def _transfer_in_ms(
        self, app: AppRun, task: TaskRun, item: int, slot_index: int
    ) -> float:
        """Cost of fetching the item's inputs over the interconnect.

        With the default :class:`ZeroCost` model this is always 0 (the
        calibrated task latencies already include PS-routed movement) and
        the launch loop never calls here; the explicit models charge per
        producing slot.
        """
        if self._zero_cost_interconnect:
            return 0.0
        worst = 0.0
        for pred in app.graph.predecessors(task.task_id):
            producer_slot = app.tasks[pred].producer_slots[item]
            worst = max(
                worst,
                self.interconnect.transfer_ms(
                    self.item_buffer_bytes,
                    same_slot=producer_slot == slot_index,
                ),
            )
        return worst

    def _on_item_done(
        self, now: float, app: AppRun, task: TaskRun, slot: Slot
    ) -> None:
        self._item_events.pop(slot.index, None)
        slot.finish_item()
        item = task.items_done
        task.items_done += 1
        task.producer_slots.append(slot.index)
        app.last_item_done_ms = now
        self.trace.record(
            now, TraceKind.ITEM_DONE,
            app_id=app.app_id, task_id=task.task_id, slot=slot.index,
            detail=float(item),
        )

        # Direct edge-table reads (the methods only add a lookup guard,
        # and task ids of a live TaskRun are always in the graph).
        graph = app.graph
        task_id = task.task_id
        buffers = self.buffers
        buffers.publish_output(
            app.app_id, task_id, item, self.item_buffer_bytes,
            len(graph._succ_tuples[task_id]),
        )
        for pred in graph._pred_tuples[task_id]:
            buffers.consume(app.app_id, pred, item)

        if task.items_done >= app.batch_size:
            task.state = TaskRunState.DONE
            app._slots_used -= 1
            task.slot_index = None
            slot.clear()
            self.trace.record(
                now, TraceKind.TASK_DONE,
                app_id=app.app_id, task_id=task.task_id, slot=slot.index,
            )
            if app.is_complete:
                self._retire(app, now)
        self._request_pass()

    def _retire(self, app: AppRun, now: float) -> None:
        app.retire_ms = now
        self.pending.remove(app.app_id)
        self.retired.append(app)
        self.buffers.release_app(app.app_id)
        self.trace.record(now, TraceKind.APP_RETIRED, app_id=app.app_id)
        self.scheduler.notify_completion(self._ctx, app)
        for listener in self._retire_listeners:
            listener(app, now)

    def _shed_app(self, app: AppRun, now: float) -> None:
        """Evict one zero-progress pending application (load shedding).

        The victim leaves the pending queue for good: it never retires
        and produces no :class:`AppResult`. The policy is notified as for
        a completion so its per-app bookkeeping (goal numbers, token
        accounting) is cleaned up. Retire listeners do *not* fire — the
        application did not finish.
        """
        self.pending.remove(app.app_id)
        self.shed.append(app)
        self.buffers.release_app(app.app_id)
        self.trace.record(
            now, TraceKind.APP_SHED, app_id=app.app_id,
            detail=float(app.priority),
        )
        self.scheduler.notify_completion(self._ctx, app)

    # ------------------------------------------------------------------
    # Fault injection & recovery (repro.faults)
    # ------------------------------------------------------------------
    def inject_slot_fault(
        self, now: float, slot_index: int, permanent: bool = False
    ) -> bool:
        """Apply a slot fault: evict, roll back, mark unhealthy, trace.

        Returns False when the fault is refused (the slot is already dead,
        or killing it permanently would drop the board below
        ``recovery.min_healthy_slots``). An occupied slot's task is
        detached with the batch-boundary rollback machinery — completed
        items are its checkpoint, only the in-flight item (if any) is
        lost — and the scheduler relocates it to a healthy slot on a
        later pass.

        Called by :class:`repro.faults.FaultInjector`; also usable
        directly for scripted fault drills.
        """
        slot = self.device.slot(slot_index)
        if slot.health is SlotHealth.DEAD:
            return False
        if permanent and (
            len(self.device.healthy_slots())
            <= self.recovery.min_healthy_slots
        ):
            return False
        work_lost = 0.0
        evicted: Optional[Tuple[AppRun, TaskRun]] = None
        if slot.phase == SlotPhase.RECONFIGURING:
            # The CAP is (or will be) writing this region; the write is
            # doomed. The in-flight request fails when it completes.
            self._corrupted_configs.add(slot.index)
        elif slot.phase == SlotPhase.OCCUPIED:
            app, task = slot.occupant  # type: ignore[misc]
            evicted = (app, task)
            if slot.busy:
                pending = self._item_events.pop(slot.index, None)
                if pending is not None:
                    seq, started = pending
                    self.engine.cancel(seq)
                    work_lost = now - started
                self.fault_stats.items_lost += 1
                slot.interrupt_item()
            task.detach()  # batch-boundary rollback (core/preemption)
            app._slots_used -= 1
            task.relocated_from = slot.index
            slot.clear()
            self.fault_stats.evictions += 1
        if permanent:
            slot.mark_dead()
            self.fault_stats.permanent_faults += 1
        else:
            slot.mark_faulty()
            self.fault_stats.transient_faults += 1
        self.fault_stats.work_lost_ms += work_lost
        self.trace.record(
            now, TraceKind.SLOT_FAULT,
            app_id=evicted[0].app_id if evicted else None,
            task_id=evicted[1].task_id if evicted else None,
            slot=slot_index, detail=work_lost,
        )
        self._request_pass()
        return True

    def repair_slot(self, now: float, slot_index: int) -> bool:
        """Complete the scrub of a transiently faulted slot."""
        slot = self.device.slot(slot_index)
        if slot.health is not SlotHealth.FAULTY:
            return False  # dead slots never repair; healthy need nothing
        slot.repair()
        self.fault_stats.repairs += 1
        self.trace.record(now, TraceKind.SLOT_REPAIRED, slot=slot_index)
        self._request_pass()
        return True

    # ------------------------------------------------------------------
    # Running and results
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation to completion (or to the ``until`` horizon)."""
        self.engine.run(until=until)

    @property
    def all_retired(self) -> bool:
        """True once every admitted application has retired or been shed.

        Applications dropped by a rejecting admission policy never enter
        ``apps`` and therefore do not count; shed applications left the
        system deliberately and do.
        """
        return (
            self._arrivals_outstanding == 0
            and len(self.pending) == 0
            and len(self.retired) + len(self.shed) == len(self.apps)
        )

    def results(self) -> List[AppResult]:
        """Per-application results for every retired application."""
        ordered = sorted(self.retired, key=lambda app: app.app_id)
        return [
            AppResult.from_app(app, self.config.reconfig_ms)
            for app in ordered
        ]
