"""Function-as-a-Service front-end over the Nimblock hypervisor (§1).

The paper motivates FPGA virtualization as the enabler for serverless
computing "with FPGAs as a first-class citizen". This module is that thin
platform layer: accelerated functions are registered once (name, task
graph, defaults, optional SLO), then invoked by name; every invocation
becomes a hypervisor application request, and per-invocation latency and
SLO compliance are reported after the run.

SLOs follow the paper's deadline convention (§5.4): an invocation meets
its SLO when its response time is within ``slo_factor x single-slot
latency`` for its batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.catalog import get_benchmark
from repro.config import PRIORITY_LEVELS
from repro.errors import WorkloadError
from repro.hypervisor.application import AppRequest
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.results import AppResult
from repro.taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class FunctionSpec:
    """One registered accelerated function."""

    name: str
    graph: TaskGraph
    default_priority: int = 3
    default_batch: int = 1
    slo_factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.default_priority not in PRIORITY_LEVELS:
            raise WorkloadError(
                f"default_priority must be one of {PRIORITY_LEVELS}"
            )
        if self.default_batch < 1:
            raise WorkloadError("default_batch must be >= 1")
        if self.slo_factor is not None and self.slo_factor <= 0:
            raise WorkloadError("slo_factor must be > 0")


@dataclass(frozen=True)
class InvocationOutcome:
    """Latency report for one completed invocation."""

    invocation_id: int
    function: str
    result: AppResult
    slo_factor: Optional[float]

    @property
    def latency_ms(self) -> float:
        """End-to-end invocation latency."""
        return self.result.response_ms

    @property
    def met_slo(self) -> Optional[bool]:
        """SLO compliance (None when the function declared no SLO)."""
        if self.slo_factor is None:
            return None
        return not self.result.violates_deadline(self.slo_factor)


class FaaSGateway:
    """Register functions, invoke them by name, collect outcomes.

    ``max_inflight_per_function`` enables admission control: invocations
    beyond the window queue inside the gateway and are released (in
    arrival order) as earlier invocations of the same function retire —
    the serverless platform's standard concurrency limit, protecting the
    board from one function's burst.
    """

    def __init__(
        self,
        hypervisor: Hypervisor,
        max_inflight_per_function: Optional[int] = None,
    ) -> None:
        if (
            max_inflight_per_function is not None
            and max_inflight_per_function < 1
        ):
            raise WorkloadError(
                "max_inflight_per_function must be >= 1, got "
                f"{max_inflight_per_function}"
            )
        self._hypervisor = hypervisor
        self._functions: Dict[str, FunctionSpec] = {}
        self._invocations: Dict[int, str] = {}
        self._max_inflight = max_inflight_per_function
        self._inflight: Dict[str, int] = {}
        self._deferred: Dict[str, List[dict]] = {}
        self.deferred_total = 0
        if max_inflight_per_function is not None:
            hypervisor.add_retire_listener(self._on_retire)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, spec: FunctionSpec) -> None:
        """Register one function; names are unique."""
        if spec.name in self._functions:
            raise WorkloadError(f"function {spec.name!r} already registered")
        self._functions[spec.name] = spec

    def register_benchmark(
        self,
        benchmark: str,
        function_name: Optional[str] = None,
        default_priority: int = 3,
        slo_factor: Optional[float] = None,
    ) -> None:
        """Register one of the catalog benchmarks as a function."""
        app = get_benchmark(benchmark)
        self.register(
            FunctionSpec(
                name=function_name or app.name,
                graph=app.graph,
                default_priority=default_priority,
                slo_factor=slo_factor,
            )
        )

    def functions(self) -> List[str]:
        """Registered function names."""
        return sorted(self._functions)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def invoke(
        self,
        function: str,
        at_ms: float,
        batch_size: Optional[int] = None,
        priority: Optional[int] = None,
    ) -> Optional[int]:
        """Schedule one invocation; returns its invocation id.

        With admission control enabled, an invocation beyond the inflight
        window is deferred and this returns None; the invocation gets its
        id when a slot in the window opens.
        """
        spec = self._functions.get(function)
        if spec is None:
            raise WorkloadError(
                f"unknown function {function!r}; "
                f"registered: {self.functions()}"
            )
        params = {
            "batch_size": batch_size or spec.default_batch,
            "priority": priority or spec.default_priority,
            "at_ms": at_ms,
        }
        if (
            self._max_inflight is not None
            and self._inflight.get(function, 0) >= self._max_inflight
        ):
            self._deferred.setdefault(function, []).append(params)
            self.deferred_total += 1
            return None
        return self._submit(function, spec, params)

    def _submit(self, function: str, spec: FunctionSpec, params: dict) -> int:
        request = AppRequest(
            name=spec.name,
            graph=spec.graph,
            batch_size=params["batch_size"],
            priority=params["priority"],
            arrival_ms=params["at_ms"],
        )
        invocation_id = self._hypervisor.submit(request)
        self._invocations[invocation_id] = function
        self._inflight[function] = self._inflight.get(function, 0) + 1
        return invocation_id

    def _on_retire(self, app, now: float) -> None:
        function = self._invocations.get(app.app_id)
        if function is None:
            return
        self._inflight[function] = max(0, self._inflight.get(function, 1) - 1)
        queue = self._deferred.get(function)
        if queue:
            params = queue.pop(0)
            params = dict(params, at_ms=max(params["at_ms"], now))
            self._submit(function, self._functions[function], params)

    def run(self) -> None:
        """Execute all scheduled invocations to completion."""
        self._hypervisor.run()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def outcomes(self) -> List[InvocationOutcome]:
        """Per-invocation outcomes, in invocation-id order."""
        out = []
        for result in self._hypervisor.results():
            function = self._invocations.get(result.app_id)
            if function is None:
                continue  # not one of ours (direct hypervisor submission)
            spec = self._functions[function]
            out.append(
                InvocationOutcome(
                    invocation_id=result.app_id,
                    function=function,
                    result=result,
                    slo_factor=spec.slo_factor,
                )
            )
        return out

    def slo_compliance(self) -> Dict[str, float]:
        """Per-function fraction of invocations that met their SLO."""
        met: Dict[str, List[bool]] = {}
        for outcome in self.outcomes():
            if outcome.met_slo is None:
                continue
            met.setdefault(outcome.function, []).append(outcome.met_slo)
        return {
            name: sum(flags) / len(flags) for name, flags in met.items()
        }
