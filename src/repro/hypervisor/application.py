"""Runtime state of applications and their tasks inside the hypervisor.

An :class:`AppRequest` is what arrives at the hypervisor (application name,
task graph, batch size, priority — the bitstream-header fields of §2.2).
The hypervisor wraps it in an :class:`AppRun` that tracks scheduling tokens,
slot allocations and per-task batch progress.

Batch progress is the preemption checkpoint: because tasks are only ever
detached at batch-item boundaries, ``TaskRun.items_done`` *is* the saved
state that batch-preemption needs (paper §3.2/§4.4) — no FPGA state
capture is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulerError, WorkloadError
from repro.taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class AppRequest:
    """An application arriving at the hypervisor."""

    name: str
    graph: TaskGraph
    batch_size: int
    priority: int
    arrival_ms: float

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise WorkloadError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.priority < 1:
            raise WorkloadError(f"priority must be >= 1, got {self.priority}")
        if self.arrival_ms < 0:
            raise WorkloadError(f"arrival_ms must be >= 0, got {self.arrival_ms}")


class TaskRunState(str, Enum):
    """Lifecycle of one task inside the hypervisor."""

    PENDING = "pending"          # not configured anywhere
    CONFIGURING = "configuring"  # partial reconfiguration in flight
    CONFIGURED = "configured"    # resident in a slot, running or waiting
    DONE = "done"                # all batch items complete


@dataclass
class TaskRun:
    """Runtime state of one task of one application."""

    task_id: str
    latency_ms: float
    #: HLS-estimated per-item latency (decision input; may deviate from
    #: ``latency_ms`` under the estimate-sensitivity study).
    estimate_ms: Optional[float] = None
    state: TaskRunState = TaskRunState.PENDING
    slot_index: Optional[int] = None
    items_done: int = 0
    configure_count: int = 0
    preemption_count: int = 0
    #: Slot a fault evicted this task from; cleared when the task is next
    #: configured (a different slot then counts as a relocation).
    relocated_from: Optional[int] = None
    #: True between a detach (preemption or fault eviction) and the next
    #: successful reconfiguration; the hypervisor emits ``TASK_RESUMED``
    #: when it clears, pairing the preemption edge for the span builder.
    was_detached: bool = False
    #: Slot that produced each completed item (consumed by the optional
    #: inter-slot transfer model; index = batch item).
    producer_slots: List[int] = field(default_factory=list)

    def detach(self) -> None:
        """Return to PENDING after preemption; batch progress is retained."""
        if self.state != TaskRunState.CONFIGURED:
            raise SchedulerError(
                f"task {self.task_id!r} cannot be preempted from {self.state}"
            )
        self.state = TaskRunState.PENDING
        self.slot_index = None
        self.preemption_count += 1
        self.was_detached = True


class AppRun:
    """One application's full runtime state inside the hypervisor."""

    def __init__(
        self,
        app_id: int,
        request: AppRequest,
        latency_estimate_ms: float,
        task_estimates_ms: Optional[Dict[str, float]] = None,
    ) -> None:
        if latency_estimate_ms <= 0:
            raise WorkloadError(
                f"latency estimate must be > 0, got {latency_estimate_ms}"
            )
        self.app_id = app_id
        self.request = request
        self.latency_estimate_ms = latency_estimate_ms
        # Immutable request fields mirrored as plain attributes: readiness
        # checks read batch_size hundreds of thousands of times per run,
        # and a property descriptor + request indirection is measurable.
        self.name: str = request.name
        self.graph: TaskGraph = request.graph
        self.batch_size: int = request.batch_size
        self.priority: int = request.priority
        self.arrival_ms: float = request.arrival_ms
        self.age_key: Tuple[float, int] = (request.arrival_ms, app_id)
        self.token: float = float(request.priority)
        self.slots_allocated: int = 0
        #: Slot-occupancy counter maintained by the hypervisor at every
        #: TaskRun state transition; mirrors :attr:`slots_used` (which
        #: recounts) on the hot scheduling paths. The runtime invariant
        #: checker cross-validates the two.
        self._slots_used: int = 0
        self.first_item_start_ms: Optional[float] = None
        self.last_item_done_ms: Optional[float] = None
        self.retire_ms: Optional[float] = None
        self.reconfig_busy_ms: float = 0.0
        estimates = task_estimates_ms or {}
        self.tasks: Dict[str, TaskRun] = {
            task_id: TaskRun(
                task_id,
                request.graph.task(task_id).latency_ms,
                estimate_ms=estimates.get(task_id),
            )
            for task_id in request.graph.topological_order
        }
        # Hot-path structure: readiness checks run once per scheduler-pass
        # iteration, so resolve each task's predecessor TaskRuns (and the
        # topological ordering of TaskRuns) to object tuples up front
        # instead of chasing graph + dict lookups per query.
        graph = request.graph
        self._topo_runs: Tuple[TaskRun, ...] = tuple(
            self.tasks[task_id] for task_id in graph.topological_order
        )
        self._pred_runs: Dict[str, Tuple[TaskRun, ...]] = {
            task_id: tuple(
                self.tasks[pred] for pred in graph.predecessors(task_id)
            )
            for task_id in graph.topological_order
        }
        #: Achievable-concurrency bound for :meth:`max_useful_slots`;
        #: batch size and graph shape never change after construction.
        self._concurrency_cap: int = (
            request.batch_size * graph.max_width()
        )

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def task_complete(self, task_id: str) -> bool:
        """True once a task has processed its whole batch."""
        return self.tasks[task_id].items_done >= self.batch_size

    @property
    def is_complete(self) -> bool:
        """True once every task has processed every batch item."""
        return all(
            run.items_done >= self.batch_size for run in self.tasks.values()
        )

    @property
    def slots_used(self) -> int:
        """Slots currently consumed (configured or being configured).

        This is ``a.slots_used`` in Algorithm 2 line 4. Recounted from
        task states so direct state manipulation (tests, drills) always
        reads true; the hypervisor-maintained :attr:`_slots_used` mirror
        serves the per-pass hot paths.
        """
        used = 0
        configuring = TaskRunState.CONFIGURING
        configured = TaskRunState.CONFIGURED
        for run in self._topo_runs:
            state = run.state
            if state is configuring or state is configured:
                used += 1
        return used

    @property
    def over_consumption(self) -> int:
        """How far beyond its allocation the application has grown."""
        return self.slots_used - self.slots_allocated

    def items_remaining(self) -> int:
        """Total batch items still to process across all tasks."""
        return sum(
            max(0, self.batch_size - run.items_done)
            for run in self.tasks.values()
        )

    def remaining_work_ms(self) -> float:
        """Estimated remaining compute (drives PREMA's shortest-first pick).

        Uses the HLS *estimates*, not true latencies — the scheduler only
        ever sees estimates, which is what the estimate-sensitivity study
        perturbs.
        """
        return sum(
            (self.batch_size - run.items_done)
            * (run.estimate_ms if run.estimate_ms is not None
               else run.latency_ms)
            for run in self.tasks.values()
            if run.items_done < self.batch_size
        )

    # ------------------------------------------------------------------
    # Readiness rules
    # ------------------------------------------------------------------
    def preds_complete(self, task_id: str) -> bool:
        """True if every predecessor has finished its entire batch."""
        batch = self.batch_size
        for run in self._pred_runs[task_id]:
            if run.items_done < batch:
                return False
        return True

    def item_ready(self, task_id: str, pipelined: bool) -> bool:
        """Can the configured task ``task_id`` start its next batch item?

        In pipelined mode, item ``b`` needs every predecessor to have
        produced item ``b`` (inter-batch pipelining, Figure 2(c)). In bulk
        mode, the task may only run once every predecessor finished the
        whole batch (Figure 2(a)/(b)).
        """
        return self._run_item_ready(self.tasks[task_id], pipelined)

    def _run_item_ready(self, run: "TaskRun", pipelined: bool) -> bool:
        """:meth:`item_ready` for callers already holding the TaskRun."""
        if run.state is not TaskRunState.CONFIGURED:
            return False
        item = run.items_done
        batch = self.batch_size
        if item >= batch:
            return False
        if pipelined:
            for pred in self._pred_runs[run.task_id]:
                if pred.items_done <= item:
                    return False
            return True
        for pred in self._pred_runs[run.task_id]:
            if pred.items_done < batch:
                return False
        return True

    def configurable_tasks(self, prefetch: bool) -> List[str]:
        """Tasks eligible to be placed into a slot, in topological order.

        With ``prefetch`` the hypervisor may configure a task whose
        predecessors are still executing (or themselves configuring), hiding
        reconfiguration latency behind computation; without it, only tasks
        whose predecessors completed the whole batch are eligible.
        """
        eligible = []
        batch = self.batch_size
        pending = TaskRunState.PENDING
        pred_runs = self._pred_runs
        for run in self._topo_runs:
            if run.state is not pending or run.items_done >= batch:
                continue
            if prefetch:
                ok = True
                for pred in pred_runs[run.task_id]:
                    if pred.state is pending and pred.items_done < batch:
                        ok = False
                        break
            else:
                ok = True
                for pred in pred_runs[run.task_id]:
                    if pred.items_done < batch:
                        ok = False
                        break
            if ok:
                eligible.append(run.task_id)
        return eligible

    def first_configurable_task(self, prefetch: bool) -> Optional[str]:
        """First task of :meth:`configurable_tasks`, without building the list.

        Most policies configure exactly one task per decision, so this
        early-exit variant is the hot-path entry point; it returns exactly
        ``configurable_tasks(prefetch)[0]`` (or None when none is eligible).
        """
        batch = self.batch_size
        pending = TaskRunState.PENDING
        pred_runs = self._pred_runs
        for run in self._topo_runs:
            if run.state is not pending or run.items_done >= batch:
                continue
            ok = True
            if prefetch:
                for pred in pred_runs[run.task_id]:
                    if pred.state is pending and pred.items_done < batch:
                        ok = False
                        break
            else:
                for pred in pred_runs[run.task_id]:
                    if pred.items_done < batch:
                        ok = False
                        break
            if ok:
                return run.task_id
        return None

    def configured_waiting_tasks(self) -> List[str]:
        """Configured tasks not currently needed for bookkeeping helpers."""
        return [
            run.task_id for run in self.tasks.values()
            if run.state == TaskRunState.CONFIGURED
        ]

    def max_useful_slots(self) -> int:
        """Upper bound on slots this application can exploit right now.

        Bounded by the number of unfinished tasks and by the application's
        achievable concurrency: at most ``batch_size`` items are in flight
        through the pipeline and each item can occupy at most ``max_width``
        parallel tasks, so a batch-1 chain can never keep more than one
        slot busy — granting it more would only create idle prefetched
        tasks that preemption has to claw back.
        """
        batch = self.batch_size
        incomplete = 0
        for run in self._topo_runs:
            if run.items_done < batch:
                incomplete += 1
        cap = self._concurrency_cap
        return incomplete if incomplete < cap else cap

    def __repr__(self) -> str:
        return (
            f"AppRun(id={self.app_id}, name={self.name!r}, "
            f"batch={self.batch_size}, prio={self.priority}, "
            f"token={self.token:.2f})"
        )
