"""Application queues maintained by the hypervisor (paper §2.2, §4.1).

Arriving applications sit in the pending queue until they retire. The
candidate pool — the subset whose scheduling tokens cleared the PREMA
threshold — is derived from the pending queue by the policies; the queue
itself only guarantees deterministic arrival ordering and O(1) membership.

Removal is O(1) amortized: ``remove`` tombstones the slot (a plain
``None`` write) instead of the old O(n) ``list.remove`` shift, and the
backing list compacts only once tombstones dominate — so a retire-heavy
run pays constant time per removal while iteration order stays exactly
arrival order (``bench_core.py`` guards the per-op scaling).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import SchedulerError
from repro.hypervisor.application import AppRun

#: Compaction trigger: tombstones outnumber both this floor and the live
#: entries. The floor keeps tiny queues from compacting on every removal;
#: the ratio bounds wasted slots at 50%, making removal O(1) amortized.
_COMPACT_MIN_DEAD = 16


class PendingQueue:
    """Arrival-ordered queue of unretired applications."""

    def __init__(self) -> None:
        #: Mutation version: bumped on every add/remove (compaction is
        #: content-preserving and does not count). Schedulers key their
        #: candidate-pool caches on it.
        self.version = 0
        #: Backing store in insertion order; removed apps leave a None
        #: tombstone behind so removal never shifts the tail.
        self._apps: List[Optional[AppRun]] = []
        #: Position of each live app inside ``_apps``.
        self._positions: Dict[int, int] = {}
        self._index: Dict[int, AppRun] = {}
        self._dead = 0
        # Memoized arrival-order snapshot: the queue only changes on
        # add/remove, while the schedulers ask for the ordering on every
        # decision-pass iteration, so rebuilding the sorted list per call
        # dominated the pass cost.
        self._ordered: Optional[List[AppRun]] = None
        #: Never-started subset: pending apps whose first item has not
        #: launched yet. Starvation tracking, load shedding and the
        #: degrade wait signal only ever look at these, and the property
        #: is one-way (``first_item_start_ms`` never resets), so the
        #: per-pass consumers skip the started majority entirely.
        self._never_started: Dict[int, AppRun] = {}
        self._ns_ordered: Optional[List[AppRun]] = None
        # Arrival-order fast path: the hypervisor adds apps as their
        # arrival events fire, i.e. in nondecreasing ``age_key`` order,
        # so the backing list (and the insertion-ordered never-started
        # dict) already *is* the arrival ordering and the snapshot
        # rebuilds need no sort. One out-of-order add (tests build
        # queues by hand) permanently falls back to sorting.
        self._monotone = True
        self._last_age_key: Optional[tuple] = None

    def add(self, app: AppRun) -> None:
        """Append a newly arrived application."""
        if app.app_id in self._index:
            raise SchedulerError(f"app {app.app_id} already pending")
        self._positions[app.app_id] = len(self._apps)
        self._apps.append(app)
        self._index[app.app_id] = app
        self._ordered = None
        self.version += 1
        if self._monotone:
            last = self._last_age_key
            if last is None or app.age_key >= last:
                self._last_age_key = app.age_key
            else:
                self._monotone = False
        if app.first_item_start_ms is None:
            self._never_started[app.app_id] = app
            self._ns_ordered = None

    def remove(self, app_id: int) -> AppRun:
        """Remove a retired (or shed) application in O(1) amortized."""
        app = self._index.pop(app_id, None)
        if app is None:
            raise SchedulerError(f"app {app_id} is not pending")
        position = self._positions.pop(app_id)
        self._apps[position] = None
        self._dead += 1
        self._ordered = None
        self.version += 1
        if self._never_started.pop(app_id, None) is not None:
            self._ns_ordered = None
        if (
            self._dead > _COMPACT_MIN_DEAD
            and self._dead * 2 >= len(self._apps)
        ):
            self._compact()
        return app

    def _compact(self) -> None:
        """Drop tombstones and re-index positions (amortized by removal)."""
        self._apps = [app for app in self._apps if app is not None]
        self._positions = {
            app.app_id: position
            for position, app in enumerate(self._apps)
        }
        self._dead = 0

    def get(self, app_id: int) -> Optional[AppRun]:
        """The pending app with ``app_id``, or None."""
        return self._index.get(app_id)

    def __contains__(self, app_id: int) -> bool:
        return app_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[AppRun]:
        """Iterate in arrival order."""
        return iter(self.in_arrival_order())

    def in_arrival_order(self) -> List[AppRun]:
        """Snapshot of pending applications, oldest first.

        The returned list is cached between queue mutations; callers treat
        it as read-only (every scheduler copies before sorting further).
        """
        ordered = self._ordered
        if ordered is None:
            if self._monotone:
                ordered = [app for app in self._apps if app is not None]
            else:
                ordered = sorted(
                    (app for app in self._apps if app is not None),
                    key=lambda app: app.age_key,
                )
            self._ordered = ordered
        return ordered

    def mark_started(self, app_id: int) -> None:
        """Drop an app from the never-started registry.

        Called by the hypervisor exactly when it stamps
        ``first_item_start_ms``; the transition is one-way. Does not bump
        ``version``: the candidate pool is a pure function of queue
        contents and tokens, neither of which changes here.
        """
        if self._never_started.pop(app_id, None) is not None:
            self._ns_ordered = None

    def never_started_in_arrival_order(self) -> List[AppRun]:
        """Pending apps that have executed nothing yet, oldest first.

        Cached like :meth:`in_arrival_order`; callers treat the list as
        read-only.
        """
        ordered = self._ns_ordered
        if ordered is None:
            if self._monotone:
                # Insertion-ordered dict; removals preserve the order.
                ordered = list(self._never_started.values())
            else:
                ordered = sorted(
                    self._never_started.values(),
                    key=lambda app: app.age_key,
                )
            self._ns_ordered = ordered
        return ordered

    def oldest(self) -> Optional[AppRun]:
        """The longest-waiting pending application."""
        apps = self.in_arrival_order()
        return apps[0] if apps else None

    def self_check(self) -> None:
        """Verify internal bookkeeping; raises :class:`SchedulerError`.

        Used by the runtime invariant checker (``repro.invariants``):
        index, position map and tombstoned backing list must agree.
        """
        live = [app for app in self._apps if app is not None]
        if len(live) != len(self._index) or len(live) != len(self._positions):
            raise SchedulerError(
                f"pending queue inconsistent: {len(live)} live entries, "
                f"{len(self._index)} indexed, {len(self._positions)} "
                "positioned"
            )
        dead = len(self._apps) - len(live)
        if dead != self._dead:
            raise SchedulerError(
                f"pending queue tombstone drift: counted {dead}, "
                f"tracked {self._dead}"
            )
        expected_ns = {
            app.app_id for app in live
            if app.first_item_start_ms is None
        }
        if expected_ns != set(self._never_started):
            raise SchedulerError(
                "pending queue never-started registry drift: expected "
                f"{sorted(expected_ns)}, tracked "
                f"{sorted(self._never_started)}"
            )
        for app_id, position in self._positions.items():
            app = self._apps[position]
            if app is None or app.app_id != app_id:
                raise SchedulerError(
                    f"pending queue position map broken for app {app_id}"
                )
            if self._index.get(app_id) is not app:
                raise SchedulerError(
                    f"pending queue index disagrees for app {app_id}"
                )
