"""Application queues maintained by the hypervisor (paper §2.2, §4.1).

Arriving applications sit in the pending queue until they retire. The
candidate pool — the subset whose scheduling tokens cleared the PREMA
threshold — is derived from the pending queue by the policies; the queue
itself only guarantees deterministic arrival ordering and O(1) membership.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import SchedulerError
from repro.hypervisor.application import AppRun


class PendingQueue:
    """Arrival-ordered queue of unretired applications."""

    def __init__(self) -> None:
        self._apps: List[AppRun] = []
        self._index: Dict[int, AppRun] = {}
        # Memoized arrival-order snapshot: the queue only changes on
        # add/remove, while the schedulers ask for the ordering on every
        # decision-pass iteration, so rebuilding the sorted list per call
        # dominated the pass cost.
        self._ordered: Optional[List[AppRun]] = None

    def add(self, app: AppRun) -> None:
        """Append a newly arrived application."""
        if app.app_id in self._index:
            raise SchedulerError(f"app {app.app_id} already pending")
        self._apps.append(app)
        self._index[app.app_id] = app
        self._ordered = None

    def remove(self, app_id: int) -> AppRun:
        """Remove a retired application."""
        app = self._index.pop(app_id, None)
        if app is None:
            raise SchedulerError(f"app {app_id} is not pending")
        self._apps.remove(app)
        self._ordered = None
        return app

    def get(self, app_id: int) -> Optional[AppRun]:
        """The pending app with ``app_id``, or None."""
        return self._index.get(app_id)

    def __contains__(self, app_id: int) -> bool:
        return app_id in self._index

    def __len__(self) -> int:
        return len(self._apps)

    def __iter__(self) -> Iterator[AppRun]:
        """Iterate in arrival order."""
        return iter(list(self._apps))

    def in_arrival_order(self) -> List[AppRun]:
        """Snapshot of pending applications, oldest first.

        The returned list is cached between queue mutations; callers treat
        it as read-only (every scheduler copies before sorting further).
        """
        ordered = self._ordered
        if ordered is None:
            ordered = self._ordered = sorted(
                self._apps, key=lambda app: app.age_key
            )
        return ordered

    def oldest(self) -> Optional[AppRun]:
        """The longest-waiting pending application."""
        apps = self.in_arrival_order()
        return apps[0] if apps else None
