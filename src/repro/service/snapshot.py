"""Checkpoint/resume for long service runs (:mod:`repro.service.loop`).

A snapshot is captured only at a **quiescent window boundary**: the
pending queue is empty, no application is running or in admission-retry
limbo, and at most the loop's single one-ahead submission is in flight
(its arrival lies in the future, so the resume replays it from the
arrival stream instead of persisting hypervisor internals). That makes
the checkpoint a small, plain-JSON payload — a stream cursor plus the
accumulated windowed metrics and lifetime counters — rather than a pickle
of live simulation state, and it is exactly why resume is deterministic:

* the arrival stream is replayed via ``arrivals.events(skip=cursor)``,
  which is byte-identical to the tail of an uninterrupted stream;
* the windowed metrics are restored verbatim and keep accumulating;
* the simulation clock continues at absolute times, so window indices,
  arrival instants and response times all line up.

An uninterrupted run and a snapshot-plus-resume run therefore produce
byte-identical :meth:`~repro.service.loop.ServiceReport.to_dict`
payloads (pinned by ``tests/test_service.py``).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Tuple

from repro.errors import ServiceError
from repro.service.windows import WindowedMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.loop import ServiceLoop
    from repro.workload.arrivals import ArrivalProcess

#: Snapshot payload format version. Format 2 renamed the ``policy`` key
#: to ``admission`` (matching the unified run API vocabulary) and added
#: ``snapshot_every_windows`` so a resumed loop keeps the original's
#: checkpoint cadence — and therefore its window-boundary schedule.
SNAPSHOT_FORMAT = 2


def build_snapshot(loop: "ServiceLoop", now: float) -> dict:
    """The JSON-serializable checkpoint of a quiescent service loop."""
    return {
        "format": SNAPSHOT_FORMAT,
        "clock_ms": now,
        "cursor": loop._arrived,
        "scheduler": loop.scheduler_name,
        "admission": loop.admission_name,
        "seed": loop.seed,
        "window_ms": loop.window_ms,
        "alpha": loop.alpha,
        "max_submissions": loop.max_submissions,
        "snapshot_every_windows": loop.snapshot_every_windows,
        "arrivals": loop.arrivals.describe(),
        "windows_closed": loop._windows_closed,
        "next_close_index": loop._next_close_index,
        "completed": loop._completed,
        "shed": loop._shed_total,
        "dropped": loop._dropped_base + loop.admission.stats.dropped,
        "rejections": (
            loop._rejections_base + loop.admission.stats.rejections
        ),
        "engine_events": (
            loop._engine_events_base + loop.engine.processed
        ),
        "windows": loop.windows.to_dict(),
    }


def validate_snapshot(payload: dict) -> dict:
    """Check a snapshot payload's shape; returns it for chaining."""
    if not isinstance(payload, dict):
        raise ServiceError(
            f"snapshot payload must be a dict, got {type(payload).__name__}"
        )
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ServiceError(
            f"unsupported snapshot format {payload.get('format')!r} "
            f"(this build reads format {SNAPSHOT_FORMAT})"
        )
    required = (
        "clock_ms", "cursor", "scheduler", "admission", "seed", "window_ms",
        "alpha", "max_submissions", "snapshot_every_windows",
        "arrivals", "windows_closed",
        "next_close_index", "completed", "shed", "dropped", "rejections",
        "engine_events", "windows",
    )
    missing = [key for key in required if key not in payload]
    if missing:
        raise ServiceError(f"snapshot payload missing keys: {missing}")
    return payload


def restore_state(
    payload: dict, arrivals: "ArrivalProcess"
) -> Tuple[dict, dict]:
    """Split a validated snapshot into (resume state, constructor knobs).

    Cross-checks the arrival process against the snapshotted description
    — resuming against a different stream would silently desynchronize
    the cursor.
    """
    validate_snapshot(payload)
    recorded = payload["arrivals"]
    actual = arrivals.describe()
    if recorded != actual:
        raise ServiceError(
            "snapshot was taken against a different arrival process: "
            f"recorded {recorded!r}, got {actual!r}"
        )
    state = {
        "cursor": payload["cursor"],
        "clock_ms": payload["clock_ms"],
        "windows": WindowedMetrics.from_dict(payload["windows"]),
        "windows_closed": payload["windows_closed"],
        "next_close_index": payload["next_close_index"],
        "completed": payload["completed"],
        "shed": payload["shed"],
        "dropped": payload["dropped"],
        "rejections": payload["rejections"],
        "engine_events": payload["engine_events"],
    }
    knobs = {
        "scheduler": payload["scheduler"],
        "admission": payload["admission"],
        "seed": payload["seed"],
        "window_ms": payload["window_ms"],
        "alpha": payload["alpha"],
        "max_submissions": payload["max_submissions"],
        "snapshot_every_windows": payload["snapshot_every_windows"],
    }
    return state, knobs


def save_snapshot(payload: dict, path) -> None:
    """Write one snapshot as deterministic (sorted-key) JSON."""
    validate_snapshot(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_snapshot(path) -> dict:
    """Read a snapshot written by :func:`save_snapshot`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ServiceError(
                f"snapshot file {path} is not valid JSON: {error}"
            ) from None
    return validate_snapshot(payload)
