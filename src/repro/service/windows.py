"""Tumbling-window streaming SLO metrics for the online service tier.

The closed-run metrics (:mod:`repro.metrics`) assume the full trace and
every :class:`~repro.hypervisor.results.AppResult` are in memory; an
open-loop service run to millions of submissions can afford neither.
This module keeps the service run's entire statistical footprint in a
bounded structure:

* time is cut into **tumbling windows** of ``window_ms`` — half-open
  intervals ``[k * window_ms, (k+1) * window_ms)`` addressed by their
  integer index ``k``;
* each window holds plain counters (arrivals, completions, sheds, drops,
  rejections, engine events) plus one
  :class:`~repro.service.sketch.QuantileSketch` of the completed
  responses, so per-window p50/p95/p99 are available at any time within
  the sketch's documented relative-error bound;
* empty windows are never materialised — a diurnal trough costs nothing.

Everything merges **associatively and commutatively**: counters add,
sketches add bucket-wise, gauges take the max. Sharded service cells
gathered in task order therefore produce byte-identical serialized
metrics at any ``--jobs`` count — the same contract
:func:`repro.observe.merge_snapshots` keeps for closed-run metrics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.service.sketch import DEFAULT_ALPHA, QuantileSketch

#: Default tumbling-window width (10 simulated seconds).
DEFAULT_WINDOW_MS = 10_000.0

#: Pseudo-index of run-total aggregates (never a real window).
TOTAL_INDEX = -1


class WindowStats:
    """Aggregates of one tumbling window (or of a run total).

    All fields are mergeable: counters add, ``peak_pending`` maxes and
    the response sketch merges exactly, so two shards of the same window
    combine into precisely the stats a single-process run would have
    produced.
    """

    __slots__ = ("index", "arrived", "completed", "shed", "dropped",
                 "rejections", "engine_events", "peak_pending", "sketch")

    def __init__(self, index: int, alpha: float = DEFAULT_ALPHA) -> None:
        self.index = index
        self.arrived = 0
        self.completed = 0
        self.shed = 0
        self.dropped = 0
        self.rejections = 0
        self.engine_events = 0
        #: Deepest pending queue observed at a window boundary.
        self.peak_pending = 0
        #: Sketch of completed-app response times (ms).
        self.sketch = QuantileSketch(alpha=alpha)

    # -- queries --------------------------------------------------------
    @property
    def loss_frac(self) -> float:
        """Fraction of this window's arrivals lost (shed + dropped)."""
        if self.arrived == 0:
            return 0.0
        return (self.shed + self.dropped) / self.arrived

    def p(self, pct: float) -> float:
        """Response percentile of the window (NaN when empty)."""
        return self.sketch.percentile(pct)

    @property
    def empty(self) -> bool:
        """True when nothing at all happened in the window."""
        return (
            self.arrived == 0 and self.completed == 0 and self.shed == 0
            and self.dropped == 0 and self.rejections == 0
            and self.engine_events == 0 and self.peak_pending == 0
        )

    # -- merging and serialization --------------------------------------
    def merge(self, other: "WindowStats") -> "WindowStats":
        """Fold another shard of the *same* window (or total) into self."""
        if self.index != other.index:
            raise ServiceError(
                f"cannot merge window {other.index} into window {self.index}"
            )
        self.arrived += other.arrived
        self.completed += other.completed
        self.shed += other.shed
        self.dropped += other.dropped
        self.rejections += other.rejections
        self.engine_events += other.engine_events
        self.peak_pending = max(self.peak_pending, other.peak_pending)
        self.sketch.merge(other.sketch)
        return self

    @classmethod
    def combined(
        cls, parts: List["WindowStats"], alpha: float = DEFAULT_ALPHA
    ) -> "WindowStats":
        """Run-total aggregate over any set of windows."""
        total = cls(TOTAL_INDEX, alpha=alpha)
        for part in parts:
            total.arrived += part.arrived
            total.completed += part.completed
            total.shed += part.shed
            total.dropped += part.dropped
            total.rejections += part.rejections
            total.engine_events += part.engine_events
            total.peak_pending = max(total.peak_pending, part.peak_pending)
            total.sketch.merge(part.sketch)
        return total

    def to_dict(self) -> dict:
        """Deterministic JSON-serializable state."""
        return {
            "index": self.index,
            "arrived": self.arrived,
            "completed": self.completed,
            "shed": self.shed,
            "dropped": self.dropped,
            "rejections": self.rejections,
            "engine_events": self.engine_events,
            "peak_pending": self.peak_pending,
            "sketch": self.sketch.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowStats":
        """Rebuild window stats from :meth:`to_dict` output."""
        try:
            stats = cls(int(payload["index"]))
            stats.arrived = int(payload["arrived"])
            stats.completed = int(payload["completed"])
            stats.shed = int(payload["shed"])
            stats.dropped = int(payload["dropped"])
            stats.rejections = int(payload["rejections"])
            stats.engine_events = int(payload["engine_events"])
            stats.peak_pending = int(payload["peak_pending"])
            stats.sketch = QuantileSketch.from_dict(payload["sketch"])
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(
                f"malformed window payload: {error}"
            ) from None
        return stats


class WindowedMetrics:
    """The service run's full streaming-metric state.

    A sparse map of window index to :class:`WindowStats`. Memory is
    O(non-empty windows), independent of submission count; merges are
    pointwise per index and therefore exactly associative.
    """

    __slots__ = ("window_ms", "alpha", "_windows")

    def __init__(
        self,
        window_ms: float = DEFAULT_WINDOW_MS,
        alpha: float = DEFAULT_ALPHA,
    ) -> None:
        if window_ms <= 0:
            raise ServiceError(f"window_ms must be > 0, got {window_ms}")
        self.window_ms = window_ms
        self.alpha = alpha
        self._windows: Dict[int, WindowStats] = {}

    # -- addressing -----------------------------------------------------
    def window_index(self, t_ms: float) -> int:
        """The tumbling-window index containing simulated time ``t_ms``."""
        return int(t_ms // self.window_ms)

    def _at(self, index: int) -> WindowStats:
        stats = self._windows.get(index)
        if stats is None:
            stats = self._windows[index] = WindowStats(
                index, alpha=self.alpha
            )
        return stats

    # -- observations (time-addressed) ----------------------------------
    def observe_arrival(self, t_ms: float) -> None:
        """One application arrived at ``t_ms``."""
        self._at(self.window_index(t_ms)).arrived += 1

    def observe_completion(self, t_ms: float, response_ms: float) -> None:
        """One application retired at ``t_ms`` with ``response_ms``."""
        stats = self._at(self.window_index(t_ms))
        stats.completed += 1
        stats.sketch.add(response_ms)

    # -- observations (index-addressed; folded at window close) ---------
    def observe_shed(self, index: int, count: int) -> None:
        """``count`` applications were shed inside window ``index``."""
        if count:
            self._at(index).shed += count

    def observe_dropped(self, index: int, count: int) -> None:
        """``count`` applications were dropped inside window ``index``."""
        if count:
            self._at(index).dropped += count

    def observe_rejections(self, index: int, count: int) -> None:
        """``count`` rejection events fired inside window ``index``."""
        if count:
            self._at(index).rejections += count

    def note_engine_events(self, index: int, count: int) -> None:
        """``count`` engine events were processed inside window ``index``."""
        if count:
            self._at(index).engine_events += count

    def note_pending_depth(self, index: int, depth: int) -> None:
        """Pending-queue depth gauge at the close of window ``index``."""
        if depth:
            stats = self._at(index)
            if depth > stats.peak_pending:
                stats.peak_pending = depth

    # -- queries --------------------------------------------------------
    @property
    def windows(self) -> List[WindowStats]:
        """All non-empty windows, in index order."""
        return [self._windows[i] for i in sorted(self._windows)]

    def __len__(self) -> int:
        return len(self._windows)

    def total(self) -> WindowStats:
        """Run-total aggregate across every window."""
        return WindowStats.combined(self.windows, alpha=self.alpha)

    # -- merging and serialization --------------------------------------
    def merge(self, other: "WindowedMetrics") -> "WindowedMetrics":
        """Pointwise-merge another shard's windows into self (exact)."""
        if self.window_ms != other.window_ms or self.alpha != other.alpha:
            raise ServiceError(
                "cannot merge windowed metrics with different parameters: "
                f"window_ms {self.window_ms} vs {other.window_ms}, "
                f"alpha {self.alpha} vs {other.alpha}"
            )
        for index in sorted(other._windows):
            stats = other._windows[index]
            mine = self._windows.get(index)
            if mine is None:
                self._windows[index] = WindowStats.from_dict(stats.to_dict())
            else:
                mine.merge(stats)
        return self

    def to_dict(self) -> dict:
        """Deterministic JSON-serializable state (windows in index order).

        Equal metrics serialize identically — the byte-identity contract
        behind the ``--jobs N`` CI diff.
        """
        return {
            "window_ms": self.window_ms,
            "alpha": self.alpha,
            "windows": [stats.to_dict() for stats in self.windows],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowedMetrics":
        """Rebuild windowed metrics from :meth:`to_dict` output."""
        try:
            metrics = cls(
                window_ms=float(payload["window_ms"]),
                alpha=float(payload["alpha"]),
            )
            for entry in payload["windows"]:
                stats = WindowStats.from_dict(entry)
                metrics._windows[stats.index] = stats
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(
                f"malformed windowed-metrics payload: {error}"
            ) from None
        return metrics

    # -- rendering ------------------------------------------------------
    def format_table(self, limit: int = 12) -> str:
        """A fixed-width per-window table (head and tail when long)."""
        rows = self.windows
        header = (
            f"{'window':>8} {'t0_s':>8} {'arrive':>7} {'done':>7} "
            f"{'shed':>6} {'drop':>6} {'depth':>6} "
            f"{'p50_ms':>9} {'p99_ms':>9}"
        )
        lines = [header]
        shown = rows
        elided = 0
        if len(rows) > limit:
            head = limit // 2
            tail = limit - head
            shown = rows[:head] + rows[-tail:]
            elided = len(rows) - limit
        for position, stats in enumerate(shown):
            if elided and position == limit // 2:
                lines.append(f"{'...':>8} ({elided} windows elided)")
            t0_s = stats.index * self.window_ms / 1000.0
            lines.append(
                f"{stats.index:>8} {t0_s:>8.0f} {stats.arrived:>7} "
                f"{stats.completed:>7} {stats.shed:>6} {stats.dropped:>6} "
                f"{stats.peak_pending:>6} "
                f"{_fmt_ms(stats.p(50.0)):>9} {_fmt_ms(stats.p(99.0)):>9}"
            )
        return "\n".join(lines)


def _fmt_ms(value: float) -> str:
    """Render a millisecond figure ('-' when NaN: nothing completed)."""
    if value != value:  # NaN
        return "-"
    return f"{value:.0f}"


def merge_windowed(
    parts: List[WindowedMetrics],
) -> Optional[WindowedMetrics]:
    """Merge many shards into a fresh one (None for an empty list)."""
    merged: Optional[WindowedMetrics] = None
    for part in parts:
        if merged is None:
            merged = WindowedMetrics.from_dict(part.to_dict())
        else:
            merged.merge(part)
    return merged
