"""The open-loop online service loop: incremental feeding, O(1) state.

Closed experiments materialize a finite
:class:`~repro.workload.events.EventSequence`, submit every event up
front and keep every retired :class:`~repro.hypervisor.application.AppRun`
plus the full trace until the run ends. :class:`ServiceLoop` is the
sustained-load counterpart: it drives the *unmodified*
:class:`~repro.hypervisor.hypervisor.Hypervisor` (admission controller
and watchdog included) from a lazy
:class:`~repro.workload.arrivals.ArrivalProcess`, holding memory O(1) in
the submission count:

* **one-ahead feeding** — exactly one arrival is submitted beyond the
  simulation clock; a feeder event at that arrival's instant pulls the
  next one, so the engine heap never holds more than one future arrival;
* **state discard** — a retire listener folds each completed app's
  response into the windowed metrics and immediately deletes the app
  from the hypervisor's ``retired``/``apps`` books; shed apps are
  drained the same way at window boundaries (``all_retired`` stays
  consistent because both sides of its ledger shrink together);
* **bounded trace** — the hypervisor's trace is replaced with a
  :class:`~repro.sim.trace.BoundedTrace` ring so watchdog/admission
  bookkeeping keeps exact lifetime counters while row storage stays
  constant;
* **window closes** — a self-perpetuating engine event at each window
  boundary (priority −100, ahead of every same-instant arrival or
  completion) folds admission/engine deltas into the window that just
  ended, making window attribution exact for half-open windows;
* **snapshots** — at every ``snapshot_every_windows``-th boundary where
  the board is quiescent, a JSON-serializable checkpoint is captured
  (see :mod:`repro.service.snapshot`); :meth:`ServiceLoop.resume`
  continues a run from one with metrics byte-identical to an
  uninterrupted run.

Determinism: the loop adds no randomness of its own — same process, same
seed, same knobs give the identical :class:`ServiceReport`, and report
payloads merge associatively across shards (``--jobs N``).
"""

from __future__ import annotations

import time as _time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

from repro.admission.controller import AdmissionController
from repro.admission.watchdog import Watchdog
from repro.config import SystemConfig
from repro.errors import ServiceError
from repro.modes import normalize_mode
from repro.schedulers.registry import make_scheduler
from repro.service.sketch import DEFAULT_ALPHA
from repro.service.windows import (
    DEFAULT_WINDOW_MS,
    WindowedMetrics,
    WindowStats,
)
from repro.sim.trace import BoundedTrace
from repro.workload.arrivals import ArrivalProcess
from repro.workload.events import EventSpec

#: Default retained-trace tail (rows), see :class:`BoundedTrace`.
DEFAULT_TRACE_CAPACITY = 2048

#: Engine priority of the window-close event: fires before every
#: same-instant feeder (−6), arrival (−5) or completion (−2), so a close
#: at boundary T folds exactly the half-open window [T − W, T).
_CLOSE_PRIORITY = -100

#: Engine priority of the feeder pump: just ahead of the arrival event
#: it co-times with, so the next submission exists before the board
#: reacts to the current one.
_PUMP_PRIORITY = -6


@dataclass(frozen=True)
class ServiceReport:
    """One finished (or resumed-and-finished) service run.

    Every field except ``wall_s`` is a pure function of the run's seeded
    inputs; :meth:`to_dict` exposes exactly that deterministic subset,
    which is what the ``--jobs N`` byte-identity CI diff compares.
    """

    scheduler: str
    admission: str
    arrivals: str
    window_ms: float
    alpha: float
    #: Arrivals consumed from the stream (includes one possibly
    #: in-flight tail arrival that never reached its arrival instant).
    submitted: int
    arrived: int
    completed: int
    shed: int
    dropped: int
    rejections: int
    windows_closed: int
    span_ms: float
    engine_events: int
    resumed_from_ms: float
    windows: WindowedMetrics
    snapshots: List[dict] = field(default_factory=list)
    wall_s: float = 0.0
    #: Run mode the loop executed under. Like ``wall_s`` it is excluded
    #: from :meth:`to_dict` — the deterministic payload is identical
    #: across modes (and across ``--jobs``), which is exactly what the
    #: mode-equivalence CI diff asserts.
    mode: str = "full"
    #: Macro-event replay cache counters. Excluded from :meth:`to_dict`
    #: like ``wall_s``/``mode``: replay is a pure execution strategy, so
    #: the deterministic payload must not depend on whether (or how
    #: often) it engaged — that independence is what the replay A/B CI
    #: diff asserts.
    replay_hits: int = 0
    replay_misses: int = 0
    #: True when a closed-loop autotuner was armed for the run. The
    #: decision log joins :meth:`to_dict` only then, so un-tuned
    #: payloads (and their golden pins) are byte-for-byte unchanged.
    autotuned: bool = False
    #: Frozen remediation decision records, in window order.
    decisions: List[dict] = field(default_factory=list)

    # -- derived --------------------------------------------------------
    def totals(self) -> WindowStats:
        """Run-total window aggregate."""
        return self.windows.total()

    @property
    def loss_frac(self) -> float:
        """Lifetime (shed + dropped) / arrived fraction."""
        if self.arrived == 0:
            return 0.0
        return (self.shed + self.dropped) / self.arrived

    def p(self, pct: float) -> float:
        """Lifetime response percentile (sketch estimate)."""
        return self.totals().sketch.percentile(pct)

    def slo_attainment(self, target) -> float:
        """Fraction of non-empty windows meeting a
        :class:`~repro.metrics.slo.SloTarget` (1.0 with no windows)."""
        windows = [w for w in self.windows.windows if w.arrived > 0]
        if not windows:
            return 1.0
        met = sum(
            1 for w in windows if target.met(w.p(99.0), w.loss_frac)
        )
        return met / len(windows)

    # -- serialization and rendering ------------------------------------
    @property
    def applies(self) -> int:
        """Remediation patches actually applied during the run."""
        return sum(1 for d in self.decisions if d.get("applied"))

    def to_dict(self) -> dict:
        """The deterministic payload (no wall-clock, no snapshots)."""
        payload = self._base_dict()
        if self.autotuned:
            payload["decisions"] = self.decisions
            payload["applies"] = self.applies
        return payload

    def _base_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "admission": self.admission,
            "arrivals": self.arrivals,
            "window_ms": self.window_ms,
            "alpha": self.alpha,
            "submitted": self.submitted,
            "arrived": self.arrived,
            "completed": self.completed,
            "shed": self.shed,
            "dropped": self.dropped,
            "rejections": self.rejections,
            "windows_closed": self.windows_closed,
            "span_ms": self.span_ms,
            "engine_events": self.engine_events,
            "resumed_from_ms": self.resumed_from_ms,
            "snapshot_count": len(self.snapshots),
            "windows": self.windows.to_dict(),
        }

    def format(self, window_rows: int = 12) -> str:
        """Deterministic multi-line rendering (window table + totals)."""
        return format_report(self.to_dict(), window_rows=window_rows)


def format_report(payload: dict, window_rows: int = 12) -> str:
    """Render a :meth:`ServiceReport.to_dict` payload as text.

    Operates on the serialized payload so gathered ``--jobs N`` worker
    results render without reconstructing report objects — the rendering
    is part of the byte-identity surface.
    """
    windows = WindowedMetrics.from_dict(payload["windows"])
    total = windows.total()
    sketch = total.sketch
    lines = [
        f"service run: scheduler={payload['scheduler']} "
        f"admission={payload['admission']} arrivals={payload['arrivals']}",
        f"  windows: {payload['windows_closed']} closed x "
        f"{payload['window_ms'] / 1000.0:g}s "
        f"({len(windows)} non-empty), span {payload['span_ms'] / 1000.0:.1f}s"
        + (
            f", resumed at {payload['resumed_from_ms'] / 1000.0:.1f}s"
            if payload["resumed_from_ms"] else ""
        ),
        f"  arrivals: {payload['arrived']} arrived "
        f"({payload['submitted']} submitted), "
        f"{payload['completed']} completed, {payload['shed']} shed, "
        f"{payload['dropped']} dropped, "
        f"{payload['rejections']} rejections",
        f"  responses: p50={_ms(sketch.percentile(50.0))} "
        f"p95={_ms(sketch.percentile(95.0))} "
        f"p99={_ms(sketch.percentile(99.0))} mean={_ms(sketch.mean)} "
        f"(sketch alpha={payload['alpha']:g})",
        f"  engine: {payload['engine_events']} events, "
        f"peak pending depth {total.peak_pending}",
    ]
    table = windows.format_table(limit=window_rows)
    lines.extend("  " + line for line in table.splitlines())
    if "decisions" in payload:
        lines.append(
            f"  autotune: {len(payload['decisions'])} decisions, "
            f"{payload['applies']} applied"
        )
        for decision in payload["decisions"]:
            kinds = ",".join(
                s["kind"] for s in decision["symptoms"]
            ) or "-"
            applied = decision.get("applied") or "none"
            lines.append(
                f"    window {decision['window']}: [{kinds}] "
                f"-> applied={applied} "
                f"({len(decision.get('candidates', []))} candidates)"
            )
    return "\n".join(lines)


def _ms(value: float) -> str:
    if value != value:  # NaN — nothing completed
        return "-"
    return f"{value:.0f}ms"


class ServiceLoop:
    """Drive one hypervisor from an open-loop arrival process.

    A loop instance runs exactly once (:meth:`run`); resuming from a
    snapshot builds a *new* loop via :meth:`resume`. See the module
    docstring for the O(1)-memory mechanics.
    """

    def __init__(
        self,
        arrivals: ArrivalProcess,
        scheduler: str = "nimblock",
        *,
        max_submissions: int = 10_000,
        horizon_ms: Optional[float] = None,
        window_ms: float = DEFAULT_WINDOW_MS,
        alpha: float = DEFAULT_ALPHA,
        admission: str = "unbounded",
        admission_knobs: Optional[dict] = None,
        watchdog: Union[bool, Watchdog] = True,
        seed: int = 0,
        config: Optional[SystemConfig] = None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        snapshot_every_windows: Optional[int] = None,
        observer: Optional[object] = None,
        mode: str = "full",
        replay: bool = True,
        autotune: Optional[object] = None,
        _resume_state: Optional[dict] = None,
    ) -> None:
        from repro.hypervisor.hypervisor import Hypervisor

        if max_submissions < 0:
            raise ServiceError(
                f"max_submissions must be >= 0, got {max_submissions}"
            )
        if snapshot_every_windows is not None and snapshot_every_windows < 1:
            raise ServiceError(
                "snapshot_every_windows must be >= 1, got "
                f"{snapshot_every_windows}"
            )
        if autotune is not None and snapshot_every_windows is not None:
            raise ServiceError(
                "autotune and periodic snapshots are mutually exclusive: "
                "a mid-run config patch cannot be captured by the "
                "snapshot/resume contract"
            )
        self.arrivals = arrivals
        self.scheduler_name = scheduler
        self.admission_name = admission
        #: Admission knob overrides, kept for the autotuner's baseline
        #: :class:`~repro.autotune.proposals.TunableConfig` capture.
        self.admission_knobs = dict(admission_knobs or {})
        self.mode = normalize_mode(mode)
        self.seed = seed
        self.max_submissions = max_submissions
        self.horizon_ms = horizon_ms
        self.window_ms = float(window_ms)
        self.alpha = alpha
        self.snapshot_every_windows = snapshot_every_windows

        self.admission = AdmissionController(
            admission, seed=seed, **(admission_knobs or {})
        )
        if watchdog is True:
            watchdog = Watchdog()
        elif watchdog is False:
            watchdog = None
        self.hv = Hypervisor(
            scheduler=make_scheduler(scheduler),
            config=config,
            admission=self.admission,
            watchdog=watchdog,
            observer=observer,
            mode=self.mode,
        )
        if self.mode == "full":
            # Swap the append-only trace for a bounded ring before
            # anything records into it — lifetime counters stay exact,
            # rows stay O(1) as a debugging tail.
            self.hv.trace = BoundedTrace(trace_capacity)
        # (metrics mode keeps the hypervisor's MetricsTrace: exact
        # lifetime counters, zero rows — strictly cheaper than the ring.)
        self.hv.add_retire_listener(self._on_retire)
        self.engine = self.hv.engine

        # -- macro-event replay (repro.sim.replay) ----------------------
        # Absolute fire times of bulk-credited engine events not yet
        # folded into a window; sorted (credits arrive in fire order and
        # each segment is pinned strictly before the next arrival).
        self._replay_event_times: List[float] = []
        self._replay_cache = None
        if (
            replay
            # Snapshot runs count window boundaries and capture engine
            # state at quiescent closes; replay credits a segment's
            # trailing tick ahead of time, which could land in a
            # snapshot payload. Keep those runs on the live path.
            and snapshot_every_windows is None
            # A caller-supplied Watchdog subclass cannot be mirrored
            # into the recording world faithfully.
            and (watchdog is None or type(watchdog) is Watchdog)
            # The autotuner's detector reads watchdog detection
            # counters, which the replay byte-identity contract does
            # not cover (the mirror world accumulates them); an armed
            # autotuner therefore always runs live, making its decision
            # log trivially identical with replay on or off.
            and autotune is None
        ):
            from repro.sim.replay import ReplayCache

            knobs = dict(admission_knobs or {})
            watchdog_config = None if watchdog is None else watchdog.config
            self._replay_cache = ReplayCache(
                self.hv,
                scheduler_factory=lambda: make_scheduler(scheduler),
                admission_factory=lambda: AdmissionController(
                    admission, seed=seed, **knobs
                ),
                watchdog_factory=(
                    None if watchdog_config is None
                    else lambda: Watchdog(watchdog_config)
                ),
                next_arrival_ms=self._replay_next_arrival,
                on_credit=self._replay_event_times.extend,
            )
            self.hv._replay = self._replay_cache

        # -- closed-loop remediation (repro.autotune) -------------------
        # Imported only when armed: a plain service run never pays for
        # (or even loads) the pipeline — bench_autotune --guard pins it.
        self._tuner = None
        if autotune is not None:
            from repro.autotune.engine import Autotuner

            self._tuner = Autotuner(self, autotune)

        # -- streaming state (possibly restored from a snapshot) --------
        state = _resume_state or {}
        #: Arrivals already consumed in previous run segments.
        self._skip = int(state.get("cursor", 0))
        self.windows = state.get("windows") or WindowedMetrics(
            window_ms=self.window_ms, alpha=alpha
        )
        self._windows_closed = int(state.get("windows_closed", 0))
        #: Index of the next window boundary to close.
        self._next_close_index = int(
            state.get("next_close_index", 0)
        )
        self.resumed_from_ms = float(state.get("clock_ms", 0.0))
        # Lifetime counters (continue across resumes).
        self._arrived = self._skip
        self._completed = int(state.get("completed", 0))
        self._shed_total = int(state.get("shed", 0))
        self._dropped_base = int(state.get("dropped", 0))
        self._rejections_base = int(state.get("rejections", 0))
        self._engine_events_base = int(state.get("engine_events", 0))

        self._stream: Optional[Iterator[EventSpec]] = None
        self._next_spec: Optional[EventSpec] = None
        self._consumed = self._skip
        self._stream_done = False
        # Per-run fold baselines against the (fresh) controller stats.
        self._folded_rejections = 0
        self._folded_dropped = 0
        self._folded_shed = 0
        self._folded_engine_events = 0
        self.snapshots: List[dict] = []
        self._started = False

    # ------------------------------------------------------------------
    # Feeding (one arrival ahead of the clock)
    # ------------------------------------------------------------------
    def _pump(self, now: float) -> None:
        # Drain sheds eagerly: window attribution comes from admission
        # stat deltas at closes, so the drain instant is free to pick —
        # and per-arrival keeps hv.shed/hv.apps O(1) between closes.
        self._drain_shed()
        spec = self._next_spec
        if spec is not None:
            # ``now`` is exactly this spec's arrival instant: count it.
            self._arrived += 1
            self.windows.observe_arrival(spec.arrival_ms)
            if self._tuner is not None:
                self._tuner.note_arrival(spec)
            self._next_spec = None
        if self._consumed >= self.max_submissions:
            self._stream_done = True
            return
        assert self._stream is not None
        nxt = next(self._stream, None)
        if nxt is None or (
            self.horizon_ms is not None and nxt.arrival_ms > self.horizon_ms
        ):
            self._stream_done = True
            return
        self._consumed += 1
        self._next_spec = nxt
        self.hv.submit(nxt.to_request())
        self.engine.schedule(nxt.arrival_ms, self._pump, _PUMP_PRIORITY)

    # ------------------------------------------------------------------
    # Replay support
    # ------------------------------------------------------------------
    def _replay_next_arrival(self) -> Optional[float]:
        """Next arrival instant for the replay gap check.

        Returns None once the stream is exhausted, the one-ahead spec's
        arrival time while feeding, and −1.0 ("unknown", blocks replay)
        whenever extra arrival events are in flight — e.g. a rejecting
        admission policy's backoff retries, whose instants the loop
        cannot see.
        """
        spec = self._next_spec
        if spec is None:
            if self.hv._arrivals_outstanding == 0:
                return None
            return -1.0
        if self.hv._arrivals_outstanding != 1:
            return -1.0
        return spec.arrival_ms

    @property
    def replay_hits(self) -> int:
        """Arrivals applied from the replay cache (0 when disabled)."""
        cache = self._replay_cache
        return 0 if cache is None else cache.hits

    @property
    def replay_misses(self) -> int:
        """Arrivals that took the live path past the replay gate."""
        cache = self._replay_cache
        return 0 if cache is None else cache.misses

    # ------------------------------------------------------------------
    # State discard
    # ------------------------------------------------------------------
    def _on_retire(self, app, now: float) -> None:
        self._completed += 1
        self.windows.observe_completion(now, now - app.arrival_ms)
        # Discard the completed app: pop it from both sides of the
        # ``all_retired`` ledger so the invariant keeps holding.
        hv = self.hv
        retired = hv.retired
        if retired and retired[-1] is app:
            retired.pop()
        else:  # pragma: no cover - listeners fire right after append
            retired.remove(app)
        hv.apps.pop(app.app_id, None)

    def _drain_shed(self) -> None:
        hv = self.hv
        if not hv.shed:
            return
        for app in hv.shed:
            hv.apps.pop(app.app_id, None)
        self._shed_total += len(hv.shed)
        hv.shed.clear()

    # ------------------------------------------------------------------
    # Window closes
    # ------------------------------------------------------------------
    def _fold_deltas(self, index: int, up_to: Optional[float] = None) -> None:
        """Attribute since-last-fold admission/engine deltas to a window.

        ``up_to`` is the closing boundary's instant: replay-credited
        engine events whose reconstructed fire time lies at or beyond it
        have not "happened" yet from the window's perspective (a live
        run would process them later) and are withheld for a later fold.
        None — the end-of-run safety net — attributes everything.
        """
        stats = self.admission.stats
        delta = stats.rejections - self._folded_rejections
        if delta:
            self.windows.observe_rejections(index, delta)
            self._folded_rejections = stats.rejections
        delta = stats.dropped - self._folded_dropped
        if delta:
            self.windows.observe_dropped(index, delta)
            self._folded_dropped = stats.dropped
        delta = stats.shed - self._folded_shed
        if delta:
            self.windows.observe_shed(index, delta)
            self._folded_shed = stats.shed
        delta = self.engine.processed - self._folded_engine_events
        ledger = self._replay_event_times
        if ledger:
            if up_to is None:
                ledger.clear()
            else:
                due = bisect_left(ledger, up_to)
                delta -= len(ledger) - due
                if due:
                    del ledger[:due]
        if delta:
            self.windows.note_engine_events(index, delta)
            self._folded_engine_events += delta

    def _on_window_close(self, now: float) -> None:
        index = self._next_close_index
        self._drain_shed()
        self._fold_deltas(index, up_to=now)
        self.windows.note_pending_depth(index, len(self.hv.pending))
        self._windows_closed += 1
        if self._tuner is not None:
            # The quiescent boundary: the window's deltas are folded and
            # no same-instant event outranks this one, so a config patch
            # applied here is atomic for the simulation.
            self._tuner.on_window_close(index, now)
        next_index = index + 1
        # Batch-advance over quiescent gaps: when the board is fully
        # drained and the only future work is the one-ahead arrival,
        # every window boundary before that arrival would close an empty
        # window (the sparse WindowedMetrics never materialises them and
        # no deltas can accrue with no events in between), so jump the
        # close chain straight to the arrival's window. Observable only
        # as fewer ``windows_closed``/``engine_events`` — identically in
        # both run modes. Disabled while periodic snapshots are armed,
        # which count boundaries.
        if (
            self.snapshot_every_windows is None
            and self._next_spec is not None
            and not self.hv.apps
            and self.hv._arrivals_outstanding == 1
        ):
            arrival_window = int(
                self._next_spec.arrival_ms // self.window_ms
            )
            if arrival_window > next_index:
                next_index = arrival_window
        self._next_close_index = next_index
        self._maybe_snapshot(now)
        if not self._finished():
            self.engine.schedule(
                (next_index + 1) * self.window_ms,
                self._on_window_close,
                _CLOSE_PRIORITY,
            )

    def _finished(self) -> bool:
        """True once the stream ended and the board fully drained."""
        hv = self.hv
        return (
            self._stream_done
            and self._next_spec is None
            and not hv.apps
            and hv._arrivals_outstanding == 0
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _quiescent(self) -> bool:
        """No app is admitted, running or in retry limbo.

        The single one-ahead submission (``_next_spec``) is allowed: its
        arrival lies in the future and a resume replays it from the
        arrival stream, so nothing is lost.
        """
        expected_outstanding = 1 if self._next_spec is not None else 0
        hv = self.hv
        return (
            not hv.apps
            and hv._arrivals_outstanding == expected_outstanding
        )

    def _maybe_snapshot(self, now: float) -> None:
        every = self.snapshot_every_windows
        if not every or self._windows_closed % every:
            return
        if not self._quiescent():
            return
        from repro.service.snapshot import build_snapshot

        self.snapshots.append(build_snapshot(self, now))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        """Run the service to stream end + drain; return the report."""
        if self._started:
            raise ServiceError(
                "a ServiceLoop runs once; build a new one (or resume "
                "from a snapshot) for another run"
            )
        self._started = True
        started_wall = _time.perf_counter()
        self._stream = self.arrivals.events(skip=self._skip)
        # Prime the one-ahead feeder (submits the first arrival, if any).
        self._pump(0.0)
        if not self._stream_done or self._next_spec is not None:
            self.engine.schedule(
                (self._next_close_index + 1) * self.window_ms,
                self._on_window_close,
                _CLOSE_PRIORITY,
            )
        self.engine.run()
        # Safety net: fold anything after the last boundary (only tiny
        # runs that never scheduled a close reach here with deltas).
        self._drain_shed()
        self._fold_deltas(self._next_close_index)
        wall_s = _time.perf_counter() - started_wall
        return self._report(wall_s)

    def _report(self, wall_s: float) -> ServiceReport:
        stats = self.admission.stats
        return ServiceReport(
            scheduler=self.scheduler_name,
            admission=self.admission_name,
            arrivals=self.arrivals.describe(),
            window_ms=self.window_ms,
            alpha=self.alpha,
            submitted=self._consumed,
            arrived=self._arrived,
            completed=self._completed,
            shed=self._shed_total,
            dropped=self._dropped_base + stats.dropped,
            rejections=self._rejections_base + stats.rejections,
            windows_closed=self._windows_closed,
            span_ms=self.engine.now,
            engine_events=self._engine_events_base + self.engine.processed,
            resumed_from_ms=self.resumed_from_ms,
            windows=self.windows,
            snapshots=self.snapshots,
            wall_s=wall_s,
            mode=self.mode,
            replay_hits=self.replay_hits,
            replay_misses=self.replay_misses,
            autotuned=self._tuner is not None,
            decisions=(
                [] if self._tuner is None else list(self._tuner.decisions)
            ),
        )

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        snapshot: dict,
        arrivals: ArrivalProcess,
        **overrides,
    ) -> "ServiceLoop":
        """A fresh loop continuing a snapshotted run.

        ``arrivals`` must be the same seeded process the snapshotted run
        used (checked against the recorded description). Keyword
        overrides replace constructor knobs; everything else — scheduler,
        admission, seed, window/sketch parameters, submission cap,
        snapshot cadence — comes from the snapshot, so an uninterrupted
        run and a snapshot-plus-resume run produce byte-identical
        reports.
        """
        from repro.service.snapshot import restore_state

        state, knobs = restore_state(snapshot, arrivals)
        knobs.update(overrides)
        return cls(arrivals, _resume_state=state, **knobs)
