"""Open-loop online service tier (``repro.service``).

Every closed experiment replays a finite sequence and keeps the full
trace; this package runs the shared-FPGA platform as a *service* under
sustained open-loop load — the regime the admission controller and
watchdog (``repro.admission``) exist for — at millions of submissions
with O(1) memory:

* :mod:`repro.service.sketch` — bounded, exactly-mergeable quantile
  sketch (documented 1% relative-error bound);
* :mod:`repro.service.windows` — tumbling-window streaming SLO metrics
  with associative merges (``--jobs N`` byte-identity);
* :mod:`repro.service.loop` — the :class:`ServiceLoop` feeding a lazy
  :class:`~repro.workload.arrivals.ArrivalProcess` into the unmodified
  hypervisor, discarding completed-app state as it goes;
* :mod:`repro.service.snapshot` — quiescent-boundary checkpoints and
  deterministic resume.

CLI: ``nimblock-repro serve``; capacity study: ``nimblock-repro
ext-service``; docs: ``docs/service.md``.
"""

from repro.service.loop import (
    DEFAULT_TRACE_CAPACITY,
    ServiceLoop,
    ServiceReport,
    format_report,
)
from repro.service.sketch import (
    DEFAULT_ALPHA,
    QuantileSketch,
    SketchError,
    merge_sketches,
)
from repro.service.snapshot import (
    SNAPSHOT_FORMAT,
    build_snapshot,
    load_snapshot,
    save_snapshot,
    validate_snapshot,
)
from repro.service.windows import (
    DEFAULT_WINDOW_MS,
    WindowedMetrics,
    WindowStats,
    merge_windowed,
)

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_TRACE_CAPACITY",
    "DEFAULT_WINDOW_MS",
    "QuantileSketch",
    "SNAPSHOT_FORMAT",
    "ServiceLoop",
    "ServiceReport",
    "SketchError",
    "WindowStats",
    "WindowedMetrics",
    "build_snapshot",
    "format_report",
    "load_snapshot",
    "merge_sketches",
    "merge_windowed",
    "save_snapshot",
    "validate_snapshot",
]
