"""Bounded streaming quantile sketch for windowed SLO percentiles.

A DDSketch-style log-bucketed histogram: every positive sample maps to
bucket ``ceil(log_gamma(x))`` with ``gamma = (1 + alpha) / (1 - alpha)``,
so each bucket spans one relative-error band. Three properties make it
the right sketch for the service tier:

* **documented error bound** — any quantile estimate is within relative
  error ``alpha`` (default 1%) of the exact
  :func:`repro.metrics.response.percentile` on the same samples, as long
  as the samples lie inside ``[min_value, max_value]``. The bound holds
  for the *interpolated* percentile too: the sketch interpolates between
  its estimates of the two adjacent order statistics with the same
  weights the exact computation uses, and a convex combination of values
  each within relative error ``alpha`` stays within ``alpha`` (all
  values positive). Pinned by ``tests/test_sketch_properties.py``;

* **O(1) memory** — the representable range is clamped, so the bucket
  count is a constant (about 1,300 buckets for 0.01 ms .. 10^9 ms at
  alpha=1%) independent of how many samples are folded in. There is no
  bucket collapsing, hence no data-dependent accuracy loss;

* **exact associative merges** — a merge adds bucket counters, so
  ``merge(merge(a, b), c) == merge(a, merge(b, c))`` *exactly* (not just
  within tolerance) and sharded accumulation is order-independent. This
  is the same contract the :mod:`repro.observe` snapshot merges keep,
  and it is what makes ``--jobs N`` service metrics byte-identical to
  serial runs.

Values below ``min_value`` clamp up and values above ``max_value`` clamp
down (both tracked in ``clamped``), so feeding an out-of-range sample
degrades that one sample's accuracy instead of growing memory.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class SketchError(ReproError):
    """A quantile sketch was misconfigured or misdriven."""


#: Default relative-error bound (1%).
DEFAULT_ALPHA = 0.01

#: Default representable range, ms: 10 us to ~11.6 simulated days.
DEFAULT_MIN_VALUE = 0.01
DEFAULT_MAX_VALUE = 1e9


class QuantileSketch:
    """Mergeable log-bucket quantile sketch with relative error ``alpha``."""

    __slots__ = ("alpha", "min_value", "max_value", "_gamma", "_log_gamma",
                 "_buckets", "_zeros", "count", "clamped", "_view")

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise SketchError(f"alpha must be in (0, 1), got {alpha}")
        if min_value <= 0 or max_value <= min_value:
            raise SketchError(
                f"need 0 < min_value < max_value, got "
                f"[{min_value}, {max_value}]"
            )
        self.alpha = alpha
        self.min_value = min_value
        self.max_value = max_value
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        #: Sparse bucket counters: index -> count. Bounded by the fixed
        #: index range of [min_value, max_value].
        self._buckets: Dict[int, int] = {}
        #: Exact zero samples (zero has no log bucket; estimate is exact).
        self._zeros = 0
        #: Samples folded in (including zeros and clamped samples).
        self.count = 0
        #: Samples clamped into the representable range.
        self.clamped = 0
        #: Cached (sorted bucket indices, cumulative counts) view, built
        #: lazily on the first rank query and reused until the bucket
        #: table changes. Quantile reads on a settled sketch are then
        #: O(log buckets) instead of re-sorting per call.
        self._view: Optional[Tuple[List[int], List[int]]] = None

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def _index_of(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma - 1e-12)

    def index_of(self, value: float) -> int:
        """The bucket index a sample maps to (after range clamping).

        The public companion of :meth:`add_bucket_counts`: callers that
        fold many equal samples pre-bucket once, then bulk-add.
        """
        if value <= 0 or math.isnan(value):
            raise SketchError(f"bucketable samples must be > 0, got {value}")
        if value < self.min_value:
            value = self.min_value
        elif value > self.max_value:
            value = self.max_value
        return self._index_of(value)

    def add(self, value: float) -> None:
        """Fold one sample in. Negative samples are invalid."""
        if value < 0 or math.isnan(value):
            raise SketchError(f"samples must be >= 0, got {value}")
        self.count += 1
        if value == 0.0:
            self._zeros += 1
            return
        if value < self.min_value:
            value = self.min_value
            self.clamped += 1
        elif value > self.max_value:
            value = self.max_value
            self.clamped += 1
        index = self._index_of(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self._view = None

    def add_bucket_counts(self, index: int, count: int) -> None:
        """Fold ``count`` samples that all map to bucket ``index``.

        Exactly equivalent to ``count`` singleton :meth:`add` calls of
        any in-range value in that bucket — same ``to_dict`` bytes, same
        merge behavior — but O(1). ``index`` must lie inside the
        sketch's representable index range (use :meth:`index_of`), so
        bulk accumulation cannot grow memory past the clamped bound.
        """
        if count < 0:
            raise SketchError(f"bucket count must be >= 0, got {count}")
        if not self._index_of(self.min_value) <= index <= self._index_of(
            self.max_value
        ):
            raise SketchError(
                f"bucket index {index} outside representable range "
                f"[{self.min_value}, {self.max_value}]"
            )
        if count == 0:
            return
        self.count += count
        self._buckets[index] = self._buckets.get(index, 0) + count
        self._view = None

    def extend(self, values: Sequence[float]) -> None:
        """Fold many samples in."""
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _value_of(self, index: int) -> float:
        # Bucket midpoint (geometric): 2 gamma^i / (gamma + 1) — within
        # relative error alpha of every sample the bucket holds.
        return 2.0 * math.pow(self._gamma, index) / (self._gamma + 1.0)

    def _sorted_view(self) -> Tuple[List[int], List[int]]:
        view = self._view
        if view is None:
            indices = sorted(self._buckets)
            cumulative: List[int] = []
            seen = 0
            for index in indices:
                seen += self._buckets[index]
                cumulative.append(seen)
            view = (indices, cumulative)
            self._view = view
        return view

    def _value_at_rank(self, rank: int) -> float:
        """Estimate of the sample at 0-based ``rank`` in sorted order."""
        if rank < self._zeros:
            return 0.0
        indices, cumulative = self._sorted_view()
        position = bisect_right(cumulative, rank - self._zeros)
        if position >= len(indices):  # pragma: no cover - safety
            position = len(indices) - 1
        return self._value_of(indices[position])

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]).

        Uses the same linear-interpolation rank convention as
        :func:`repro.metrics.response.percentile` (numpy 'linear'):
        ``rank = q * (count - 1)``, interpolating between the adjacent
        order-statistic estimates, so the two agree within relative
        error ``alpha`` on in-range samples.
        """
        if not 0.0 <= q <= 1.0:
            raise SketchError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * (self.count - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        low_value = self._value_at_rank(low)
        if high == low:
            return low_value
        high_value = self._value_at_rank(high)
        weight = rank - low
        return low_value + (high_value - low_value) * weight

    def percentile(self, pct: float) -> float:
        """:meth:`quantile` with a percentage argument (0..100)."""
        if not 0.0 <= pct <= 100.0:
            raise SketchError(f"percentile must be in [0, 100], got {pct}")
        return self.quantile(pct / 100.0)

    @property
    def mean(self) -> float:
        """Mean estimate from bucket midpoints (relative error alpha).

        The sketch deliberately keeps *no* float accumulator: a running
        sum would make merged state depend on merge order in the last
        ulp, breaking the exact-associativity contract. Summing the
        sorted buckets instead is order-independent by construction and
        each midpoint is within relative error ``alpha`` of every sample
        its bucket holds, so the estimate inherits the same bound the
        quantiles carry.
        """
        if self.count == 0:
            return float("nan")
        indices, _ = self._sorted_view()
        total = sum(
            self._buckets[index] * self._value_of(index)
            for index in indices
        )
        return total / self.count

    # ------------------------------------------------------------------
    # Merging and serialization
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "QuantileSketch") -> None:
        if (
            self.alpha != other.alpha
            or self.min_value != other.min_value
            or self.max_value != other.max_value
        ):
            raise SketchError(
                "cannot merge sketches with different parameters: "
                f"alpha {self.alpha} vs {other.alpha}, range "
                f"[{self.min_value}, {self.max_value}] vs "
                f"[{other.min_value}, {other.max_value}]"
            )

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into self (exact: bucket counters add)."""
        self._check_compatible(other)
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._view = None
        self._zeros += other._zeros
        self.count += other.count
        self.clamped += other.clamped
        return self

    def copy(self) -> "QuantileSketch":
        """Independent deep copy."""
        clone = QuantileSketch(self.alpha, self.min_value, self.max_value)
        clone._buckets = dict(self._buckets)
        clone._zeros = self._zeros
        clone.count = self.count
        clone.clamped = self.clamped
        return clone

    def to_dict(self) -> dict:
        """JSON-serializable state (checkpointing and process hops).

        Every data field is an integer counter and bucket keys are
        sorted, so equal sketches serialize identically and merges are
        associative down to the serialized bytes — the byte-identity
        contract of ``--jobs N`` runs.
        """
        return {
            "alpha": self.alpha,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "zeros": self._zeros,
            "count": self.count,
            "clamped": self.clamped,
            "buckets": {
                str(index): self._buckets[index]
                for index in sorted(self._buckets)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        try:
            sketch = cls(
                alpha=payload["alpha"],
                min_value=payload["min_value"],
                max_value=payload["max_value"],
            )
            sketch._zeros = int(payload["zeros"])
            sketch.count = int(payload["count"])
            sketch.clamped = int(payload["clamped"])
            sketch._buckets = {
                int(index): int(count)
                for index, count in payload["buckets"].items()
            }
            sketch._view = None
        except (KeyError, TypeError, ValueError) as error:
            raise SketchError(f"malformed sketch payload: {error}") from None
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self._buckets)})"
        )


def merge_sketches(
    sketches: Sequence[QuantileSketch],
) -> Optional[QuantileSketch]:
    """Merge many sketches into a fresh one (None for an empty list)."""
    merged: Optional[QuantileSketch] = None
    for sketch in sketches:
        if merged is None:
            merged = sketch.copy()
        else:
            merged.merge(sketch)
    return merged
