"""Exporters: Chrome/Perfetto ``trace_event`` JSON, JSONL and Prometheus.

Three interchange formats over one run:

* **Chrome trace** (:func:`spans_to_chrome`) — the span view as complete
  (``"ph": "X"``) events, loadable in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing``. Tracks: one row for the configuration port
  (making DPR serialization visible), one row per slot, one row per
  application for off-board waits.
* **JSONL** (:func:`trace_to_jsonl`) — one raw :class:`TraceEvent` per
  line, for streaming consumers (``jq``, spreadsheets, log shippers).
* **Prometheus text** (:func:`snapshot_to_prometheus`) — a metrics
  snapshot in the text exposition format for scraping/diffing.

All exporters are pure functions of their inputs, so identical runs
export byte-identical artifacts — the CI observability job relies on
this when it diffs serial against parallel metrics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.observe.metrics import to_prometheus
from repro.observe.spans import (
    CATEGORY_DPR,
    CATEGORY_FAULT,
    CATEGORY_WAIT,
    Span,
    build_spans,
    expected_span_count,
)
from repro.sim.trace import Trace

#: Synthetic process id for the single simulated board.
CHROME_PID = 1

#: Thread-id layout of the Chrome trace: the configuration port gets row
#: 0, slot ``i`` gets row ``1 + i``, and per-app wait rows start here.
CHROME_TID_CONFIG_PORT = 0
CHROME_TID_SLOT_BASE = 1
CHROME_TID_WAIT_BASE = 1000


def _chrome_tid(span: Span) -> int:
    if span.category == CATEGORY_DPR:
        return CHROME_TID_CONFIG_PORT
    if span.category == CATEGORY_WAIT:
        return CHROME_TID_WAIT_BASE + (span.app_id or 0)
    return CHROME_TID_SLOT_BASE + (span.slot if span.slot is not None else 0)


def spans_to_chrome(
    spans: Sequence[Span],
    label: str = "nimblock",
    num_slots: Optional[int] = None,
) -> dict:
    """Chrome ``trace_event`` JSON (object format) for a span list.

    Timestamps are microseconds as the format requires; 1 simulated ms
    maps to 1000 ``ts`` units.
    """
    events: List[dict] = [
        {
            "name": "process_name", "ph": "M", "pid": CHROME_PID, "tid": 0,
            "args": {"name": f"FPGA board ({label})"},
        },
        {
            "name": "thread_name", "ph": "M", "pid": CHROME_PID,
            "tid": CHROME_TID_CONFIG_PORT,
            "args": {"name": "config port (CAP)"},
        },
    ]
    slots = sorted(
        {s.slot for s in spans if s.slot is not None}
        | set(range(num_slots or 0))
    )
    for slot in slots:
        events.append({
            "name": "thread_name", "ph": "M", "pid": CHROME_PID,
            "tid": CHROME_TID_SLOT_BASE + slot,
            "args": {"name": f"slot {slot}"},
        })
    for app_id in sorted(
        {s.app_id for s in spans
         if s.category == CATEGORY_WAIT and s.app_id is not None}
    ):
        events.append({
            "name": "thread_name", "ph": "M", "pid": CHROME_PID,
            "tid": CHROME_TID_WAIT_BASE + app_id,
            "args": {"name": f"app {app_id} waiting"},
        })
    for span in spans:
        name = span.name
        if span.task_id is not None:
            name = f"{span.name} {span.task_id}"
            if span.app_id is not None:
                name += f" (app {span.app_id})"
        args: Dict[str, object] = {"ok": span.ok}
        if span.app_id is not None:
            args["app_id"] = span.app_id
        if span.task_id is not None:
            args["task_id"] = span.task_id
        if span.slot is not None:
            args["slot"] = span.slot
        if span.detail is not None:
            args["detail"] = span.detail
        events.append({
            "name": name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_ms * 1000.0,
            "dur": span.duration_ms * 1000.0,
            "pid": CHROME_PID,
            "tid": _chrome_tid(span),
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "spans": len(spans)},
    }


def trace_to_chrome(
    trace: Trace, label: str = "nimblock", num_slots: Optional[int] = None
) -> dict:
    """Convenience: build spans from a trace and export them."""
    return spans_to_chrome(
        build_spans(trace), label=label, num_slots=num_slots
    )


def validate_chrome_trace(payload: dict) -> int:
    """Check a Chrome trace parses as well-formed ``trace_event`` JSON.

    Returns the number of span (``"ph": "X"``) events; raises
    :class:`ExperimentError` on malformed input. Used by the CI
    observability job and the exporter tests.
    """
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise ExperimentError(
            "chrome trace must be an object with a traceEvents list"
        )
    span_events = 0
    for index, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            raise ExperimentError(f"traceEvents[{index}] is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                raise ExperimentError(
                    f"traceEvents[{index}] is missing {field!r}"
                )
        if event["ph"] == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ExperimentError(
                        f"traceEvents[{index}].{field} must be a "
                        f"non-negative number, got {value!r}"
                    )
            span_events += 1
        elif event["ph"] != "M":
            raise ExperimentError(
                f"traceEvents[{index}] has unexpected phase {event['ph']!r}"
            )
    return span_events


def save_chrome_trace(
    trace: Trace,
    path: Union[str, Path],
    label: str = "nimblock",
    num_slots: Optional[int] = None,
) -> Path:
    """Write a Perfetto-loadable Chrome trace for one run; returns path.

    The span count in the payload always matches
    :func:`~repro.observe.spans.expected_span_count` for the trace.
    """
    payload = trace_to_chrome(trace, label=label, num_slots=num_slots)
    assert validate_chrome_trace(payload) == expected_span_count(trace)
    path = Path(path)
    path.write_text(
        json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def trace_to_jsonl(trace: Trace) -> str:
    """One compact JSON object per trace event, newline-delimited."""
    lines = []
    for event in trace:
        record: Dict[str, object] = {
            "time": event.time, "kind": event.kind.value,
        }
        if event.app_id is not None:
            record["app_id"] = event.app_id
        if event.task_id is not None:
            record["task_id"] = event.task_id
        if event.slot is not None:
            record["slot"] = event.slot
        if event.detail is not None:
            record["detail"] = event.detail
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Metrics snapshot in the Prometheus text exposition format.

    The optional ``profile`` section (wall-clock, non-deterministic) is
    appended after a marker comment so deterministic consumers can split
    it off.
    """
    text = to_prometheus(snapshot)
    profile = snapshot.get("profile")
    if profile:
        text += "# profile (wall-clock, non-deterministic)\n"
        text += to_prometheus(profile)
    return text
