"""Metrics registry: counters, gauges and histograms for simulation runs.

A deliberately small, dependency-free subset of the Prometheus data model:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — last-written value;
* :class:`Histogram` — cumulative fixed-bucket distribution with
  ``_count`` / ``_sum``.

Registries serialize to plain-dict **snapshots** (sorted, JSON-friendly)
that merge associatively across parallel workers:
counters and histograms add, gauges take the maximum. Every metric
recorded by :mod:`repro.observe.instrument` is derived from the
deterministic trace stream, so merged snapshots are byte-identical
whatever the worker count — the property the CI determinism job diffs.

Wall-clock profiling values (scheduler-pass decision latency) are kept
under a separate ``profile`` section that is excluded from snapshots by
default precisely because it is *not* deterministic.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets for simulated-millisecond durations.
#: Canonically defined next to the streaming fold both run modes share.
from repro.sim.fold import MS_BUCKETS  # noqa: E402

#: Buckets for scheduler token sums observed at selection time.
TOKEN_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)

#: Buckets for wall-clock decision latency (seconds; profiling only).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1,
)


class MetricError(ReproError):
    """Invalid metric name, type collision or malformed snapshot."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    """Deterministic Prometheus-text rendering of a sample value."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise MetricError(f"counters only go up, got inc({amount})")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "bucket_counts", "count", "sum")

    def __init__(self, buckets: Sequence[float] = MS_BUCKETS) -> None:
        uppers = tuple(float(b) for b in buckets)
        if not uppers or list(uppers) != sorted(set(uppers)):
            raise MetricError(
                f"histogram buckets must be strictly increasing, got {buckets}"
            )
        self.buckets = uppers
        self.bucket_counts = [0] * len(uppers)  # cumulative at export time
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.sum += value
        for index, upper in enumerate(self.buckets):
            if value <= upper:
                self.bucket_counts[index] += 1

    def absorb(self, count: int, total: float, bucket_counts) -> None:
        """Fold pre-aggregated observations (same bucket layout) in."""
        if len(bucket_counts) != len(self.buckets):
            raise MetricError(
                f"cannot absorb {len(bucket_counts)} bucket counts into a "
                f"{len(self.buckets)}-bucket histogram"
            )
        self.count += count
        self.sum += total
        for index, bucketed in enumerate(bucket_counts):
            self.bucket_counts[index] += bucketed


_KINDS = ("counter", "gauge", "histogram")


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge/export support."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Tuple[str, str, object]] = {}

    def _get_or_create(self, name: str, kind: str, help_text: str, factory):
        existing = self._metrics.get(_check_name(name))
        if existing is not None:
            if existing[0] != kind:
                raise MetricError(
                    f"metric {name!r} already registered as {existing[0]}, "
                    f"not {kind}"
                )
            return existing[2]
        metric = factory()
        self._metrics[name] = (kind, help_text, metric)
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Register (or fetch) a counter."""
        return self._get_or_create(name, "counter", help_text, Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Register (or fetch) a gauge."""
        return self._get_or_create(name, "gauge", help_text, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = MS_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a histogram."""
        return self._get_or_create(
            name, "histogram", help_text, lambda: Histogram(buckets)
        )

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict, JSON-friendly view of every metric (sorted keys)."""
        counters: Dict[str, dict] = {}
        gauges: Dict[str, dict] = {}
        histograms: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            kind, help_text, metric = self._metrics[name]
            if kind == "counter":
                counters[name] = {"help": help_text, "value": metric.value}
            elif kind == "gauge":
                gauges[name] = {"help": help_text, "value": metric.value}
            else:
                histograms[name] = {
                    "help": help_text,
                    "buckets": list(metric.buckets),
                    "bucket_counts": list(metric.bucket_counts),
                    "count": metric.count,
                    "sum": metric.sum,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def load_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot's samples into this registry (used by merge)."""
        for name, record in snapshot.get("counters", {}).items():
            self.counter(name, record.get("help", "")).inc(record["value"])
        for name, record in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name, record.get("help", ""))
            gauge.set(max(gauge.value, record["value"]))
        for name, record in snapshot.get("histograms", {}).items():
            histogram = self.histogram(
                name, record.get("help", ""), record["buckets"]
            )
            if list(histogram.buckets) != list(record["buckets"]):
                raise MetricError(
                    f"histogram {name!r} bucket mismatch while merging"
                )
            histogram.count += record["count"]
            histogram.sum += record["sum"]
            for index, bucket_count in enumerate(record["bucket_counts"]):
                histogram.bucket_counts[index] += bucket_count


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Associatively merge worker snapshots into one.

    Counters and histograms add; gauges keep their maximum (a run-final
    reading — e.g. the longest simulated horizon across workers). The
    result is independent of how runs were partitioned over workers, which
    is what makes ``--jobs N`` metrics identical to serial ones.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.load_snapshot(snapshot)
    return merged.snapshot()


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []

    def emit_header(name: str, record: dict, kind: str) -> None:
        if record.get("help"):
            lines.append(f"# HELP {name} {record['help']}")
        lines.append(f"# TYPE {name} {kind}")

    for name, record in snapshot.get("counters", {}).items():
        emit_header(name, record, "counter")
        lines.append(f"{name} {_format_value(record['value'])}")
    for name, record in snapshot.get("gauges", {}).items():
        emit_header(name, record, "gauge")
        lines.append(f"{name} {_format_value(record['value'])}")
    for name, record in snapshot.get("histograms", {}).items():
        emit_header(name, record, "histogram")
        cumulative = 0
        for upper, bucket_count in zip(
            record["buckets"], record["bucket_counts"]
        ):
            cumulative = bucket_count
            lines.append(
                f'{name}_bucket{{le="{_format_value(upper)}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {record["count"]}')
        lines.append(f"{name}_sum {_format_value(record['sum'])}")
        lines.append(f"{name}_count {record['count']}")
    return "\n".join(lines) + "\n"


def quantile_from_histogram(snapshot_record: dict, q: float) -> float:
    """Crude q-quantile estimate from a snapshot histogram record.

    Linear interpolation inside the winning bucket, Prometheus-style;
    returns NaN for an empty histogram.
    """
    if not 0 <= q <= 1:
        raise MetricError(f"quantile must be in [0, 1], got {q}")
    total = snapshot_record["count"]
    if total == 0:
        return float("nan")
    rank = q * total
    previous_upper = 0.0
    previous_cumulative = 0
    for upper, cumulative in zip(
        snapshot_record["buckets"], snapshot_record["bucket_counts"]
    ):
        if cumulative >= rank:
            in_bucket = cumulative - previous_cumulative
            if in_bucket == 0:
                return upper
            fraction = (rank - previous_cumulative) / in_bucket
            return previous_upper + fraction * (upper - previous_upper)
        previous_upper, previous_cumulative = upper, cumulative
    return math.inf
