"""Cross-worker metrics aggregation for parallel experiment sweeps.

One observed run produces one deterministic snapshot (see
:mod:`repro.observe.instrument`); a sweep produces many. This module runs
the (scheduler x sequence) grid — serially or fanned out over the
process-pool executor in :mod:`repro.experiments.parallel` — and merges
the per-run snapshots associatively, so::

    collect_metrics(schedulers, sequences, jobs=1)
    == collect_metrics(schedulers, sequences, jobs=N)

byte-for-byte, for any ``N``. The ``repro stats`` CLI subcommand and the
CI observability job are built directly on this identity.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.faults.models import FaultConfig
from repro.observe.instrument import Instrumentation
from repro.observe.metrics import merge_snapshots
from repro.workload.events import EventSequence

#: One observed-run task: (scheduler, stimulus, faults, platform), plus
#: an optional trailing (admission policy name or None, seed) pair —
#: 4-tuples from older callers run without admission control.
ObservedTask = Tuple[
    str, EventSequence, Optional[FaultConfig], Optional[SystemConfig]
]


def observed_run(
    scheduler_name: str,
    sequence: EventSequence,
    fault_config: Optional[FaultConfig] = None,
    config: Optional[SystemConfig] = None,
    profile: bool = False,
    mode: str = "full",
    admission: Optional[str] = None,
    seed: int = 0,
) -> Tuple["Hypervisor", "Instrumentation"]:
    """Run one sequence with instrumentation attached.

    Returns the finished hypervisor (trace, results and timing intact)
    and the finalized :class:`Instrumentation` (its registry already
    includes the folded trace metrics). Attaching the observer never
    changes simulation behaviour — the trace and results are
    byte-identical to an unobserved run.

    ``admission`` attaches an admission controller (plus a watchdog, the
    overload-tier pairing every other harness uses), which populates the
    overload/shed/watchdog counters in the snapshot; shed or dropped
    applications then legally reduce the retired count.
    """
    from repro.faults.injector import FaultInjector
    from repro.hypervisor.hypervisor import Hypervisor
    from repro.schedulers.registry import make_scheduler

    injector = None
    if fault_config is not None and fault_config.enabled:
        injector = FaultInjector(fault_config)
    controller = None
    watchdog = None
    if admission is not None:
        from repro.admission import AdmissionController, Watchdog

        controller = AdmissionController(admission, seed=seed)
        watchdog = Watchdog()
    observer = Instrumentation(profile=profile)
    hypervisor = Hypervisor(
        make_scheduler(scheduler_name), config=config,
        faults=injector, admission=controller, watchdog=watchdog,
        observer=observer, mode=mode,
    )
    for request in sequence.to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    if not hypervisor.all_retired:
        raise ExperimentError(
            f"scheduler {scheduler_name!r} failed to retire all "
            f"applications on sequence {sequence.label!r}"
        )
    observer.finalize(hypervisor)
    return hypervisor, observer


def collect_snapshots(
    schedulers: Sequence[str],
    sequences: Sequence[EventSequence],
    fault_config: Optional[FaultConfig] = None,
    config: Optional[SystemConfig] = None,
    jobs: Optional[int] = None,
    admission: Optional[str] = None,
    seed: int = 0,
) -> List[dict]:
    """One deterministic snapshot per (scheduler, sequence) cell.

    Cells fan out over ``jobs`` worker processes; results come back in
    grid order (schedulers outer, sequences inner) regardless of the
    worker count.
    """
    from repro.experiments import parallel

    tasks: List[ObservedTask] = [
        # Keep the 4-tuple shape unless admission is requested, so
        # pickled tasks stay compatible with older workers.
        (name, sequence, fault_config, config) if admission is None
        else (name, sequence, fault_config, config, admission, seed)
        for name in schedulers
        for sequence in sequences
    ]
    return parallel.observed_snapshots(tasks, jobs=jobs)


def collect_metrics(
    schedulers: Sequence[str],
    sequences: Sequence[EventSequence],
    fault_config: Optional[FaultConfig] = None,
    config: Optional[SystemConfig] = None,
    jobs: Optional[int] = None,
    admission: Optional[str] = None,
    seed: int = 0,
) -> dict:
    """Merged metrics snapshot over the whole (scheduler x sequence) grid.

    Independent of ``jobs`` by construction: per-cell snapshots are pure
    functions of their inputs and the merge is associative in grid order.
    """
    return merge_snapshots(collect_snapshots(
        schedulers, sequences,
        fault_config=fault_config, config=config, jobs=jobs,
        admission=admission, seed=seed,
    ))
