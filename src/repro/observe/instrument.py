"""Run instrumentation: live hooks plus post-run trace folding.

Two complementary pieces:

* :class:`Instrumentation` — the observer object a
  :class:`~repro.hypervisor.hypervisor.Hypervisor` (and its
  :class:`~repro.sim.engine.SimulationEngine`) call into while the run is
  live. The hooks are deliberately tiny — a token reading per scheduler
  pass, an integer bump per engine event — and the hypervisor guards every
  call site with ``if self.observer is not None``, so a run without an
  observer executes **zero** observability code (the overhead-guard bench
  and the lazy-import test pin this down).
* :func:`observe_run` — folds a *finished* run's trace, fault counters and
  engine diagnostics into a :class:`~repro.observe.metrics.MetricsRegistry`.
  Everything it records derives from the deterministic trace stream, so
  snapshots are reproducible and merge byte-identically across parallel
  workers.

Wall-clock scheduler-pass latency (the one genuinely non-deterministic
signal) is only collected when ``profile=True`` and lives in a separate
``profile`` section so it can never contaminate determinism-checked
output.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.observe.metrics import (
    LATENCY_BUCKETS_S,
    MS_BUCKETS,
    MetricsRegistry,
    TOKEN_BUCKETS,
)
from repro.sim.fold import fold_rows
from repro.sim.trace import TraceKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hypervisor.hypervisor import Hypervisor


class Instrumentation:
    """Observer installed into a hypervisor via ``Hypervisor(observer=...)``.

    Example
    -------
    >>> from repro import Hypervisor, make_scheduler
    >>> from repro.observe import Instrumentation
    >>> obs = Instrumentation()
    >>> hv = Hypervisor(make_scheduler("nimblock"), observer=obs)
    >>> # ... submit + run ...
    >>> snapshot = obs.finalize(hv)  # doctest: +SKIP
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        profile: bool = False,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.profile = bool(profile)
        #: Wall-clock samples live apart from the deterministic registry.
        self.profile_registry = MetricsRegistry()
        self.engine_events = 0
        self._tokens = self.registry.histogram(
            "nimblock_tokens_at_selection",
            "Sum of pending applications' scheduling tokens at each "
            "scheduler pass",
            TOKEN_BUCKETS,
        )
        self._pending_apps = self.registry.histogram(
            "nimblock_pending_apps_at_selection",
            "Pending (unretired) applications at each scheduler pass",
            TOKEN_BUCKETS,
        )
        self._pass_latency = self.profile_registry.histogram(
            "nimblock_pass_decision_seconds",
            "Wall-clock latency of one scheduler pass (non-deterministic; "
            "profiling only)",
            LATENCY_BUCKETS_S,
        )

    # -- hypervisor-facing hooks ------------------------------------------
    def pass_started(self) -> Optional[float]:
        """Called as a scheduler pass begins; returns a profiling token."""
        return time.perf_counter() if self.profile else None

    def pass_finished(
        self, hypervisor: "Hypervisor", now: float, started: Optional[float]
    ) -> None:
        """Called after a pass's decisions and item launches completed."""
        tokens = 0.0
        pending = 0
        for app in hypervisor.pending.in_arrival_order():
            tokens += app.token
            pending += 1
        self._tokens.observe(tokens)
        self._pending_apps.observe(float(pending))
        if started is not None:
            self._pass_latency.observe(time.perf_counter() - started)

    # -- engine-facing hook ------------------------------------------------
    def on_engine_event(self, now: float) -> None:
        """Called by the simulation engine once per executed event."""
        self.engine_events += 1

    # -- results -----------------------------------------------------------
    def finalize(self, hypervisor: "Hypervisor") -> dict:
        """Fold the finished run into the registry; returns a snapshot."""
        observe_run(hypervisor, self.registry)
        return self.snapshot()

    def snapshot(self, include_profile: bool = False) -> dict:
        """Deterministic snapshot; ``include_profile`` adds wall-clock data."""
        snapshot = self.registry.snapshot()
        if include_profile:
            snapshot["profile"] = self.profile_registry.snapshot()
        return snapshot


def observe_run(
    hypervisor: "Hypervisor",
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold one finished run into a metrics registry.

    Usable standalone on any completed hypervisor (no live observer
    needed) — every value below is a pure function of the trace stream,
    the fault counters and the engine's event count, in either run mode
    (``mode="metrics"`` snapshots equal full-mode folds exactly).
    """
    registry = registry or MetricsRegistry()
    trace = hypervisor.trace
    config = hypervisor.config
    stats = hypervisor.fault_stats

    def count(kind: TraceKind) -> int:
        return trace.count(kind)

    counters = (
        ("nimblock_apps_arrived_total",
         "Applications submitted to the hypervisor",
         count(TraceKind.APP_ARRIVED)),
        ("nimblock_apps_started_total",
         "Applications whose first batch item began executing",
         count(TraceKind.APP_STARTED)),
        ("nimblock_apps_retired_total",
         "Applications that completed every task",
         count(TraceKind.APP_RETIRED)),
        ("nimblock_items_completed_total",
         "Batch items that ran to completion",
         count(TraceKind.ITEM_DONE)),
        ("nimblock_preemptions_total",
         "Batch-boundary preemptions",
         count(TraceKind.TASK_PREEMPTED)),
        ("nimblock_resumes_total",
         "Previously preempted/evicted tasks reconfigured back onto the "
         "board",
         count(TraceKind.TASK_RESUMED)),
        ("nimblock_dpr_total",
         "Partial reconfigurations started (config-port acquisitions)",
         count(TraceKind.TASK_CONFIG_START)),
        ("nimblock_dpr_completed_total",
         "Partial reconfigurations that completed successfully",
         count(TraceKind.TASK_CONFIG_DONE)),
        ("nimblock_dpr_failed_total",
         "Partial reconfigurations aborted by injected faults",
         count(TraceKind.CONFIG_FAILED)),
        ("nimblock_scheduler_passes_total",
         "Scheduler passes executed",
         hypervisor.scheduler_passes),
        ("nimblock_engine_events_total",
         "Discrete events executed by the simulation engine",
         hypervisor.engine.processed),
        ("nimblock_slot_faults_total",
         "Slot faults injected (transient + permanent)",
         count(TraceKind.SLOT_FAULT)),
        ("nimblock_slot_repairs_total",
         "Transiently faulted slots scrubbed back to health",
         count(TraceKind.SLOT_REPAIRED)),
        ("nimblock_faults_transient_total",
         "Transient (SEU-style) slot faults",
         stats.transient_faults),
        ("nimblock_faults_permanent_total",
         "Permanent slot failures (blacklisted regions)",
         stats.permanent_faults),
        ("nimblock_fault_evictions_total",
         "Resident tasks evicted by slot faults",
         stats.evictions),
        ("nimblock_relocations_total",
         "Evicted tasks re-placed on a different slot",
         count(TraceKind.TASK_RELOCATED)),
        ("nimblock_items_lost_total",
         "In-flight batch items killed by slot faults",
         stats.items_lost),
        ("nimblock_work_lost_ms_total",
         "Simulated work destroyed by faults (partial items + wasted CAP "
         "time)",
         stats.work_lost_ms),
        ("nimblock_apps_rejected_total",
         "Admission rejections (retried attempts and final drops)",
         count(TraceKind.APP_REJECTED)),
        ("nimblock_apps_shed_total",
         "Pending applications evicted by the shed policy",
         count(TraceKind.APP_SHED)),
        ("nimblock_overload_windows_total",
         "Overload windows entered by the admission controller",
         count(TraceKind.OVERLOAD_ENTER)),
        ("nimblock_watchdog_stalls_total",
         "Stall/starvation detections fired by the watchdog",
         count(TraceKind.WATCHDOG_STALL)),
        ("nimblock_watchdog_kicks_total",
         "Recovery actions (detach kicks, token boosts) by the watchdog",
         count(TraceKind.WATCHDOG_KICK)),
        ("nimblock_replay_hits_total",
         "Arrivals satisfied by the macro-event replay cache",
         getattr(getattr(hypervisor, "_replay", None), "hits", 0)),
        ("nimblock_replay_misses_total",
         "Arrivals that fell through the replay cache to live simulation",
         getattr(getattr(hypervisor, "_replay", None), "misses", 0)),
    )
    # Detector raw inputs (repro.autotune): overload edge/duration
    # counters from the admission controller and the watchdog's split
    # detection/recovery counters. All zero (but present, for a stable
    # schema) when no admission controller or watchdog is attached.
    admission = getattr(hypervisor, "admission", None)
    admission_stats = admission.stats if admission is not None else None
    watchdog = getattr(hypervisor, "watchdog", None)
    counters += (
        ("nimblock_overload_enters_total",
         "OVERLOAD_ENTER edges, including a still-open overload window",
         0 if admission_stats is None else admission_stats.overload_enters),
        ("nimblock_overload_exits_total",
         "OVERLOAD_EXIT edges (completed overload windows)",
         count(TraceKind.OVERLOAD_EXIT)),
        ("nimblock_overload_ms_total",
         "Simulated time under overload (closed windows plus the open "
         "window up to the run horizon)",
         0.0 if admission is None
         else admission.overload_total_ms(hypervisor.engine.now)),
        ("nimblock_watchdog_stalls_detected_total",
         "Global stall episodes the watchdog detected",
         getattr(watchdog, "stalls_detected", 0)),
        ("nimblock_watchdog_stall_kicks_total",
         "Detach kicks issued against detected stalls",
         getattr(watchdog, "stall_kicks", 0)),
        ("nimblock_watchdog_starvations_detected_total",
         "Per-app starvation episodes the watchdog detected",
         getattr(watchdog, "starvations_detected", 0)),
        ("nimblock_watchdog_starvation_boosts_total",
         "Token boosts issued against detected starvations",
         getattr(watchdog, "starvation_boosts", 0)),
    )
    shed_by_priority = (
        {} if admission_stats is None
        else admission_stats.shed_by_priority
    )
    counters += tuple(
        (f"nimblock_apps_shed_priority{priority}_total",
         f"Applications of priority {priority} evicted by load shedding",
         shed_by_priority.get(priority, 0))
        for priority in config.priority_levels
    )
    for name, help_text, value in counters:
        registry.counter(name, help_text).inc(float(value))

    # Interval metrics come from the streaming fold shared by both run
    # modes: a metrics-mode trace carries one fed live by ``record``; a
    # full-mode trace replays its stored rows through the identical code
    # in the identical order, so the two snapshots agree bit-for-bit
    # (including float sums). See repro.sim.fold.
    horizon = trace.end_ms if len(trace) else 0.0
    fold = getattr(trace, "fold", None)
    if fold is None:
        fold = fold_rows(trace._rows)
    folded = fold.aggregates(horizon)

    registry.histogram(
        "nimblock_dpr_duration_ms",
        "Duration of each partial reconfiguration (config-port hold time)",
        MS_BUCKETS,
    ).absorb(folded.dpr.count, folded.dpr.sum, folded.dpr.bucket_counts)
    registry.histogram(
        "nimblock_item_duration_ms",
        "Execution time of each batch item",
        MS_BUCKETS,
    ).absorb(folded.item.count, folded.item.sum, folded.item.bucket_counts)
    registry.histogram(
        "nimblock_wait_duration_ms",
        "Off-board wait of each preempted/evicted task until resumption",
        MS_BUCKETS,
    ).absorb(folded.wait.count, folded.wait.sum, folded.wait.bucket_counts)
    recovery = folded.recovery
    registry.histogram(
        "nimblock_recovery_ms",
        "Fault-to-recovery intervals (slot repairs and DPR retries)",
        MS_BUCKETS,
    ).absorb(recovery.count, recovery.sum, recovery.bucket_counts)

    registry.counter(
        "nimblock_dpr_busy_ms_total",
        "Total simulated time the configuration port was held",
    ).inc(folded.dpr_busy_ms)
    registry.counter(
        "nimblock_compute_busy_ms_total",
        "Total simulated slot-busy time across batch items",
    ).inc(folded.compute_busy_ms)

    registry.gauge(
        "nimblock_sim_time_ms", "Simulated horizon of the run",
    ).set(horizon)
    registry.gauge(
        "nimblock_slots", "Reconfigurable slots on the platform",
    ).set(config.num_slots)
    registry.gauge(
        "nimblock_slots_busy_peak",
        "Peak number of slots executing items simultaneously",
    ).set(folded.peak_compute)
    if horizon > 0 and config.num_slots > 0:
        registry.gauge(
            "nimblock_slot_utilization_ratio",
            "Slot-time fraction spent executing items (allocated vs used)",
        ).set(folded.compute_busy_ms / (config.num_slots * horizon))
    if recovery.count:
        registry.gauge(
            "nimblock_mttr_ms",
            "Mean time to recovery over every observed recovery edge",
        ).set(recovery.sum / recovery.count)
    return registry


def snapshot_run(hypervisor: "Hypervisor") -> dict:
    """One-call deterministic metrics snapshot of a finished run."""
    return observe_run(hypervisor).snapshot()
