"""Observability layer over the hypervisor trace stream (``repro.observe``).

The paper's entire evaluation is post-processed from traces; this package
makes a run *watchable* the way a production multi-tenant scheduler needs:

* :mod:`repro.observe.spans` — fold paired trace kinds into per-slot /
  per-app spans (DPR config-port holds, batch items, preemption waits,
  fault outages);
* :mod:`repro.observe.metrics` — counters / gauges / histograms with
  deterministic snapshots that merge associatively across workers;
* :mod:`repro.observe.instrument` — the live hypervisor/engine hook
  (zero cost when absent) plus post-run trace folding;
* :mod:`repro.observe.exporters` — Chrome/Perfetto ``trace_event`` JSON,
  JSONL, Prometheus text;
* :mod:`repro.observe.aggregate` — sweep-level metric collection that is
  byte-identical at any ``--jobs`` count.

The snapshot-merge contract here (integer counters only, associative and
order-independent merges) is shared by the service tier's windowed SLO
metrics (``repro.service.WindowedMetrics`` / ``QuantileSketch``); see
``docs/service.md``.

CLI: ``nimblock-repro trace`` (span export) and ``nimblock-repro stats``
(metrics export). See ``docs/observability.md``.
"""

from repro.observe.aggregate import (
    collect_metrics,
    collect_snapshots,
    observed_run,
)
from repro.observe.exporters import (
    save_chrome_trace,
    snapshot_to_prometheus,
    spans_to_chrome,
    trace_to_chrome,
    trace_to_jsonl,
    validate_chrome_trace,
)
from repro.observe.instrument import (
    Instrumentation,
    observe_run,
    snapshot_run,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    merge_snapshots,
    quantile_from_histogram,
    to_prometheus,
)
from repro.observe.spans import (
    Span,
    build_spans,
    config_port_busy_ms,
    expected_span_count,
    spans_by_category,
)

__all__ = [
    "collect_metrics",
    "collect_snapshots",
    "observed_run",
    "save_chrome_trace",
    "snapshot_to_prometheus",
    "spans_to_chrome",
    "trace_to_chrome",
    "trace_to_jsonl",
    "validate_chrome_trace",
    "Instrumentation",
    "observe_run",
    "snapshot_run",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "merge_snapshots",
    "quantile_from_histogram",
    "to_prometheus",
    "Span",
    "build_spans",
    "config_port_busy_ms",
    "expected_span_count",
    "spans_by_category",
]
