"""Span builder: fold the flat trace stream into timed intervals.

The hypervisor emits point events; everything the evaluation *reads* off a
run, however, is an interval — how long a partial reconfiguration held the
configuration port, how long a batch item occupied a slot, how long a
preempted task waited before it was resumed, how long a slot was out of
service after a fault. :func:`build_spans` reconstructs those intervals by
pairing the matching :class:`~repro.sim.trace.TraceKind` edges:

===================  ==========================================  ===========
span ``name``        opened by / closed by                        category
===================  ==========================================  ===========
``dpr``              TASK_CONFIG_START → TASK_CONFIG_DONE         ``dpr``
``dpr`` (failed)     TASK_CONFIG_START → CONFIG_FAILED            ``dpr``
``item``             ITEM_START → ITEM_DONE (or SLOT_FAULT)       ``compute``
``preempted``        TASK_PREEMPTED → TASK_RESUMED                ``wait``
``evicted``          SLOT_FAULT (occupied) → TASK_RESUMED         ``wait``
``slot-fault``       SLOT_FAULT → SLOT_REPAIRED                   ``fault``
===================  ==========================================  ===========

Because every reconfiguration serializes through the single configuration
access port (CAP), the ``dpr`` spans never overlap — rendering them on one
timeline row (see :mod:`repro.observe.exporters`) makes the port contention
the paper discusses directly visible.

Spans still open when the trace ends (a dead slot, a task never resumed)
are closed at the trace horizon with ``ok=False`` so nothing is silently
dropped; :func:`expected_span_count` states the exact span count implied
by a trace's event kinds, which the exporters and tests check against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import Trace, TraceKind

#: Category labels used by the span builder (stable exporter vocabulary).
CATEGORY_DPR = "dpr"
CATEGORY_COMPUTE = "compute"
CATEGORY_WAIT = "wait"
CATEGORY_FAULT = "fault"


@dataclass(frozen=True)
class Span:
    """One reconstructed interval of board or application activity."""

    name: str
    category: str
    start_ms: float
    end_ms: float
    slot: Optional[int] = None
    app_id: Optional[int] = None
    task_id: Optional[str] = None
    #: False when the interval ended abnormally (failed reconfiguration,
    #: item killed by a slot fault, never-repaired slot, never-resumed
    #: task) or was still open at the trace horizon.
    ok: bool = True
    #: Carried payload of the opening event (batch-item index for items,
    #: items completed at preemption for waits, work lost for faults).
    detail: Optional[float] = None

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise ValueError(
                f"span {self.name!r} ends at {self.end_ms} before it "
                f"starts at {self.start_ms}"
            )

    @property
    def duration_ms(self) -> float:
        """Length of the interval in simulated milliseconds."""
        return self.end_ms - self.start_ms


def _sort_key(span: Span) -> Tuple:
    return (
        span.start_ms,
        span.end_ms,
        span.category,
        span.name,
        -1 if span.slot is None else span.slot,
        -1 if span.app_id is None else span.app_id,
        span.task_id or "",
    )


def build_spans(trace: Trace, end_ms: Optional[float] = None) -> List[Span]:
    """Fold a trace into its interval view.

    ``end_ms`` sets the horizon used to close still-open spans; it
    defaults to the last event's timestamp. The result is sorted by
    ``(start, end, category, ...)`` and is a pure function of the trace,
    so identical runs yield identical span lists.
    """
    spans: List[Span] = []
    horizon = end_ms
    if horizon is None:
        horizon = trace.end_ms if len(trace) else 0.0

    # Open interval bookkeeping, keyed to match the closing event.
    open_configs: Dict[Tuple, float] = {}
    open_items: Dict[Tuple, Tuple[float, Optional[float]]] = {}
    open_waits: Dict[Tuple, Tuple[float, str, Optional[int], Optional[float]]] = {}
    open_faults: Dict[int, Tuple[float, Optional[float]]] = {}

    for event in trace:
        kind = event.kind
        if kind == TraceKind.TASK_CONFIG_START:
            open_configs[(event.app_id, event.task_id, event.slot)] = event.time
        elif kind in (TraceKind.TASK_CONFIG_DONE, TraceKind.CONFIG_FAILED):
            key = (event.app_id, event.task_id, event.slot)
            started = open_configs.pop(key, None)
            if started is not None:
                spans.append(Span(
                    name="dpr", category=CATEGORY_DPR,
                    start_ms=started, end_ms=event.time,
                    slot=event.slot, app_id=event.app_id,
                    task_id=event.task_id,
                    ok=kind == TraceKind.TASK_CONFIG_DONE,
                    detail=event.detail,
                ))
        elif kind == TraceKind.ITEM_START:
            key = (event.app_id, event.task_id, event.slot)
            open_items[key] = (event.time, event.detail)
        elif kind == TraceKind.ITEM_DONE:
            key = (event.app_id, event.task_id, event.slot)
            opened = open_items.pop(key, None)
            if opened is not None:
                started, item = opened
                spans.append(Span(
                    name="item", category=CATEGORY_COMPUTE,
                    start_ms=started, end_ms=event.time,
                    slot=event.slot, app_id=event.app_id,
                    task_id=event.task_id, ok=True, detail=item,
                ))
        elif kind == TraceKind.TASK_PREEMPTED:
            open_waits[(event.app_id, event.task_id)] = (
                event.time, "preempted", event.slot, event.detail,
            )
        elif kind == TraceKind.TASK_RESUMED:
            opened = open_waits.pop((event.app_id, event.task_id), None)
            if opened is not None:
                started, name, slot, detail = opened
                spans.append(Span(
                    name=name, category=CATEGORY_WAIT,
                    start_ms=started, end_ms=event.time,
                    slot=slot, app_id=event.app_id,
                    task_id=event.task_id, ok=True, detail=detail,
                ))
        elif kind == TraceKind.SLOT_FAULT:
            if event.slot is not None:
                # A fault mid-item kills the in-flight item: close its
                # compute span abnormally at the fault instant.
                for key in list(open_items):
                    if key[2] == event.slot:
                        started, item = open_items.pop(key)
                        spans.append(Span(
                            name="item", category=CATEGORY_COMPUTE,
                            start_ms=started, end_ms=event.time,
                            slot=event.slot, app_id=key[0],
                            task_id=key[1], ok=False, detail=item,
                        ))
                open_faults[event.slot] = (event.time, event.detail)
            if event.app_id is not None:
                open_waits[(event.app_id, event.task_id)] = (
                    event.time, "evicted", event.slot, event.detail,
                )
        elif kind == TraceKind.SLOT_REPAIRED:
            if event.slot is not None:
                opened = open_faults.pop(event.slot, None)
                if opened is not None:
                    started, detail = opened
                    spans.append(Span(
                        name="slot-fault", category=CATEGORY_FAULT,
                        start_ms=started, end_ms=event.time,
                        slot=event.slot, ok=True, detail=detail,
                    ))

    # Close whatever never paired up at the horizon, abnormally.
    for (app_id, task_id, slot), started in open_configs.items():
        spans.append(Span(
            name="dpr", category=CATEGORY_DPR,
            start_ms=started, end_ms=max(horizon, started),
            slot=slot, app_id=app_id, task_id=task_id, ok=False,
        ))
    for (app_id, task_id, slot), (started, item) in open_items.items():
        spans.append(Span(
            name="item", category=CATEGORY_COMPUTE,
            start_ms=started, end_ms=max(horizon, started),
            slot=slot, app_id=app_id, task_id=task_id, ok=False,
            detail=item,
        ))
    for (app_id, task_id), (started, name, slot, detail) in open_waits.items():
        spans.append(Span(
            name=name, category=CATEGORY_WAIT,
            start_ms=started, end_ms=max(horizon, started),
            slot=slot, app_id=app_id, task_id=task_id, ok=False,
            detail=detail,
        ))
    for slot, (started, detail) in open_faults.items():
        spans.append(Span(
            name="slot-fault", category=CATEGORY_FAULT,
            start_ms=started, end_ms=max(horizon, started),
            slot=slot, ok=False, detail=detail,
        ))

    spans.sort(key=_sort_key)
    return spans


def expected_span_count(trace: Trace) -> int:
    """Span count implied by the trace's event kinds.

    Every interval is opened by exactly one event: a reconfiguration by
    ``TASK_CONFIG_START``, an item by ``ITEM_START``, a wait by
    ``TASK_PREEMPTED`` or by a ``SLOT_FAULT`` that evicted a resident
    task, and a slot outage by ``SLOT_FAULT``. The builder closes every
    opened interval (at its pairing event or the horizon), so this count
    equals ``len(build_spans(trace))`` — the exporter tests and the CI
    trace-validation job rely on that identity.
    """
    count = 0
    for event in trace:
        if event.kind in (TraceKind.TASK_CONFIG_START, TraceKind.ITEM_START,
                          TraceKind.TASK_PREEMPTED):
            count += 1
        elif event.kind == TraceKind.SLOT_FAULT:
            if event.slot is not None:
                count += 1
            if event.app_id is not None:
                count += 1
    return count


def spans_by_category(spans: List[Span]) -> Dict[str, List[Span]]:
    """Group spans by category, preserving order."""
    grouped: Dict[str, List[Span]] = {}
    for span in spans:
        grouped.setdefault(span.category, []).append(span)
    return grouped


def config_port_busy_ms(spans: List[Span]) -> float:
    """Total time the configuration port was held by DPR spans."""
    return sum(s.duration_ms for s in spans if s.category == CATEGORY_DPR)
