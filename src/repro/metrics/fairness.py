"""Fairness metrics over per-event normalized responses.

Used by the extension analyses to quantify what the paper only gestures
at: FCFS/RR "are unable to fairly balance allocations". Jain's fairness
index over per-event speedups is 1.0 when every application benefits
equally from sharing and approaches ``1/n`` when one application takes
the entire benefit.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ExperimentError
from repro.hypervisor.results import AppResult
from repro.metrics.response import reduction_factors


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2)."""
    if not values:
        raise ExperimentError("cannot compute fairness of no values")
    if any(v < 0 for v in values):
        raise ExperimentError("fairness values must be >= 0")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        raise ExperimentError("fairness undefined for all-zero values")
    return (total * total) / (len(values) * squares)


def sharing_fairness(
    baseline: Sequence[AppResult], other: Sequence[AppResult]
) -> float:
    """Jain index over per-event response-time reduction factors.

    1.0 means the sharing algorithm sped every event up by the same
    factor; low values mean the benefit concentrated on a few events.
    """
    return jain_index(reduction_factors(baseline, other))


def priority_speedups(
    baseline: Sequence[AppResult], other: Sequence[AppResult]
) -> Dict[int, float]:
    """Mean per-event reduction factor per priority class."""
    from repro.metrics.response import match_results

    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for base, result in match_results(baseline, other):
        factor = base.response_ms / result.response_ms
        sums[result.priority] = sums.get(result.priority, 0.0) + factor
        counts[result.priority] = counts.get(result.priority, 0) + 1
    return {
        priority: sums[priority] / counts[priority] for priority in sums
    }
