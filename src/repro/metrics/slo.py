"""Overload / SLO metrics for admission-controlled runs (repro.admission).

Everything derives from the trace and the retired-application results, so
overload studies remain post-processable without re-simulation — the same
contract the reliability metrics keep for chaos runs:

* **admission ratio** — admitted / submitted arrivals. ``APP_REJECTED``
  events with a negative ``detail`` mark final drops; positive details are
  retried attempts and do not lower the ratio by themselves;
* **shed rate** — applications evicted by the shed policy per second of
  trace span (``APP_SHED`` events);
* **goodput under overload** — useful batch items completed *inside*
  ``OVERLOAD_ENTER``/``OVERLOAD_EXIT`` windows, per second of overload
  time. Falls back to whole-run goodput when the run never entered
  overload (so the 1x baseline cell stays comparable);
* **starvation index** — the ratio of the worst pending wait to the mean
  response, a dimensionless "how unfair was the tail" figure; 1.0 means
  the slowest app waited about as long as the average app took end to
  end;
* **p99 response by priority** — the acceptance-criterion quantity: under
  overload, protection policies must keep the high-priority p99 close to
  the uncongested run while unbounded queues let it blow up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AdmissionError
from repro.hypervisor.results import AppResult
from repro.metrics.response import percentile
from repro.sim.trace import Trace, TraceKind


@dataclass(frozen=True)
class SloTarget:
    """A service-level objective for the online service tier.

    Two-dimensional on purpose: a latency bound alone is gameable (shed
    everything and the survivors are fast), a loss bound alone ignores
    responsiveness. A run — or one tumbling window of one — *meets* the
    target only if the p99 response stays at or under ``p99_ms`` **and**
    the fraction of arrivals lost to shedding/dropping stays at or under
    ``max_loss_frac``. The capacity study (``ext-service``) reports, per
    scheduler and admission policy, the highest sustained arrival rate
    whose whole run meets this target.
    """

    #: The 99th-percentile response bound, ms.
    p99_ms: float = 30_000.0
    #: Maximum tolerated (shed + dropped) / arrived fraction.
    max_loss_frac: float = 0.05

    def __post_init__(self) -> None:
        if self.p99_ms <= 0:
            raise AdmissionError(f"p99_ms must be > 0, got {self.p99_ms}")
        if not 0.0 <= self.max_loss_frac <= 1.0:
            raise AdmissionError(
                f"max_loss_frac must be in [0, 1], got {self.max_loss_frac}"
            )

    def met(self, p99_ms: float, loss_frac: float) -> bool:
        """True if both SLO dimensions hold (NaN p99 = nothing completed
        = the latency dimension fails unless nothing was lost either and
        there was simply no traffic; callers pass NaN only for non-empty
        windows, so NaN fails here)."""
        if math.isnan(p99_ms):
            return False
        return p99_ms <= self.p99_ms and loss_frac <= self.max_loss_frac

    def describe(self) -> str:
        """One-line human-readable form."""
        return (
            f"p99<={self.p99_ms:g}ms, loss<={100.0 * self.max_loss_frac:g}%"
        )


#: Default target of the service capacity study.
DEFAULT_SERVICE_SLO = SloTarget()


def admission_ratio(trace: Trace) -> float:
    """Fraction of submitted applications that were finally admitted.

    Final drops are ``APP_REJECTED`` events with ``detail < 0`` (the
    controller negates the attempt count when it gives up); transient
    rejections that later retried successfully do not count against the
    ratio. A trace with no arrivals reports 1.0 (vacuously fine).
    """
    arrivals = trace.count(TraceKind.APP_ARRIVED)
    drops = sum(
        1 for event in trace
        if event.kind is TraceKind.APP_REJECTED
        and (event.detail or 0) < 0
    )
    submitted = arrivals + drops
    if submitted <= 0:
        return 1.0
    return arrivals / submitted


def shed_rate_per_s(trace: Trace) -> float:
    """Applications shed per second of trace span."""
    shed = trace.count(TraceKind.APP_SHED)
    if not len(trace):
        return 0.0
    span_ms = trace.end_ms - trace.start_ms
    if span_ms <= 0:
        return 0.0
    return shed / (span_ms / 1000.0)


def overload_windows(trace: Trace) -> List[Tuple[float, float]]:
    """``(enter, exit)`` times of every overload window, in trace order.

    A window still open when the trace ends is closed at ``trace.end_ms``.
    """
    windows: List[Tuple[float, float]] = []
    opened: Optional[float] = None
    for event in trace:
        if event.kind is TraceKind.OVERLOAD_ENTER:
            if opened is None:
                opened = event.time
        elif event.kind is TraceKind.OVERLOAD_EXIT:
            if opened is not None:
                windows.append((opened, event.time))
                opened = None
    if opened is not None:
        windows.append((opened, trace.end_ms))
    return windows


def goodput_under_overload(trace: Trace) -> float:
    """Useful items per second completed while overload was active.

    Runs that never entered overload fall back to whole-run goodput, so
    uncongested baseline cells remain directly comparable.
    """
    windows = overload_windows(trace)
    if not windows:
        from repro.metrics.reliability import goodput_items_per_s
        return goodput_items_per_s(trace)
    total_ms = sum(end - start for start, end in windows)
    if total_ms <= 0:
        return 0.0
    items = 0
    for event in trace:
        if event.kind is not TraceKind.ITEM_DONE:
            continue
        if any(start <= event.time <= end for start, end in windows):
            items += 1
    return items / (total_ms / 1000.0)


def starvation_index(results: Sequence[AppResult]) -> float:
    """Worst queueing wait over mean response: the unfairness tail.

    0.0 when nothing retired (or responses are degenerate); values well
    above 1.0 mean some application waited far longer than the typical
    end-to-end response — the signature of starvation under overload.
    """
    if not results:
        return 0.0
    responses = [r.response_ms for r in results if r.response_ms > 0]
    if not responses:
        return 0.0
    mean_response = sum(responses) / len(responses)
    worst_wait = max(r.wait_ms for r in results)
    if mean_response <= 0:
        return 0.0
    return worst_wait / mean_response


def responses_by_priority(
    results: Sequence[AppResult],
) -> Dict[int, List[float]]:
    """Response times grouped by arrival priority."""
    grouped: Dict[int, List[float]] = {}
    for result in results:
        grouped.setdefault(result.priority, []).append(result.response_ms)
    return grouped


def p99_response_ms(
    results: Sequence[AppResult], priority: Optional[int] = None
) -> float:
    """p99 response time, optionally restricted to one priority class.

    Returns NaN when no retired application matches — overload cells where
    every high-priority app was dropped must surface as NaN, not crash.
    """
    values = [
        r.response_ms
        for r in results
        if priority is None or r.priority == priority
    ]
    if not values:
        return float("nan")
    return percentile(values, 99.0)


@dataclass(frozen=True)
class SloReport:
    """Trace+results SLO summary of one admission-controlled run."""

    admission_ratio: float
    rejections: int
    drops: int
    shed: int
    overload_windows: int
    overload_ms: float
    goodput_under_overload: float
    starvation_index: float
    p99_response_ms: float
    watchdog_stalls: int
    watchdog_kicks: int

    def format(self) -> str:
        """One-line human-readable summary."""
        return (
            f"admit={self.admission_ratio:.3f} drops={self.drops} "
            f"shed={self.shed} overload={self.overload_ms:.0f}ms"
            f"/{self.overload_windows}w "
            f"goodput={self.goodput_under_overload:.2f} items/s "
            f"starvation={self.starvation_index:.2f} "
            f"p99={self.p99_response_ms:.0f}ms "
            f"watchdog={self.watchdog_stalls}/{self.watchdog_kicks}"
        )


def slo_report(trace: Trace, results: Sequence[AppResult]) -> SloReport:
    """Compute the full SLO summary of one run."""
    windows = overload_windows(trace)
    drops = sum(
        1 for event in trace
        if event.kind is TraceKind.APP_REJECTED
        and (event.detail or 0) < 0
    )
    return SloReport(
        admission_ratio=admission_ratio(trace),
        rejections=trace.count(TraceKind.APP_REJECTED),
        drops=drops,
        shed=trace.count(TraceKind.APP_SHED),
        overload_windows=len(windows),
        overload_ms=sum(end - start for start, end in windows),
        goodput_under_overload=goodput_under_overload(trace),
        starvation_index=starvation_index(results),
        p99_response_ms=p99_response_ms(results),
        watchdog_stalls=trace.count(TraceKind.WATCHDOG_STALL),
        watchdog_kicks=trace.count(TraceKind.WATCHDOG_KICK),
    )
