"""Reliability metrics computed from fault-injected runs (repro.faults).

Everything derives from the trace (like every other metric in this
package), so chaos runs remain post-processable without re-simulation:

* **goodput** — completed (useful) batch items per second of trace span;
  items killed mid-flight by a slot fault never emit ``ITEM_DONE`` and so
  never count;
* **MTTR** — mean time to recovery, averaged over every recovery edge:
  ``SLOT_FAULT -> SLOT_REPAIRED`` on the same slot, and
  ``CONFIG_FAILED -> TASK_CONFIG_DONE`` for the same (app, task);
* **work lost** — partial item time destroyed by slot faults plus CAP
  time wasted by failed reconfigurations (both carried in the events'
  ``detail`` fields);
* **degradation** — mean per-application response-time ratio of a faulty
  run against the fault-free run of the same workload and scheduler,
  the quantity the ``ext-faults`` study sweeps into per-scheduler curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.hypervisor.results import AppResult
from repro.sim.trace import Trace, TraceKind


def goodput_items_per_s(trace: Trace) -> float:
    """Useful batch items completed per second over the trace span."""
    items = trace.count(TraceKind.ITEM_DONE)
    if not len(trace):
        return 0.0
    span_ms = trace.end_ms - trace.start_ms
    if span_ms <= 0:
        return 0.0
    return items / (span_ms / 1000.0)


def work_lost_ms(trace: Trace) -> float:
    """Simulated milliseconds of work destroyed by faults.

    Batch-boundary rollback retains completed items, so the only losses
    are the in-flight item a slot fault kills (``SLOT_FAULT.detail``) and
    the CAP time a failed reconfiguration wastes (``CONFIG_FAILED.detail``).
    """
    total = 0.0
    for event in trace:
        if event.kind in (TraceKind.SLOT_FAULT, TraceKind.CONFIG_FAILED):
            total += event.detail or 0.0
    return total


def recovery_times_ms(trace: Trace) -> List[float]:
    """Every observed recovery interval, in trace order.

    A slot recovery runs from ``SLOT_FAULT`` to the next ``SLOT_REPAIRED``
    on the same slot; a reconfiguration recovery runs from
    ``CONFIG_FAILED`` to the task's next successful ``TASK_CONFIG_DONE``.
    Faults still unrecovered when the trace ends contribute nothing.
    """
    times: List[float] = []
    open_slot_faults: Dict[int, float] = {}
    open_config_faults: Dict[Tuple[Optional[int], Optional[str]], float] = {}
    for event in trace:
        if event.kind == TraceKind.SLOT_FAULT and event.slot is not None:
            open_slot_faults.setdefault(event.slot, event.time)
        elif event.kind == TraceKind.SLOT_REPAIRED and event.slot is not None:
            started = open_slot_faults.pop(event.slot, None)
            if started is not None:
                times.append(event.time - started)
        elif event.kind == TraceKind.CONFIG_FAILED:
            open_config_faults.setdefault(
                (event.app_id, event.task_id), event.time
            )
        elif event.kind == TraceKind.TASK_CONFIG_DONE:
            started = open_config_faults.pop(
                (event.app_id, event.task_id), None
            )
            if started is not None:
                times.append(event.time - started)
    return times


def mean_time_to_recovery_ms(trace: Trace) -> float:
    """Mean recovery interval; NaN when nothing needed recovering."""
    times = recovery_times_ms(trace)
    if not times:
        return float("nan")
    return sum(times) / len(times)


def degradation_factor(
    fault_free: Sequence[AppResult], faulty: Sequence[AppResult]
) -> float:
    """Mean per-application response ratio: faulty over fault-free.

    1.0 means faults cost nothing; 2.0 means responses doubled. Results
    are matched by ``app_id``, so both runs must come from the same
    stimuli (same sequences, same arrival order).
    """
    if not fault_free or not faulty:
        raise ExperimentError("degradation_factor needs non-empty results")
    base = {result.app_id: result for result in fault_free}
    ratios: List[float] = []
    for result in faulty:
        reference = base.get(result.app_id)
        if reference is None:
            raise ExperimentError(
                f"app {result.app_id} missing from the fault-free run; "
                "degradation requires matched stimuli"
            )
        if reference.response_ms <= 0:
            continue
        ratios.append(result.response_ms / reference.response_ms)
    if not ratios:
        raise ExperimentError("no matched applications with positive response")
    return sum(ratios) / len(ratios)


@dataclass(frozen=True)
class ReliabilityReport:
    """Trace-level reliability summary of one (possibly chaotic) run."""

    slot_faults: int
    repairs: int
    config_failures: int
    relocations: int
    work_lost_ms: float
    mttr_ms: float
    goodput_items_per_s: float

    @property
    def permanent_faults(self) -> int:
        """Slot faults that never repaired (dead within this trace)."""
        return self.slot_faults - self.repairs

    def format(self) -> str:
        """One-line human-readable summary."""
        mttr = "n/a" if math.isnan(self.mttr_ms) else f"{self.mttr_ms:.1f}ms"
        return (
            f"faults={self.slot_faults} (perm={self.permanent_faults}) "
            f"config_failures={self.config_failures} "
            f"relocations={self.relocations} "
            f"work_lost={self.work_lost_ms:.1f}ms mttr={mttr} "
            f"goodput={self.goodput_items_per_s:.2f} items/s"
        )


def reliability_report(trace: Trace) -> ReliabilityReport:
    """Compute the full reliability summary of one trace."""
    return ReliabilityReport(
        slot_faults=trace.count(TraceKind.SLOT_FAULT),
        repairs=trace.count(TraceKind.SLOT_REPAIRED),
        config_failures=trace.count(TraceKind.CONFIG_FAILED),
        relocations=trace.count(TraceKind.TASK_RELOCATED),
        work_lost_ms=work_lost_ms(trace),
        mttr_ms=mean_time_to_recovery_ms(trace),
        goodput_items_per_s=goodput_items_per_s(trace),
    )
