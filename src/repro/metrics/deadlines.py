"""Deadline-violation analysis (paper §5.4, Figure 7).

An application's deadline is ``D_s`` times its single-slot latency — the
latency it would see alone on one slot with no contention. The paper
sweeps ``D_s`` from 1 to 20 at 0.25 intervals, focuses on high-priority
applications (tight deadlines), and reports each algorithm's violation
rate plus its 10% error point (the first ``D_s`` at which fewer than 10%
of deadlines are missed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.hypervisor.results import AppResult


def _ds_sweep() -> Tuple[float, ...]:
    values = []
    step = 0.25
    current = 1.0
    while current <= 20.0 + 1e-9:
        values.append(round(current, 2))
        current += step
    return tuple(values)


#: The paper's sweep: D_s from 1 to 20 at 0.25 intervals.
DEFAULT_DS_VALUES: Tuple[float, ...] = _ds_sweep()


def violation_rate(
    results: Sequence[AppResult],
    scaling_factor: float,
    priority: Optional[int] = None,
) -> float:
    """Fraction of applications missing ``D_s x single-slot latency``.

    ``priority`` filters the population (the paper analyzes high-priority
    applications, priority 9).
    """
    population = [
        r for r in results if priority is None or r.priority == priority
    ]
    if not population:
        raise ExperimentError(
            f"no applications at priority {priority} to analyze"
        )
    violations = sum(
        1 for r in population if r.violates_deadline(scaling_factor)
    )
    return violations / len(population)


@dataclass(frozen=True)
class DeadlineCurve:
    """Violation rate as a function of the deadline scaling factor."""

    scheduler: str
    ds_values: Tuple[float, ...]
    rates: Tuple[float, ...]

    def rate_at(self, scaling_factor: float) -> float:
        """Violation rate at one swept ``D_s`` value."""
        try:
            index = self.ds_values.index(scaling_factor)
        except ValueError:
            raise ExperimentError(
                f"D_s={scaling_factor} was not part of the sweep"
            ) from None
        return self.rates[index]

    @property
    def tightest_rate(self) -> float:
        """Violation rate at the tightest constraint (D_s = 1)."""
        return self.rates[0]

    def error_point(self, target_rate: float = 0.10) -> Optional[float]:
        """First ``D_s`` whose violation rate is <= ``target_rate``.

        This is the paper's "10% error point"; None if never reached.
        """
        return first_point_below(self, target_rate)


def deadline_curve(
    scheduler: str,
    results: Sequence[AppResult],
    ds_values: Sequence[float] = DEFAULT_DS_VALUES,
    priority: Optional[int] = 9,
) -> DeadlineCurve:
    """Sweep ``D_s`` and record the violation rate at each point."""
    rates = tuple(
        violation_rate(results, ds, priority=priority) for ds in ds_values
    )
    return DeadlineCurve(scheduler, tuple(ds_values), rates)


def first_point_below(
    curve: DeadlineCurve, target_rate: float
) -> Optional[float]:
    """The smallest swept ``D_s`` with violation rate <= ``target_rate``."""
    if not 0 <= target_rate <= 1:
        raise ExperimentError(
            f"target_rate must be in [0, 1], got {target_rate}"
        )
    for ds, rate in zip(curve.ds_values, curve.rates):
        if rate <= target_rate:
            return ds
    return None
