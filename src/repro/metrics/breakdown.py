"""Application time breakdown (paper §5.5, Figure 8).

For each application, total time from arrival to retirement splits into:

* **run** — the running time of all tasks summed together;
* **PR** — total partial-reconfiguration time charged to the application;
* **wait** — the time spent queued before the first task ran.

Run and PR time can overlap other components (tasks execute
simultaneously), so the paper presents them as proportions of the total
application time rather than a strict partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ExperimentError
from repro.hypervisor.results import AppResult


@dataclass(frozen=True)
class TimeBreakdown:
    """Proportions of one application's total time (Figure 8 bars)."""

    benchmark: str
    samples: int
    run_fraction: float
    reconfig_fraction: float
    wait_fraction: float

    @classmethod
    def from_results(
        cls, benchmark: str, results: Sequence[AppResult]
    ) -> "TimeBreakdown":
        """Average the per-application proportions of one benchmark."""
        if not results:
            raise ExperimentError(f"no results for benchmark {benchmark!r}")
        run = reconfig = wait = 0.0
        for result in results:
            total = result.response_ms
            if total <= 0:
                raise ExperimentError(
                    f"non-positive response for app {result.app_id}"
                )
            run += result.run_busy_ms / total
            reconfig += result.reconfig_busy_ms / total
            wait += result.wait_ms / total
        n = len(results)
        return cls(
            benchmark=benchmark,
            samples=n,
            run_fraction=run / n,
            reconfig_fraction=reconfig / n,
            wait_fraction=wait / n,
        )


def breakdown_by_benchmark(
    results: Sequence[AppResult],
) -> Dict[str, TimeBreakdown]:
    """Figure 8's per-benchmark breakdown from one (or more) runs."""
    grouped: Dict[str, List[AppResult]] = {}
    for result in results:
        grouped.setdefault(result.name, []).append(result)
    return {
        name: TimeBreakdown.from_results(name, group)
        for name, group in sorted(grouped.items())
    }
