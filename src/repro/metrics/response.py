"""Response-time statistics (paper §5.2 and §5.3).

The paper compares each event's response time under a sharing algorithm
against the *same event's* response time under the no-sharing baseline,
producing a normalized per-event distribution that is robust to the huge
disparity in application runtimes. Figure 5 reports the average reduction
factor; Figure 6 reports the 95th/99th percentiles of the normalized
response time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ExperimentError
from repro.hypervisor.results import AppResult


def match_results(
    baseline: Sequence[AppResult], other: Sequence[AppResult]
) -> List[Tuple[AppResult, AppResult]]:
    """Pair results of the same events across two runs of one stimulus.

    Both lists are in submission order (possibly concatenated across
    several sequences in the same order), so events pair positionally;
    each pair is validated to be the same event.
    """
    if len(baseline) != len(other):
        raise ExperimentError(
            f"run sizes differ: baseline {len(baseline)}, other {len(other)}"
        )
    pairs = []
    for mate, result in zip(baseline, other):
        same_event = (
            mate.name == result.name
            and mate.batch_size == result.batch_size
            and mate.priority == result.priority
            and mate.arrival_ms == result.arrival_ms
        )
        if not same_event:
            raise ExperimentError(
                f"event mismatch across runs: "
                f"{mate.name}/{mate.batch_size}@{mate.arrival_ms} vs "
                f"{result.name}/{result.batch_size}@{result.arrival_ms}; "
                "stimuli must match"
            )
        pairs.append((mate, result))
    return pairs


def normalized_responses(
    baseline: Sequence[AppResult], other: Sequence[AppResult]
) -> List[float]:
    """Per-event response time normalized to the baseline (lower is better)."""
    return [
        o.response_ms / b.response_ms for b, o in match_results(baseline, other)
    ]


def reduction_factors(
    baseline: Sequence[AppResult], other: Sequence[AppResult]
) -> List[float]:
    """Per-event response-time reduction factor (higher is better)."""
    return [
        b.response_ms / o.response_ms for b, o in match_results(baseline, other)
    ]


def mean_reduction_factor(
    baseline: Sequence[AppResult], other: Sequence[AppResult]
) -> float:
    """Reduction of the *average* response time (the Figure 5 bar height).

    The paper "analyzes the data using the average of the response times of
    the evaluated events" (§5.2): the bar is the ratio of mean response
    times, not the mean of per-event ratios — the latter is dominated by
    sub-second benchmarks that queued behind digit recognition under the
    baseline and would report reductions in the hundreds.
    """
    pairs = match_results(baseline, other)
    base_mean = sum(b.response_ms for b, _ in pairs) / len(pairs)
    other_mean = sum(o.response_ms for _, o in pairs) / len(pairs)
    return base_mean / other_mean


def per_event_mean_reduction(
    baseline: Sequence[AppResult], other: Sequence[AppResult]
) -> float:
    """Mean of per-event reduction factors (diagnostic, outlier-sensitive)."""
    factors = reduction_factors(baseline, other)
    return sum(factors) / len(factors)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (numpy 'linear' method).

    Implemented locally so the core library stays dependency-free.
    """
    if not values:
        raise ExperimentError("cannot take a percentile of no values")
    if not 0 <= pct <= 100:
        raise ExperimentError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    # a + (b - a) * w is exact when a == b, unlike a*(1-w) + b*w.
    return ordered[low] + (ordered[high] - ordered[low]) * weight


def tail_normalized_response(
    baseline: Sequence[AppResult],
    other: Sequence[AppResult],
    pct: float,
) -> float:
    """Tail (e.g. 95th/99th pct) of the normalized response distribution."""
    return percentile(normalized_responses(baseline, other), pct)


@dataclass(frozen=True)
class ResponseStats:
    """Summary of one algorithm's responses against the baseline."""

    scheduler: str
    events: int
    mean_reduction: float
    median_normalized: float
    p95_normalized: float
    p99_normalized: float

    @classmethod
    def compute(
        cls,
        scheduler: str,
        baseline: Sequence[AppResult],
        other: Sequence[AppResult],
    ) -> "ResponseStats":
        """Build the full summary for one (baseline, algorithm) pairing."""
        normalized = normalized_responses(baseline, other)
        return cls(
            scheduler=scheduler,
            events=len(normalized),
            mean_reduction=mean_reduction_factor(baseline, other),
            median_normalized=percentile(normalized, 50),
            p95_normalized=percentile(normalized, 95),
            p99_normalized=percentile(normalized, 99),
        )
