"""Terminal plotting for experiment outputs.

The CLI renders Figure 7's deadline curves and Figure 5's bars directly in
the terminal; no plotting dependency is needed. Plots are plain monospace
text: multi-series line charts use one marker letter per series, bar
charts scale to a fixed column budget.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ExperimentError

#: Marker characters assigned to series in insertion order.
SERIES_MARKERS = "NXPRFBoasdfghjkl"


def render_curves(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render multiple y(x) series as an ASCII line chart.

    All series share ``x_values``. The y-axis spans [0, max] (deadline
    rates span [0, 1]); later series overwrite earlier ones where they
    collide, so list the most important series last.
    """
    if not x_values:
        raise ExperimentError("x_values must be non-empty")
    if not series:
        raise ExperimentError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ExperimentError(
                f"series {name!r} has {len(ys)} points for "
                f"{len(x_values)} x values"
            )
    if width < 8 or height < 4:
        raise ExperimentError("plot area too small")

    y_max = max(max(ys) for ys in series.values())
    y_max = max(y_max, 1e-12)
    x_min, x_max = min(x_values), max(x_values)
    x_span = max(x_max - x_min, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    used_markers: set = set()
    for index, (name, ys) in enumerate(series.items()):
        marker = ""
        for char in name.upper():
            if char.isalpha() and char not in used_markers:
                marker = char
                break
        if not marker:
            for char in SERIES_MARKERS:
                if char not in used_markers:
                    marker = char
                    break
            else:
                marker = "?"
        used_markers.add(marker)
        legend.append(f"{marker}={name}")
        for x, y in zip(x_values, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round(y / y_max * (height - 1)))
            grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        y_at_row = y_max * (height - 1 - row_index) / (height - 1)
        prefix = f"{y_at_row:6.2f} |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    left = f"{x_min:g}"
    right = f"{x_max:g}"
    pad = max(width - len(left) - len(right), 1)
    lines.append(" " * 8 + left + " " * pad + right)
    footer = "  ".join(legend)
    if x_label or y_label:
        footer += f"   ({y_label} vs {x_label})" if y_label else f"   ({x_label})"
    lines.append(footer)
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart."""
    if len(labels) != len(values):
        raise ExperimentError("labels and values must align")
    if not labels:
        raise ExperimentError("nothing to plot")
    if any(v < 0 for v in values):
        raise ExperimentError("bar values must be >= 0")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / peak * width))) if value else ""
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)
