"""Metrics mirroring the paper's evaluation methodology (§5).

Response-time reductions are computed per event against the baseline run
of the *same* stimuli, producing the normalized distributions behind
Figures 5 and 6; deadline analysis sweeps the scaling factor ``D_s``
(§5.4); the time-breakdown splits each application's total time into run,
partial-reconfiguration and wait components (Figure 8).
"""

from repro.metrics.response import (
    ResponseStats,
    match_results,
    mean_reduction_factor,
    normalized_responses,
    per_event_mean_reduction,
    percentile,
    reduction_factors,
    tail_normalized_response,
)
from repro.metrics.stats import bootstrap_ci, reduction_ci
from repro.metrics.deadlines import (
    DEFAULT_DS_VALUES,
    DeadlineCurve,
    deadline_curve,
    first_point_below,
    violation_rate,
)
from repro.metrics.breakdown import TimeBreakdown, breakdown_by_benchmark
from repro.metrics.fairness import jain_index, priority_speedups, sharing_fairness
from repro.metrics.reliability import (
    ReliabilityReport,
    degradation_factor,
    goodput_items_per_s,
    mean_time_to_recovery_ms,
    recovery_times_ms,
    reliability_report,
    work_lost_ms,
)
from repro.metrics.slo import (
    SloReport,
    admission_ratio,
    goodput_under_overload,
    overload_windows,
    p99_response_ms,
    responses_by_priority,
    shed_rate_per_s,
    slo_report,
    starvation_index,
)
from repro.metrics.utilization import UtilizationReport, board_utilization

__all__ = [
    "ResponseStats",
    "match_results",
    "mean_reduction_factor",
    "normalized_responses",
    "per_event_mean_reduction",
    "percentile",
    "reduction_factors",
    "bootstrap_ci",
    "reduction_ci",
    "tail_normalized_response",
    "DEFAULT_DS_VALUES",
    "DeadlineCurve",
    "deadline_curve",
    "first_point_below",
    "violation_rate",
    "TimeBreakdown",
    "breakdown_by_benchmark",
    "jain_index",
    "priority_speedups",
    "sharing_fairness",
    "ReliabilityReport",
    "degradation_factor",
    "goodput_items_per_s",
    "mean_time_to_recovery_ms",
    "recovery_times_ms",
    "reliability_report",
    "work_lost_ms",
    "SloReport",
    "admission_ratio",
    "goodput_under_overload",
    "overload_windows",
    "p99_response_ms",
    "responses_by_priority",
    "shed_rate_per_s",
    "slo_report",
    "starvation_index",
    "UtilizationReport",
    "board_utilization",
]
