"""Board utilization from traces (the paper's efficiency motivation, §1).

The case for fine-grained sharing is resource efficiency: a no-sharing
system leaves most of the board dark while one application's tasks run.
These helpers compute, from a run's trace, the fraction of slot-time spent
computing, reconfiguring, resident-but-idle, and empty over the busy
window of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ExperimentError
from repro.sim.trace import Trace, TraceKind


@dataclass(frozen=True)
class UtilizationReport:
    """Slot-time shares over a run's busy window."""

    window_ms: float
    num_slots: int
    compute_fraction: float
    reconfig_fraction: float
    idle_resident_fraction: float

    @property
    def empty_fraction(self) -> float:
        """Share of slot-time with nothing configured."""
        return max(
            0.0,
            1.0
            - self.compute_fraction
            - self.reconfig_fraction
            - self.idle_resident_fraction,
        )

    @property
    def busy_fraction(self) -> float:
        """Compute plus reconfiguration (the 'working' share)."""
        return self.compute_fraction + self.reconfig_fraction


def board_utilization(trace: Trace, num_slots: int) -> UtilizationReport:
    """Compute slot-time shares from a trace.

    The window runs from the first arrival to the last retirement; with
    ``num_slots`` slots the denominator is ``window x num_slots``.
    """
    if num_slots < 1:
        raise ExperimentError(f"num_slots must be >= 1, got {num_slots}")
    if not len(trace):
        raise ExperimentError("cannot analyze an empty trace")

    first = trace.start_ms
    last = trace.end_ms
    window = last - first
    if window <= 0:
        raise ExperimentError("trace window is empty")
    denominator = window * num_slots

    compute = trace.run_busy_ms()
    reconfig = trace.reconfig_busy_ms()

    # Resident-idle: time between a task's configuration (or previous item
    # completion) and its next item start, while it stays in the slot.
    idle = 0.0
    resident_since: Dict[Tuple[int, str], float] = {}
    for event in trace:
        key = (event.app_id, event.task_id)
        if event.kind == TraceKind.TASK_CONFIG_DONE:
            resident_since[key] = event.time
        elif event.kind == TraceKind.ITEM_START:
            opened = resident_since.pop(key, None)
            if opened is not None:
                idle += event.time - opened
        elif event.kind == TraceKind.ITEM_DONE:
            resident_since[key] = event.time
        elif event.kind in (TraceKind.TASK_DONE, TraceKind.TASK_PREEMPTED):
            opened = resident_since.pop(key, None)
            if opened is not None:
                idle += event.time - opened

    return UtilizationReport(
        window_ms=window,
        num_slots=num_slots,
        compute_fraction=compute / denominator,
        reconfig_fraction=reconfig / denominator,
        idle_resident_fraction=idle / denominator,
    )
