"""Statistical helpers: bootstrap confidence intervals over event samples.

The paper reports point estimates; a careful reproduction should state
how tight they are. ``bootstrap_ci`` resamples per-event values with
replacement (seeded, numpy-backed) and returns a percentile confidence
interval for any statistic of the sample.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """(point estimate, low, high) for ``statistic`` over ``values``.

    Percentile bootstrap: resample with replacement, evaluate the
    statistic on each resample, take the (1-confidence)/2 tails.
    """
    if not values:
        raise ExperimentError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ExperimentError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if resamples < 10:
        raise ExperimentError(f"resamples must be >= 10, got {resamples}")
    data = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    estimates = np.empty(resamples)
    n = len(data)
    for index in range(resamples):
        sample = data[rng.integers(0, n, size=n)]
        estimates[index] = statistic(sample)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [tail, 1.0 - tail])
    return float(statistic(data)), float(low), float(high)


def reduction_ci(
    baseline_responses: Sequence[float],
    other_responses: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """CI for the mean-response reduction factor (the Figure 5 statistic).

    Pairs are resampled together so the correlation between an event's
    baseline and sharing responses is preserved.
    """
    if len(baseline_responses) != len(other_responses):
        raise ExperimentError("paired samples must have equal length")
    if not baseline_responses:
        raise ExperimentError("cannot bootstrap an empty sample")
    base = np.asarray(baseline_responses, dtype=float)
    other = np.asarray(other_responses, dtype=float)
    rng = np.random.default_rng(seed)
    n = len(base)
    estimates = np.empty(resamples)
    for index in range(resamples):
        pick = rng.integers(0, n, size=n)
        estimates[index] = base[pick].mean() / other[pick].mean()
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [tail, 1.0 - tail])
    return float(base.mean() / other.mean()), float(low), float(high)
