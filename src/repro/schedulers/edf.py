"""Earliest-deadline-first scheduling (extension, not in the paper).

A classic real-time baseline the paper's related work gestures at but does
not evaluate. Each application receives an internal deadline at arrival —
``arrival + slack_factor x latency_estimate`` — and ready tasks are drawn
from the live application with the earliest deadline. Like the other
comparison schedulers it is bulk-mode with no preemption, so it isolates
the value of deadline ordering alone.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SchedulerError
from repro.schedulers.base import Action, ConfigureAction, SchedulerPolicy


class EDFScheduler(SchedulerPolicy):
    """Earliest internal deadline first, bulk execution."""

    name = "edf"
    pipelined = False
    prefetch = False

    def __init__(self, slack_factor: float = 2.0) -> None:
        if slack_factor <= 0:
            raise SchedulerError(
                f"slack_factor must be > 0, got {slack_factor}"
            )
        self.slack_factor = slack_factor
        self._deadlines: Dict[int, float] = {}

    def notify_arrival(self, ctx, app) -> None:
        self._deadlines[app.app_id] = (
            app.arrival_ms + self.slack_factor * app.latency_estimate_ms
        )

    def notify_completion(self, ctx, app) -> None:
        self._deadlines.pop(app.app_id, None)

    def _deadline(self, app) -> float:
        deadline = self._deadlines.get(app.app_id)
        if deadline is None:
            # Defensive: an app submitted before the policy was attached.
            deadline = (
                app.arrival_ms + self.slack_factor * app.latency_estimate_ms
            )
            self._deadlines[app.app_id] = deadline
        return deadline

    def decide(self, ctx) -> Optional[Action]:
        """Configure the first ready task of the earliest-deadline app."""
        slot_index = ctx.free_slot_index()
        if slot_index is None:
            return None
        apps = sorted(
            ctx.pending_apps(),
            key=lambda app: (self._deadline(app), app.age_key),
        )
        for app in apps:
            task_id = app.first_configurable_task(prefetch=self.prefetch)
            if task_id is not None:
                return ConfigureAction(app.app_id, task_id, slot_index)
        return None
