"""Task-based PREMA scheduling adapted to a multi-slot overlay (§5.1).

We keep PREMA's token accumulation and its candidate-selection methodology
of executing the *shortest* candidate next, following the multi-slot scheme
the paper compares against. The policy shares the board across candidate
applications and runs parallel branches, but — matching the paper's
characterization — it has no advanced features: no inter-batch pipelining
and no preemption.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tokens import TokenAccounting
from repro.schedulers.base import Action, ConfigureAction, SchedulerPolicy


class PremaScheduler(SchedulerPolicy):
    """Token-based candidate selection, shortest candidate first."""

    name = "prema"
    pipelined = False
    prefetch = False

    def __init__(self) -> None:
        self._tokens: Optional[TokenAccounting] = None

    def _accounting(self, ctx) -> TokenAccounting:
        if self._tokens is None:
            self._tokens = TokenAccounting(ctx.config)
        return self._tokens

    # Token accumulation fires at the PREMA scheduling events: interval
    # ticks, application arrival and application completion (§4.1).
    def notify_arrival(self, ctx, app) -> None:
        pending = [a for a in ctx.pending_apps() if a.app_id != app.app_id]
        self._accounting(ctx).accumulate(pending, ctx.now)

    def notify_completion(self, ctx, app) -> None:
        self._accounting(ctx).accumulate(ctx.pending_apps(), ctx.now)

    def notify_tick(self, ctx) -> None:
        self._accounting(ctx).accumulate(ctx.pending_apps(), ctx.now)

    def decide(self, ctx) -> Optional[Action]:
        """Configure a ready task from the shortest candidate application."""
        slot_index = ctx.free_slot_index()
        if slot_index is None:
            return None
        candidates = self._accounting(ctx).candidates(ctx.pending_apps())
        # Shortest estimated remaining work first (PREMA's selection rule);
        # age breaks ties deterministically.
        candidates.sort(key=lambda app: (app.remaining_work_ms(), app.age_key))
        for app in candidates:
            task_id = app.first_configurable_task(prefetch=self.prefetch)
            if task_id is not None:
                return ConfigureAction(app.app_id, task_id, slot_index)
        return None
