"""The paper's baseline: no sharing, no virtualization benefits (§5.1).

Only one application uses the FPGA at a time; the rest wait in the pending
queue. The active application may use *all* slots to execute parallel
branches of its task graph (and we let it prefetch-configure tasks whose
predecessors are still running, hiding reconfiguration, which only makes
the baseline stronger), but batches are bulk-processed — no inter-batch
pipelining — and no other application touches the board until it retires.
"""

from __future__ import annotations

from typing import Optional

from repro.schedulers.base import Action, ConfigureAction, SchedulerPolicy


class NoSharingScheduler(SchedulerPolicy):
    """Exclusive, in-order use of the whole board (baseline)."""

    name = "baseline"
    pipelined = False
    prefetch = True

    def decide(self, ctx) -> Optional[Action]:
        """Configure the next task of the oldest (active) application."""
        active = ctx.pending.oldest()
        if active is None:
            return None
        slot_index = ctx.free_slot_index()
        if slot_index is None:
            return None
        task_id = active.first_configurable_task(prefetch=self.prefetch)
        if task_id is not None:
            return ConfigureAction(active.app_id, task_id, slot_index)
        return None
