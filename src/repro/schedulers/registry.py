"""Name-to-policy registry used by experiments, benches and the CLI.

Nimblock variants are imported lazily to keep the package import graph
acyclic (``repro.core`` builds on ``repro.schedulers.base``).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import SchedulerError
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.no_sharing import NoSharingScheduler
from repro.schedulers.prema import PremaScheduler
from repro.schedulers.round_robin import RoundRobinScheduler

#: The five algorithms of the paper's evaluation, in Figure 5 legend order.
ALL_SCHEDULERS: Tuple[str, ...] = (
    "baseline",
    "fcfs",
    "prema",
    "rr",
    "nimblock",
)

#: The sharing algorithms (everything except the no-sharing baseline).
SHARING_SCHEDULERS: Tuple[str, ...] = ("fcfs", "prema", "rr", "nimblock")

#: Extension policies beyond the paper's evaluation (see each module).
EXTENSION_SCHEDULERS: Tuple[str, ...] = ("edf", "dml_static")


def _nimblock_factories() -> Dict[str, Callable[[], SchedulerPolicy]]:
    from repro.core.variants import (
        nimblock_full,
        nimblock_no_pipe,
        nimblock_no_preempt,
        nimblock_no_preempt_no_pipe,
    )

    return {
        "nimblock": nimblock_full,
        "nimblock_no_preempt": nimblock_no_preempt,
        "nimblock_no_pipe": nimblock_no_pipe,
        "nimblock_no_preempt_no_pipe": nimblock_no_preempt_no_pipe,
    }


def scheduler_factories() -> Dict[str, Callable[[], SchedulerPolicy]]:
    """All known policy factories, keyed by registry name."""
    from repro.schedulers.dml_static import DMLStaticScheduler
    from repro.schedulers.edf import EDFScheduler

    factories: Dict[str, Callable[[], SchedulerPolicy]] = {
        "baseline": NoSharingScheduler,
        "no_sharing": NoSharingScheduler,
        "fcfs": FCFSScheduler,
        "prema": PremaScheduler,
        "rr": RoundRobinScheduler,
        "round_robin": RoundRobinScheduler,
        "edf": EDFScheduler,
        "dml_static": DMLStaticScheduler,
    }
    factories.update(_nimblock_factories())
    return factories


def make_scheduler(name: str) -> SchedulerPolicy:
    """Instantiate a fresh policy by registry name."""
    factories = scheduler_factories()
    factory = factories.get(name)
    if factory is None:
        raise SchedulerError(
            f"unknown scheduler {name!r}; known: {sorted(factories)}"
        )
    return factory()
