"""DML-style static slot designation (extension; paper §6.2 contrast).

DML pipelines tasks like Nimblock but "requires the user to statically
designate a certain number of slots to each application" and reallocates
nothing at runtime. This policy reproduces that contrast inside our
runtime: each application's slot budget is fixed at arrival (we stand in
for the user with the same saturation analysis Nimblock runs), there are
no tokens, no reallocation, and no preemption. Applications are served
oldest-first within their fixed budgets, pipelining across batches.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.saturation import SaturationAnalyzer
from repro.schedulers.base import Action, ConfigureAction, SchedulerPolicy


class DMLStaticScheduler(SchedulerPolicy):
    """Fixed per-application slot budgets with pipelining."""

    name = "dml_static"
    pipelined = True
    prefetch = True

    def __init__(self) -> None:
        self._analyzer: Optional[SaturationAnalyzer] = None
        self._budgets: Dict[int, int] = {}

    def notify_arrival(self, ctx, app) -> None:
        if self._analyzer is None:
            self._analyzer = SaturationAnalyzer(ctx.config)
        budget = self._analyzer.goal_number(app.graph, app.batch_size)
        self._budgets[app.app_id] = budget
        # Static designation is visible in the runtime bookkeeping too, so
        # over-consumption diagnostics stay meaningful.
        app.slots_allocated = budget

    def notify_completion(self, ctx, app) -> None:
        self._budgets.pop(app.app_id, None)

    def decide(self, ctx) -> Optional[Action]:
        """Oldest application still under its static budget gets a slot."""
        slot_index = ctx.free_slot_index()
        if slot_index is None:
            return None
        for app in ctx.pending_apps():
            budget = self._budgets.get(app.app_id)
            if budget is None:
                continue  # arrival notification not yet delivered
            if app._slots_used >= budget:
                continue
            task_id = app.first_configurable_task(prefetch=self.prefetch)
            if task_id is not None:
                return ConfigureAction(app.app_id, task_id, slot_index)
        return None
