"""Scheduling policies evaluated in the paper (§5.1).

Five algorithms share one hypervisor: the no-sharing baseline, naive FCFS,
task-based PREMA, Coyote-style queue-based round-robin, and Nimblock
(exported from :mod:`repro.core`). The registry maps the names used by the
experiment harness to policy factories.
"""

from repro.schedulers.base import (
    Action,
    ConfigureAction,
    PreemptAction,
    SchedulerPolicy,
)
from repro.schedulers.no_sharing import NoSharingScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.prema import PremaScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.registry import (
    ALL_SCHEDULERS,
    SHARING_SCHEDULERS,
    make_scheduler,
)

__all__ = [
    "Action",
    "ConfigureAction",
    "PreemptAction",
    "SchedulerPolicy",
    "NoSharingScheduler",
    "FCFSScheduler",
    "PremaScheduler",
    "RoundRobinScheduler",
    "ALL_SCHEDULERS",
    "SHARING_SCHEDULERS",
    "make_scheduler",
]
