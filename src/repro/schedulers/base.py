"""Policy interface shared by all five scheduling algorithms.

The hypervisor invokes :meth:`SchedulerPolicy.decide` whenever the
configuration port is idle and something changed (arrival, completion,
reconfiguration done, periodic interval). The policy answers with at most
one action:

* :class:`ConfigureAction` — load task ``task_id`` of application
  ``app_id`` into free slot ``slot_index`` (starts a partial
  reconfiguration);
* :class:`PreemptAction` — detach the occupant of ``slot_index`` at its
  current batch boundary, freeing the slot (Nimblock only);
* ``None`` — nothing to do right now.

After a preemption the hypervisor asks again in the same pass, so a policy
can preempt and then claim the freed slot. Two behavioural flags also live
on the policy because the hypervisor enforces them mechanically:

* ``pipelined`` — batch items flow through the task graph item-by-item
  (inter-batch pipelining, Figure 2(c)) instead of bulk stage-by-stage;
* ``prefetch`` — tasks may be configured before their predecessors finish,
  hiding reconfiguration latency behind computation (Figure 2(b)).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.application import AppRun
    from repro.hypervisor.hypervisor import SchedulerContext


@dataclass(frozen=True)
class ConfigureAction:
    """Reconfigure ``slot_index`` to host task ``task_id`` of ``app_id``."""

    app_id: int
    task_id: str
    slot_index: int


@dataclass(frozen=True)
class PreemptAction:
    """Batch-preempt the task occupying ``slot_index``."""

    slot_index: int


Action = Union[ConfigureAction, PreemptAction]


class SchedulerPolicy(ABC):
    """Base class for scheduling algorithms."""

    #: Human-readable policy name used in reports and the registry.
    name: str = "abstract"

    #: Per-item pipelined execution (True only for Nimblock variants).
    pipelined: bool = False

    #: May configure tasks ahead of predecessor completion.
    prefetch: bool = True

    def notify_arrival(self, ctx: "SchedulerContext", app: "AppRun") -> None:
        """An application entered the pending queue."""

    def notify_completion(self, ctx: "SchedulerContext", app: "AppRun") -> None:
        """An application retired."""

    def notify_tick(self, ctx: "SchedulerContext") -> None:
        """The periodic scheduling interval elapsed."""

    def token_gen(self) -> int:
        """Mutation counter of this policy's token accounting (0 if none).

        Token-based policies (Nimblock, PREMA) carry a
        :class:`~repro.core.tokens.TokenAccounting` in ``_tokens`` whose
        ``gen`` counter bumps on every accumulation round; the watchdog
        keys its starvation fast path on it, so any policy that writes
        ``app.token`` outside an accounting must override this.
        """
        tokens = getattr(self, "_tokens", None)
        return tokens.gen if tokens is not None else 0

    @abstractmethod
    def decide(self, ctx: "SchedulerContext") -> Optional[Action]:
        """Return the next action, or None when there is nothing to do."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
