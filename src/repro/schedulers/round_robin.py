"""Queue-based round-robin scheduling, adapted from Coyote (§5.1).

Ready tasks from all pending applications are issued to **per-slot priority
queues**: each new task goes to the queue of the slot with the fewest
waiting tasks (ties broken by slot index). Within a queue, tasks sort by
priority level (high first) and then issue order. A free slot always takes
the head of its own queue — a task never migrates to another slot's queue,
which is exactly the load-balancing weakness the paper's evaluation
exposes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hypervisor.application import TaskRunState
from repro.overlay.device import SlotHealth
from repro.schedulers.base import Action, ConfigureAction, SchedulerPolicy


@dataclass(order=True)
class _QueueEntry:
    """One task waiting in a per-slot queue; sorts by (-priority, seq)."""

    sort_key: Tuple[int, int]
    app_id: int = field(compare=False)
    task_id: str = field(compare=False)


class RoundRobinScheduler(SchedulerPolicy):
    """Coyote-style per-slot priority queues."""

    name = "rr"
    pipelined = False
    prefetch = False

    def __init__(self) -> None:
        self._queues: Optional[Dict[int, List[_QueueEntry]]] = None
        self._issued: Set[Tuple[int, str]] = set()
        self._seq = itertools.count()

    def _ensure_queues(self, ctx) -> Dict[int, List[_QueueEntry]]:
        if self._queues is None:
            self._queues = {
                slot.index: [] for slot in ctx.device.slots
            }
        return self._queues

    def _issue_ready_tasks(self, ctx) -> None:
        """Push newly ready tasks onto the emptiest per-slot queues."""
        queues = self._ensure_queues(ctx)
        for app in ctx.pending_apps():
            for task_id in app.configurable_tasks(prefetch=self.prefetch):
                key = (app.app_id, task_id)
                if key in self._issued:
                    continue
                self._issued.add(key)
                target = min(
                    queues, key=lambda index: (len(queues[index]), index)
                )
                entry = _QueueEntry(
                    (-app.priority, next(self._seq)), app.app_id, task_id
                )
                queues[target].append(entry)
                queues[target].sort()

    def _drain_dead_queues(self, ctx) -> None:
        """Move entries queued on blacklisted slots to surviving queues.

        The tasks-never-migrate weakness is deliberate for live slots, but
        a permanently failed slot would strand its queue forever; under
        fault injection its entries are re-dealt to the emptiest healthy
        queues (in queue order, so the rebalance is deterministic).
        """
        queues = self._ensure_queues(ctx)
        dead = [
            slot.index for slot in ctx.device.slots
            if slot.health is SlotHealth.DEAD and queues[slot.index]
        ]
        if not dead:
            return
        alive = [
            slot.index for slot in ctx.device.slots
            if slot.health is not SlotHealth.DEAD
        ]
        if not alive:  # unreachable under the min-healthy-slots guard
            return
        for index in dead:
            stranded, queues[index] = queues[index], []
            for entry in stranded:
                target = min(
                    alive, key=lambda i: (len(queues[i]), i)
                )
                queues[target].append(entry)
                queues[target].sort()

    def decide(self, ctx) -> Optional[Action]:
        """Pop the head of a free slot's queue and configure it there."""
        self._issue_ready_tasks(ctx)
        self._drain_dead_queues(ctx)
        queues = self._ensure_queues(ctx)
        best_slot: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for slot in ctx.device.slots:
            if not slot.is_free or not queues[slot.index]:
                continue
            head = queues[slot.index][0]
            if best_key is None or head.sort_key < best_key:
                best_key = head.sort_key
                best_slot = slot.index
        if best_slot is None:
            return None
        entry = queues[best_slot].pop(0)
        if entry.app_id not in ctx.pending:
            # The app left the pending queue without finishing (admission
            # shed or drop evicts zero-progress apps between passes, and
            # the service loop then discards them entirely). Drop the
            # stale entry and retry.
            self._issued.discard((entry.app_id, entry.task_id))
            return self.decide(ctx)
        app = ctx.app(entry.app_id)
        task = app.tasks[entry.task_id]
        if task.state != TaskRunState.PENDING:
            # The task was already handled (defensive; should not happen
            # without preemption). Drop the stale entry and retry.
            self._issued.discard((entry.app_id, entry.task_id))
            return self.decide(ctx)
        # Un-issue on configure: if a fault later rolls the task back to
        # PENDING (eviction or failed reconfiguration), it becomes ready
        # again and re-enters the queues instead of being stranded.
        self._issued.discard((entry.app_id, entry.task_id))
        return ConfigureAction(entry.app_id, entry.task_id, best_slot)
