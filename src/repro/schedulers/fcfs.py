"""Naive first-come, first-served sharing (§5.1).

All tasks that are *ready to execute* (every predecessor finished its whole
batch) from all applications are selected in application arrival order and
placed into any free slot. Applications share the board and may run
parallel branches simultaneously, but there is no prioritisation, no
pipelining across batches and no preemption.
"""

from __future__ import annotations

from typing import Optional

from repro.schedulers.base import Action, ConfigureAction, SchedulerPolicy


class FCFSScheduler(SchedulerPolicy):
    """First-come first-served task scheduling across all applications."""

    name = "fcfs"
    pipelined = False
    prefetch = False

    def decide(self, ctx) -> Optional[Action]:
        """Configure the oldest application's first ready task."""
        slot_index = ctx.free_slot_index()
        if slot_index is None:
            return None
        for app in ctx.pending_apps():
            task_id = app.first_configurable_task(prefetch=self.prefetch)
            if task_id is not None:
                return ConfigureAction(app.app_id, task_id, slot_index)
        return None
