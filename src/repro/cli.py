"""Command-line entry point regenerating every table and figure.

Examples
--------
::

    nimblock-repro table2
    nimblock-repro fig5 --sequences 3 --events 12
    nimblock-repro all --sequences 2 --events 10
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.experiments import (
    ext_batching,
    ext_capacity,
    ext_estimates,
    ext_hetero,
    ext_interconnect,
    ext_mixes,
    ext_scaleout,
    ext_schedulers,
    ext_seeds,
    ext_utilization,
    fig2_modes,
    fig4_taskgraph,
    fig5_response,
    fig6_tail,
    fig7_deadlines,
    fig8_breakdown,
    fig9_ablation,
    fig10_alexnet,
    fig11_throughput,
    overhead,
    report,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import ExperimentSettings, RunCache


def _needs_runs(module) -> bool:
    return module not in (table1, table2, overhead)


_EXPERIMENTS: Dict[str, object] = {
    "fig2": fig2_modes,
    "fig4": fig4_taskgraph,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "fig5": fig5_response,
    "fig6": fig6_tail,
    "fig7": fig7_deadlines,
    "fig8": fig8_breakdown,
    "fig9": fig9_ablation,
    "fig10": fig10_alexnet,
    "fig11": fig11_throughput,
    "overhead": overhead,
    "ext-interconnect": ext_interconnect,
    "ext-scaleout": ext_scaleout,
    "ext-mixes": ext_mixes,
    "ext-estimates": ext_estimates,
    "ext-schedulers": ext_schedulers,
    "ext-batching": ext_batching,
    "ext-hetero": ext_hetero,
    "ext-utilization": ext_utilization,
    "ext-seeds": ext_seeds,
    "ext-capacity": ext_capacity,
    "report": report,
}


def _run_one(
    name: str,
    cache: RunCache,
    settings: ExperimentSettings,
) -> str:
    module = _EXPERIMENTS[name]
    if _needs_runs(module):
        result = module.run(cache=cache, settings=settings)
    else:
        result = module.run()
    return module.format_result(result)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="nimblock-repro",
        description=(
            "Regenerate the tables and figures of 'Nimblock: Scheduling "
            "for Fine-grained FPGA Sharing through Virtualization' "
            "(ISCA 2023) on the simulated ZCU106 overlay."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--sequences", type=int, default=None,
        help="number of random event sequences (paper: 10)",
    )
    parser.add_argument(
        "--events", type=int, default=None,
        help="events per sequence (paper: 20)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    settings = ExperimentSettings.from_env()
    if args.sequences is not None or args.events is not None:
        settings = ExperimentSettings(
            num_sequences=args.sequences or settings.num_sequences,
            num_events=args.events or settings.num_events,
        )
    cache = RunCache()
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_one(name, cache, settings))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
