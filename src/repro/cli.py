"""Command-line entry point regenerating every table and figure.

Examples
--------
::

    nimblock-repro table2
    nimblock-repro fig5 --sequences 3 --events 12
    nimblock-repro all --sequences 2 --events 10
    nimblock-repro report --jobs 4 --cache-dir .runcache
    nimblock-repro chaos --scenario transient --fault-rate 0.05 --seed 1
    nimblock-repro overload --rate-multiplier 4 --workload stress
    nimblock-repro serve --rate 2 --submissions 50000 --admission shed
    nimblock-repro cluster --boards 8 --placement power_aware --jobs 4
    nimblock-repro trace --format chrome --output run.json
    nimblock-repro stats --fault-rate 0.02 --jobs 4
    nimblock-repro tune --rate 1 --burst 4 --jobs 2

Exit codes: 0 on success, 1 when an experiment fails
(:class:`~repro.errors.ReproError`), 2 on usage errors — argparse
rejections, admission misconfiguration
(:class:`~repro.errors.AdmissionError`) and runtime invariant breaches
(:class:`~repro.errors.InvariantViolation`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import AdmissionError, InvariantViolation, ReproError
from repro.experiments.registry import experiment_names, get_experiment
from repro.experiments.runner import ExperimentSettings, RunCache
from repro.version import __version__
from repro.workload.scenarios import CHAOS_SCENARIOS, SCENARIOS

#: Exit codes of :func:`main` (argparse itself exits 2 on bad usage).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2

#: Non-experiment actions accepted in the positional slot.
ACTIONS = (
    "all", "chaos", "cluster", "overload", "serve", "stats", "trace",
    "tune",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="nimblock-repro",
        description=(
            "Regenerate the tables and figures of 'Nimblock: Scheduling "
            "for Fine-grained FPGA Sharing through Virtualization' "
            "(ISCA 2023) on the simulated ZCU106 overlay."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(experiment_names()) + list(ACTIONS),
        help=(
            "which table/figure to regenerate ('all' runs everything; "
            "'chaos' runs a one-shot fault-injection drill; 'cluster' "
            "runs a one-shot multi-board fleet drill; 'overload' "
            "runs a one-shot admission-policy drill; 'serve' runs an "
            "open-loop online-service drill; 'trace' "
            "exports one observed run as Chrome/Perfetto or JSONL; "
            "'stats' emits Prometheus-format metrics for a sweep; "
            "'tune' runs the closed-loop remediation drill)"
        ),
    )
    parser.add_argument(
        "--sequences", type=int, default=None,
        help="number of random event sequences (paper: 10)",
    )
    parser.add_argument(
        "--events", type=int, default=None,
        help="events per sequence (paper: 20)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for the parallel sweep executor "
            "(default: REPRO_JOBS or 1; results are identical at any "
            "worker count)"
        ),
    )
    parser.add_argument(
        "--mode", choices=("full", "metrics"), default="full",
        help=(
            "run mode: 'full' records trace rows for debugging/export; "
            "'metrics' folds events straight into counters and sketches "
            "— same numbers, fastest path (default: full)"
        ),
    )
    parser.add_argument(
        "--no-replay", action="store_true",
        help=(
            "disable the steady-state macro-event replay cache in the "
            "'serve' and 'cluster' drills (output is byte-identical "
            "either way; the flag exists for A/B verification and the "
            "replay-equivalence CI diff)"
        ),
    )
    parser.add_argument(
        "--admission", default=None,
        help=(
            "admission policy: unbounded, reject, shed or degrade "
            "(default: shed for 'serve', none for 'cluster')"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR") or None,
        help=(
            "persistent on-disk run cache; repeated invocations reuse "
            "completed simulations (default: REPRO_CACHE_DIR, else "
            "memory-only)"
        ),
    )
    workload = parser.add_argument_group(
        "workload",
        "options for the 'chaos', 'overload', 'trace' and 'stats' actions",
    )
    workload.add_argument(
        "--scenario", default="mixed",
        choices=sorted(s.name for s in CHAOS_SCENARIOS),
        help="which fault scenario to inject (default: mixed)",
    )
    workload.add_argument(
        "--fault-rate", type=float, default=None,
        help=(
            "fault-rate knob; 0 disables injection entirely "
            "(default: 0.05 for 'chaos', 0 for 'trace'/'stats')"
        ),
    )
    workload.add_argument(
        "--seed", type=int, default=1,
        help="workload and fault-stream seed (default: 1)",
    )
    workload.add_argument(
        "--workload", default=None,
        choices=sorted([s.name for s in SCENARIOS] + ["overload"]),
        help=(
            "congestion scenario driving arrivals ('overload' is the "
            "admission study's dedicated regime; default: stress, or "
            "overload for the 'overload' action)"
        ),
    )
    workload.add_argument(
        "--scheduler", default=None,
        help=(
            "scheduler observed by 'trace', 'stats' and 'overload' "
            "(default: nimblock, or fcfs for 'overload' — nimblock "
            "self-protects high-priority work even unbounded)"
        ),
    )
    workload.add_argument(
        "--rate-multiplier", type=float, default=4.0,
        help=(
            "'overload' arrival-rate multiplier versus the workload's "
            "nominal inter-arrival delays (default: 4.0)"
        ),
    )
    serve = parser.add_argument_group(
        "serve", "options for the 'serve' open-loop service drill"
    )
    serve.add_argument(
        "--rate", type=float, default=None,
        help="mean open-loop arrival rate, events/s (default: 2.0)",
    )
    serve.add_argument(
        "--burstiness", type=float, default=0.0,
        help=(
            "0 = Poisson arrivals; > 0 = MMPP bursts at the same "
            "long-run mean rate (default: 0)"
        ),
    )
    serve.add_argument(
        "--submissions", type=int, default=None,
        help="open-loop arrivals to drive (default: 20000; --fast: 1500)",
    )
    serve.add_argument(
        "--window-s", type=float, default=None,
        help="tumbling metric window, seconds (default: 60; --fast: 20)",
    )
    serve.add_argument(
        "--schedulers", default=None,
        help=(
            "comma-separated schedulers to serve, one service run each "
            "(default: nimblock; --fast: nimblock,prema)"
        ),
    )
    serve.add_argument(
        "--fast", action="store_true",
        help=(
            "reduced-scale serve drill for CI smoke "
            "(overridden by any explicit serve flag)"
        ),
    )
    tune = parser.add_argument_group(
        "tune",
        "options for the 'tune' closed-loop remediation drill "
        "(also honours --rate, --submissions, --window-s, --scheduler, "
        "--admission, --seed, --jobs, --fast and --json)",
    )
    tune.add_argument(
        "--burst", type=float, default=4.0,
        help=(
            "'tune' episode burst multiplier over the base --rate "
            "(default: 4.0)"
        ),
    )
    cluster = parser.add_argument_group(
        "cluster", "options for the 'cluster' fleet drill"
    )
    cluster.add_argument(
        "--boards", type=int, default=4,
        help="fleet size for the 'cluster' drill (default: 4)",
    )
    cluster.add_argument(
        "--placement", default="least_loaded",
        help=(
            "placement policy: round_robin, least_loaded, affinity or "
            "power_aware (default: least_loaded)"
        ),
    )
    cluster.add_argument(
        "--mix", default=None,
        help=(
            "comma-separated board-profile rotation, e.g. "
            "'zcu106,edge,hpc' (default: the heterogeneous mix; "
            "'zcu106' gives a homogeneous fleet)"
        ),
    )
    cluster.add_argument(
        "--json", action="store_true",
        help=(
            "emit the merged cluster snapshot as canonical JSON instead "
            "of the summary table (byte-identical at any --jobs)"
        ),
    )
    observe = parser.add_argument_group(
        "observe", "options for the 'trace' action"
    )
    observe.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help=(
            "'trace' output format: Chrome/Perfetto trace_event JSON "
            "or one raw event per line (default: chrome)"
        ),
    )
    observe.add_argument(
        "--output", default=None,
        help="write 'trace' output to this file instead of stdout",
    )
    return parser


def _workload_scenario(name: Optional[str]):
    """The congestion scenario driving arrivals, by CLI name."""
    if name == "overload":
        from repro.experiments.ext_overload import OVERLOAD_WORKLOAD

        return OVERLOAD_WORKLOAD
    return next(s for s in SCENARIOS if s.name == (name or "stress"))


def _fault_config(args: argparse.Namespace, default_rate: float):
    """Resolve --scenario/--fault-rate/--seed into a FaultConfig or None."""
    from repro.workload.scenarios import chaos_scenario

    rate = args.fault_rate if args.fault_rate is not None else default_rate
    if rate <= 0.0:
        return None
    return chaos_scenario(args.scenario).fault_config(rate, seed=args.seed)


def _run_chaos(args: argparse.Namespace, settings: ExperimentSettings) -> int:
    """The one-shot fault-injection drill (``chaos``)."""
    from repro.experiments import ext_faults

    rate = args.fault_rate if args.fault_rate is not None else 0.05
    print(ext_faults.chaos_report(
        scenario_name=args.scenario,
        fault_rate=rate,
        seed=args.seed,
        num_events=args.events or settings.num_events,
        workload_name=args.workload or "stress",
    ))
    return EXIT_OK


def _run_overload(
    args: argparse.Namespace, settings: ExperimentSettings
) -> int:
    """The one-shot admission-policy drill (``overload``)."""
    from repro.experiments import ext_overload

    print(ext_overload.overload_report(
        rate_multiplier=args.rate_multiplier,
        seed=args.seed,
        num_events=args.events,
        workload_name=args.workload or "overload",
        scheduler=args.scheduler or "fcfs",
    ))
    return EXIT_OK


def _run_serve(args: argparse.Namespace, settings: ExperimentSettings) -> int:
    """The one-shot open-loop service drill (``serve``).

    Everything on stdout is deterministic (the ``service-smoke`` CI job
    diffs ``--jobs 1`` against ``--jobs 2``); wall-clock throughput goes
    to stderr.
    """
    import time

    from repro.experiments import ext_service

    fast = args.fast
    rate = args.rate if args.rate is not None else (4.0 if fast else 2.0)
    submissions = args.submissions if args.submissions is not None else (
        1500 if fast else 20_000
    )
    window_s = args.window_s if args.window_s is not None else (
        20.0 if fast else 60.0
    )
    schedulers = (
        args.schedulers or ("nimblock,prema" if fast else "nimblock")
    ).split(",")
    started = time.perf_counter()
    print(ext_service.serve_report(
        rate=rate,
        burstiness=args.burstiness,
        submissions=submissions,
        window_ms=window_s * 1000.0,
        schedulers=[name.strip() for name in schedulers if name.strip()],
        admission=args.admission or "shed",
        seed=args.seed,
        jobs=args.jobs,
        mode=args.mode,
        replay=not args.no_replay,
    ))
    wall_s = time.perf_counter() - started
    print(
        f"serve: {len(schedulers)} run(s) x {submissions} submissions "
        f"in {wall_s:.1f}s wall",
        file=sys.stderr,
    )
    return EXIT_OK


def _run_cluster(
    args: argparse.Namespace, settings: ExperimentSettings
) -> int:
    """The one-shot multi-board fleet drill (``cluster``).

    Everything on stdout is deterministic and independent of ``--jobs``
    (the ``cluster-determinism`` CI job diffs ``--jobs 1`` against
    ``--jobs 4``); wall-clock notes go to stderr.
    """
    from repro.facade import cluster_report as run_fleet

    mix = None
    if args.mix:
        mix = tuple(
            name.strip() for name in args.mix.split(",") if name.strip()
        )
    print(run_fleet(
        num_boards=args.boards,
        placement=args.placement,
        scheduler=args.scheduler or "nimblock",
        admission=args.admission,
        mix=mix,
        seed=args.seed,
        num_events=args.events or settings.num_events * args.boards,
        rate_multiplier=args.rate_multiplier * args.boards,
        fault_rate=args.fault_rate or 0.0,
        fault_scenario=args.scenario,
        jobs=args.jobs,
        as_json=args.json,
        mode=args.mode,
        replay=not args.no_replay,
    ), end="")
    return EXIT_OK


def _run_tune(args: argparse.Namespace, settings: ExperimentSettings) -> int:
    """The closed-loop remediation drill (``tune``).

    Everything on stdout is deterministic and independent of ``--jobs``
    (the ``tune-determinism`` CI job diffs ``--jobs 1`` against
    ``--jobs 2``); wall-clock notes go to stderr.
    """
    import time

    from repro.facade import tune_report

    fast = args.fast
    rate = args.rate if args.rate is not None else (2.0 if fast else 1.0)
    submissions = args.submissions if args.submissions is not None else (
        240 if fast else 600
    )
    window_s = args.window_s if args.window_s is not None else 10.0
    started = time.perf_counter()
    print(tune_report(
        args.scheduler or "nimblock",
        admission=args.admission or "unbounded",
        rate=rate,
        burst_multiplier=args.burst,
        seed=args.seed,
        submissions=submissions,
        window_ms=window_s * 1000.0,
        jobs=args.jobs,
        as_json=args.json,
        mode=args.mode,
    ), end="")
    print(
        f"tune: 2 runs x {submissions} submissions in "
        f"{time.perf_counter() - started:.1f}s wall",
        file=sys.stderr,
    )
    return EXIT_OK


def _run_trace(args: argparse.Namespace, settings: ExperimentSettings) -> int:
    """Export one observed run (``trace``) as Chrome JSON or JSONL."""
    import json

    from repro.observe.aggregate import observed_run
    from repro.observe.exporters import (
        trace_to_chrome,
        trace_to_jsonl,
        validate_chrome_trace,
    )
    from repro.observe.spans import expected_span_count
    from repro.workload.scenarios import scenario_sequence

    scheduler = args.scheduler or "nimblock"
    sequence = scenario_sequence(
        _workload_scenario(args.workload), args.seed, settings.num_events
    )
    hypervisor, _ = observed_run(
        scheduler, sequence, _fault_config(args, default_rate=0.0)
    )
    if args.format == "chrome":
        payload = trace_to_chrome(
            hypervisor.trace,
            label=scheduler,
            num_slots=hypervisor.config.num_slots,
        )
        spans = validate_chrome_trace(payload)
        assert spans == expected_span_count(hypervisor.trace)
        text = json.dumps(payload, sort_keys=True) + "\n"
        note = f"chrome trace: {spans} spans"
    else:
        text = trace_to_jsonl(hypervisor.trace)
        note = f"jsonl trace: {len(hypervisor.trace)} events"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{note} -> {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
        print(note, file=sys.stderr)
    return EXIT_OK


def _run_stats(args: argparse.Namespace, settings: ExperimentSettings) -> int:
    """Emit merged Prometheus metrics for a small sweep (``stats``)."""
    from repro.observe.aggregate import collect_metrics
    from repro.observe.exporters import snapshot_to_prometheus
    from repro.workload.scenarios import scenario_sequence

    scenario = _workload_scenario(args.workload)
    sequences = [
        scenario_sequence(scenario, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    merged = collect_metrics(
        [args.scheduler or "nimblock"], sequences,
        fault_config=_fault_config(args, default_rate=0.0),
        jobs=args.jobs,
        admission=args.admission,
        seed=args.seed,
    )
    sys.stdout.write(snapshot_to_prometheus(merged))
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    settings = ExperimentSettings.from_env()
    if args.sequences is not None or args.events is not None:
        settings = ExperimentSettings(
            num_sequences=args.sequences or settings.num_sequences,
            num_events=args.events or settings.num_events,
        )
    try:
        if args.experiment == "chaos":
            return _run_chaos(args, settings)
        if args.experiment == "cluster":
            return _run_cluster(args, settings)
        if args.experiment == "overload":
            return _run_overload(args, settings)
        if args.experiment == "serve":
            return _run_serve(args, settings)
        if args.experiment == "trace":
            return _run_trace(args, settings)
        if args.experiment == "stats":
            return _run_stats(args, settings)
        if args.experiment == "tune":
            return _run_tune(args, settings)
        cache = RunCache(cache_dir=args.cache_dir, jobs=args.jobs)
        names = (
            sorted(experiment_names())
            if args.experiment == "all"
            else [args.experiment]
        )
        for name in names:
            result = get_experiment(name).run(
                settings, cache=cache, jobs=args.jobs, mode=args.mode
            )
            print(result.text)
            print()
    except (AdmissionError, InvariantViolation) as error:
        # Robustness failures (admission misconfiguration, invariant
        # breaches) are usage-grade: something about the requested run
        # itself is wrong, not the experiment pipeline.
        print(f"{args.experiment}: {error}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as error:
        print(f"{args.experiment}: {error}", file=sys.stderr)
        return EXIT_ERROR
    except BrokenPipeError:
        # Downstream closed early (e.g. `nimblock-repro fig5 | head`);
        # detach stdout so interpreter shutdown doesn't re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK
    if args.cache_dir:
        print(
            f"run cache: {cache.simulations} simulations, "
            f"{cache.disk_hits} disk hits, {cache.memory_hits} memory hits "
            f"({args.cache_dir})",
            file=sys.stderr,
        )
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
