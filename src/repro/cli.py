"""Command-line entry point regenerating every table and figure.

Examples
--------
::

    nimblock-repro table2
    nimblock-repro fig5 --sequences 3 --events 12
    nimblock-repro all --sequences 2 --events 10
    nimblock-repro report --jobs 4 --cache-dir .runcache
    nimblock-repro chaos --scenario transient --fault-rate 0.05 --seed 1
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.experiments import (
    ext_batching,
    ext_capacity,
    ext_estimates,
    ext_faults,
    ext_hetero,
    ext_interconnect,
    ext_mixes,
    ext_scaleout,
    ext_schedulers,
    ext_seeds,
    ext_utilization,
    fig2_modes,
    fig4_taskgraph,
    fig5_response,
    fig6_tail,
    fig7_deadlines,
    fig8_breakdown,
    fig9_ablation,
    fig10_alexnet,
    fig11_throughput,
    overhead,
    report,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import ExperimentSettings, RunCache
from repro.workload.scenarios import CHAOS_SCENARIOS, SCENARIOS


def _needs_runs(module) -> bool:
    return module not in (table1, table2, overhead)


_EXPERIMENTS: Dict[str, object] = {
    "fig2": fig2_modes,
    "fig4": fig4_taskgraph,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "fig5": fig5_response,
    "fig6": fig6_tail,
    "fig7": fig7_deadlines,
    "fig8": fig8_breakdown,
    "fig9": fig9_ablation,
    "fig10": fig10_alexnet,
    "fig11": fig11_throughput,
    "overhead": overhead,
    "ext-faults": ext_faults,
    "ext-interconnect": ext_interconnect,
    "ext-scaleout": ext_scaleout,
    "ext-mixes": ext_mixes,
    "ext-estimates": ext_estimates,
    "ext-schedulers": ext_schedulers,
    "ext-batching": ext_batching,
    "ext-hetero": ext_hetero,
    "ext-utilization": ext_utilization,
    "ext-seeds": ext_seeds,
    "ext-capacity": ext_capacity,
    "report": report,
}


def _run_one(
    name: str,
    cache: RunCache,
    settings: ExperimentSettings,
) -> str:
    module = _EXPERIMENTS[name]
    if _needs_runs(module):
        result = module.run(cache=cache, settings=settings)
    else:
        result = module.run()
    return module.format_result(result)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="nimblock-repro",
        description=(
            "Regenerate the tables and figures of 'Nimblock: Scheduling "
            "for Fine-grained FPGA Sharing through Virtualization' "
            "(ISCA 2023) on the simulated ZCU106 overlay."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "chaos"],
        help=(
            "which table/figure to regenerate ('all' runs everything; "
            "'chaos' runs a one-shot fault-injection drill)"
        ),
    )
    parser.add_argument(
        "--sequences", type=int, default=None,
        help="number of random event sequences (paper: 10)",
    )
    parser.add_argument(
        "--events", type=int, default=None,
        help="events per sequence (paper: 20)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help=(
            "worker processes for the parallel sweep executor "
            "(default: REPRO_JOBS or 1; results are identical at any "
            "worker count)"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR") or None,
        help=(
            "persistent on-disk run cache; repeated invocations reuse "
            "completed simulations (default: REPRO_CACHE_DIR, else "
            "memory-only)"
        ),
    )
    chaos = parser.add_argument_group(
        "chaos", "options for the 'chaos' fault-injection drill"
    )
    chaos.add_argument(
        "--scenario", default="mixed",
        choices=sorted(s.name for s in CHAOS_SCENARIOS),
        help="which fault scenario to inject (default: mixed)",
    )
    chaos.add_argument(
        "--fault-rate", type=float, default=0.05,
        help="fault-rate knob; 0 disables injection entirely (default: 0.05)",
    )
    chaos.add_argument(
        "--seed", type=int, default=1,
        help="workload and fault-stream seed (default: 1)",
    )
    chaos.add_argument(
        "--workload", default="stress",
        choices=sorted(s.name for s in SCENARIOS),
        help="congestion scenario driving arrivals (default: stress)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    settings = ExperimentSettings.from_env()
    if args.sequences is not None or args.events is not None:
        settings = ExperimentSettings(
            num_sequences=args.sequences or settings.num_sequences,
            num_events=args.events or settings.num_events,
        )
    if args.experiment == "chaos":
        try:
            print(ext_faults.chaos_report(
                scenario_name=args.scenario,
                fault_rate=args.fault_rate,
                seed=args.seed,
                num_events=args.events or settings.num_events,
                workload_name=args.workload,
            ))
        except ReproError as error:
            print(f"chaos: {error}", file=sys.stderr)
            return 2
        return 0
    cache = RunCache(cache_dir=args.cache_dir, jobs=args.jobs)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_one(name, cache, settings))
        print()
    if args.cache_dir:
        print(
            f"run cache: {cache.simulations} simulations, "
            f"{cache.disk_hits} disk hits, {cache.memory_hits} memory hits "
            f"({args.cache_dir})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
