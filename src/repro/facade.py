"""One-call simulation facade over the hypervisor stack.

:func:`simulate` wires together the pieces a library consumer otherwise
assembles by hand — scheduler construction, workload generation, fault
injection and (optionally) the :mod:`repro.observe` instrumentation —
and returns a :class:`SimulationRun` bundling the finished hypervisor,
its per-application results and the attached observer.

>>> from repro import simulate
>>> run = simulate("nimblock", scenario="stress", seed=1, num_events=5)
>>> len(run.results) > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.faults.models import FaultConfig
from repro.hypervisor.results import AppResult
from repro.workload.events import EventSequence


@dataclass(frozen=True)
class SimulationRun:
    """One finished simulation: hypervisor, results and observer."""

    hypervisor: object
    results: Tuple[AppResult, ...]
    observer: Optional[object] = None

    @property
    def trace(self):
        """The run's full :class:`~repro.sim.trace.Trace` event stream."""
        return self.hypervisor.trace

    def spans(self) -> List[object]:
        """The trace folded into :class:`~repro.observe.spans.Span` rows."""
        from repro.observe.spans import build_spans

        return build_spans(self.trace)

    def metrics(self) -> Optional[dict]:
        """The observer's metrics snapshot, or ``None`` if unobserved."""
        if self.observer is None:
            return None
        return self.observer.snapshot()


def simulate(
    scheduler: str = "nimblock",
    *,
    scenario: str = "stress",
    seed: int = 1,
    num_events: Optional[int] = None,
    sequence: Optional[EventSequence] = None,
    config: Optional[SystemConfig] = None,
    faults: Optional[FaultConfig] = None,
    observe: bool = False,
    mode: str = "full",
) -> SimulationRun:
    """Run one workload under one scheduler and return everything.

    ``sequence`` overrides the (``scenario``, ``seed``, ``num_events``)
    workload generation; ``faults`` attaches a seeded fault injector;
    ``observe=True`` attaches :class:`~repro.observe.Instrumentation`
    (never changing simulation behaviour — traces stay byte-identical).
    ``mode="metrics"`` skips trace rows entirely: counters and observer
    metrics stay exact, while row-reading accessors (``run.trace.events``,
    ``run.spans()``) raise :class:`~repro.errors.ExperimentError`.
    """
    from repro.experiments.runner import ExperimentSettings
    from repro.hypervisor.hypervisor import Hypervisor
    from repro.schedulers.registry import make_scheduler
    from repro.workload.scenarios import SCENARIOS, scenario_sequence

    if sequence is None:
        match = [s for s in SCENARIOS if s.name == scenario]
        if not match:
            raise ExperimentError(
                f"unknown scenario {scenario!r}; known: "
                f"{', '.join(sorted(s.name for s in SCENARIOS))}"
            )
        if num_events is None:
            num_events = ExperimentSettings.from_env().num_events
        sequence = scenario_sequence(match[0], seed, num_events)

    injector = None
    if faults is not None and faults.enabled:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(faults)

    observer = None
    if observe:
        from repro.observe.instrument import Instrumentation

        observer = Instrumentation()

    hypervisor = Hypervisor(
        make_scheduler(scheduler), config=config,
        faults=injector, observer=observer, mode=mode,
    )
    for request in sequence.to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    if observer is not None:
        observer.finalize(hypervisor)
    return SimulationRun(
        hypervisor=hypervisor,
        results=tuple(hypervisor.results()),
        observer=observer,
    )


def serve(
    scheduler: str = "nimblock",
    *,
    rate: float = 2.0,
    burstiness: float = 0.0,
    seed: int = 1,
    submissions: int = 5_000,
    window_ms: float = 30_000.0,
    admission: str = "shed",
    config: Optional[SystemConfig] = None,
    snapshot_every_windows: Optional[int] = None,
    watchdog: bool = True,
    mode: str = "full",
):
    """Run one open-loop online service and return its report.

    The service counterpart of :func:`simulate`: seeded Poisson (or, with
    ``burstiness > 0``, MMPP) arrivals at ``rate`` per second drive a
    :class:`~repro.service.loop.ServiceLoop` for ``submissions``
    arrivals under ``admission`` control, with memory O(1) in the
    submission count. Returns the
    :class:`~repro.service.loop.ServiceReport` (streaming windowed
    metrics, lifetime counters, any quiescent-boundary snapshots).
    ``mode="metrics"`` drops the debugging trace ring for the fastest
    path; the report payload is byte-identical either way.

    >>> from repro import serve
    >>> report = serve("nimblock", rate=1.0, submissions=50)
    >>> report.completed + report.shed + report.dropped == report.arrived
    True
    """
    from repro.service.loop import ServiceLoop
    from repro.workload.arrivals import service_rate_process

    arrivals = service_rate_process(rate, seed=seed, burstiness=burstiness)
    loop = ServiceLoop(
        arrivals,
        scheduler=scheduler,
        admission=admission,
        seed=seed,
        max_submissions=submissions,
        window_ms=window_ms,
        config=config,
        snapshot_every_windows=snapshot_every_windows,
        watchdog=watchdog,
        mode=mode,
    )
    return loop.run()


def _service_summary(payload: dict, slo) -> dict:
    """One service-report payload reduced to its SLO scalars."""
    from repro.service.windows import WindowedMetrics

    windows = WindowedMetrics.from_dict(payload["windows"])
    active = [w for w in windows.windows if w.arrived > 0]
    attainment = 1.0 if not active else sum(
        1 for w in active if slo.met(w.p(99.0), w.loss_frac)
    ) / len(active)
    arrived = payload["arrived"]
    lost = payload["shed"] + payload["dropped"]
    summary = {
        "attainment": attainment,
        "p99_ms": windows.total().sketch.percentile(99.0),
        "loss_frac": (lost / arrived) if arrived else 0.0,
        "arrived": arrived,
        "completed": payload["completed"],
        "shed": payload["shed"],
        "dropped": payload["dropped"],
        "windows": len(active),
    }
    if "applies" in payload:
        summary["applies"] = payload["applies"]
        summary["decisions"] = payload["decisions"]
    return summary


def _post_apply_summary(payload: dict, slo, apply_window: int) -> dict:
    """SLO attainment over the windows after a remediation apply.

    Counts every *active* window (arrivals or completions) past the
    apply boundary: an unprotected baseline keeps failing its backlog
    drain there, which arrival-only accounting would hide.
    """
    from repro.service.windows import WindowedMetrics

    windows = [
        w for w in WindowedMetrics.from_dict(payload["windows"]).windows
        if w.index > apply_window and (w.arrived > 0 or w.completed > 0)
    ]
    met = sum(1 for w in windows if slo.met(w.p(99.0), w.loss_frac))
    return {
        "windows": len(windows),
        "met": met,
        "attainment": (met / len(windows)) if windows else 1.0,
    }


def tune(
    scheduler: str = "nimblock",
    *,
    admission: str = "unbounded",
    rate: float = 2.0,
    burst_multiplier: float = 4.0,
    calm_s: float = 60.0,
    burst_s: float = 120.0,
    recover_s: float = 240.0,
    seed: int = 1,
    submissions: int = 600,
    window_ms: float = 10_000.0,
    jobs: Optional[int] = None,
    mode: str = "full",
    autotune=None,
) -> dict:
    """The closed-loop remediation drill: static baseline vs autotuned.

    Runs the same seeded overload episode — ``calm_s`` seconds at
    ``rate``/s, then ``burst_s`` seconds at ``rate * burst_multiplier``,
    then ``recover_s`` seconds back at ``rate`` — through two
    :class:`~repro.service.loop.ServiceLoop` runs that differ only in
    whether the :mod:`repro.autotune` pipeline is armed. Both runs fan
    out through :func:`~repro.experiments.parallel.service_cells`, so
    the returned payload is byte-identical at any ``jobs`` count.

    Returns a JSON-safe dict: the episode parameters, the SLO, a
    ``baseline`` and a ``tuned`` summary (attainment / p99 / loss, plus
    the tuned run's decision log), and a sha256 ``digest`` over the
    whole canonical payload — the surface the ``tune-determinism`` CI
    job pins.
    """
    import hashlib
    import json

    from repro.autotune import AutotuneConfig
    from repro.experiments.parallel import service_cells

    if autotune is None:
        autotune = AutotuneConfig()
    slo = autotune.slo
    phases = (
        (calm_s, rate),
        (burst_s, rate * burst_multiplier),
        (recover_s, rate),
    )
    arrival_spec = ("episode", (("phases", phases),))
    base = (
        scheduler, admission, rate, 0.0, seed, submissions, window_ms,
        mode, True,
    )
    baseline_payload, tuned_payload = service_cells(
        [base + (None, arrival_spec), base + (autotune, arrival_spec)],
        jobs=jobs,
    )
    payload = {
        "scheduler": scheduler,
        "admission": admission,
        "seed": seed,
        "submissions": submissions,
        "window_ms": window_ms,
        "arrivals": baseline_payload["arrivals"],
        "episode": {
            "rate_per_s": rate,
            "burst_multiplier": burst_multiplier,
            "calm_s": calm_s,
            "burst_s": burst_s,
            "recover_s": recover_s,
        },
        "slo": {"p99_ms": slo.p99_ms, "max_loss_frac": slo.max_loss_frac},
        "baseline": _service_summary(baseline_payload, slo),
        "tuned": _service_summary(tuned_payload, slo),
    }
    applied = [
        d["window"] for d in payload["tuned"].get("decisions", ())
        if d.get("applied")
    ]
    if applied:
        apply_window = min(applied)
        payload["post_apply"] = {
            "window": apply_window,
            "baseline": _post_apply_summary(
                baseline_payload, slo, apply_window
            ),
            "tuned": _post_apply_summary(tuned_payload, slo, apply_window),
        }
    blob = json.dumps(payload, sort_keys=True)
    payload["digest"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return payload


def tune_report(
    scheduler: str = "nimblock",
    *,
    admission: str = "unbounded",
    rate: float = 2.0,
    burst_multiplier: float = 4.0,
    seed: int = 1,
    submissions: int = 600,
    window_ms: float = 10_000.0,
    jobs: Optional[int] = None,
    as_json: bool = False,
    mode: str = "full",
) -> str:
    """The ``repro tune`` drill as deterministic text (or JSON).

    With ``as_json`` the payload is dumped as canonical JSON (sorted
    keys, one trailing newline) — the byte stream the
    ``tune-determinism`` CI job diffs across ``--jobs`` values.
    """
    import json

    from repro.experiments.runner import format_table

    payload = tune(
        scheduler,
        admission=admission,
        rate=rate,
        burst_multiplier=burst_multiplier,
        seed=seed,
        submissions=submissions,
        window_ms=window_ms,
        jobs=jobs,
        mode=mode,
    )
    if as_json:
        return json.dumps(payload, sort_keys=True) + "\n"
    headers = ["run", "attainment", "p99 (ms)", "loss", "completed",
               "shed", "dropped", "applies"]
    rows: List[List[object]] = []
    for name in ("baseline", "tuned"):
        summary = payload[name]
        rows.append([
            name,
            f"{summary['attainment']:.3f}",
            f"{summary['p99_ms']:.1f}",
            f"{summary['loss_frac']:.3f}",
            summary["completed"],
            summary["shed"],
            summary["dropped"],
            summary.get("applies", 0),
        ])
    title = (
        f"Closed-loop remediation drill: scheduler={scheduler}, "
        f"admission={admission}, {payload['arrivals']}, seed={seed}"
    )
    lines = [title, format_table(headers, rows)]
    for decision in payload["tuned"].get("decisions", ()):
        applied = decision.get("applied")
        symptoms = ",".join(
            s["kind"] for s in decision.get("symptoms", ())
        ) or "none"
        lines.append(
            f"  window {decision.get('window')}: symptoms=[{symptoms}] "
            + (
                f"applied {applied}"
                if applied else
                f"no patch ({decision.get('skipped') or 'no winner'})"
            )
        )
    post = payload.get("post_apply")
    if post:
        lines.append(
            f"  post-apply (window > {post['window']}): baseline "
            f"{post['baseline']['met']}/{post['baseline']['windows']} "
            f"windows met SLO, tuned "
            f"{post['tuned']['met']}/{post['tuned']['windows']}"
        )
    lines.append(f"payload sha256: {payload['digest']}")
    return "\n".join(lines) + "\n"


def fleet(
    num_boards: int = 4,
    *,
    placement: str = "least_loaded",
    scheduler: str = "nimblock",
    admission: Optional[str] = None,
    mix: Optional[Tuple[str, ...]] = None,
    seed: int = 1,
    num_events: Optional[int] = None,
    rate_multiplier: float = 4.0,
    fault_rate: float = 0.0,
    fault_scenario: str = "mixed",
    config: Optional[SystemConfig] = None,
    jobs: Optional[int] = None,
    sequence: Optional[EventSequence] = None,
    mode: str = "full",
    replay: bool = True,
    autotune=None,
):
    """Run one multi-board fleet under the burst workload; the report.

    The fleet counterpart of :func:`simulate`: builds a
    :class:`~repro.cluster.Cluster` over ``num_boards`` boards (rotating
    the heterogeneous default mix unless ``mix`` is given), admits and
    places the ext-overload burst stream, simulates every board (sharded
    over ``jobs`` worker processes — any value is byte-identical) and
    returns the merged :class:`~repro.cluster.ClusterReport`.
    ``autotune`` (an :class:`~repro.autotune.AutotuneConfig`) arms the
    per-board closed-loop remediation pipeline.

    >>> from repro import fleet
    >>> report = fleet(2, num_events=6, jobs=1)
    >>> report.retired
    6
    """
    from repro.cluster import Cluster, fleet_profiles
    from repro.cluster.profiles import DEFAULT_FLEET_MIX
    from repro.experiments.ext_overload import (
        OVERLOAD_WORKLOAD,
        study_sequence,
    )
    from repro.experiments.runner import ExperimentSettings
    from repro.workload.scenarios import chaos_scenario

    faults = None
    if fault_rate > 0.0:
        faults = chaos_scenario(fault_scenario).fault_config(
            fault_rate, seed=seed
        )
    if sequence is None:
        if num_events is None:
            num_events = (
                ExperimentSettings.from_env().num_events * num_boards
            )
        sequence = study_sequence(
            OVERLOAD_WORKLOAD, seed, num_events, rate_multiplier
        )
    fleet = Cluster(
        fleet_profiles(num_boards, mix or DEFAULT_FLEET_MIX),
        placement=placement,
        scheduler=scheduler,
        config=config,
        admission=admission,
        faults=faults,
        seed=seed,
    )
    fleet.submit_sequence(sequence)
    return fleet.run(jobs=jobs, mode=mode, replay=replay, autotune=autotune)


def cluster_report(
    num_boards: int = 4,
    *,
    placement: str = "least_loaded",
    scheduler: str = "nimblock",
    admission: Optional[str] = None,
    mix: Optional[Tuple[str, ...]] = None,
    seed: int = 1,
    num_events: Optional[int] = None,
    rate_multiplier: float = 4.0,
    fault_rate: float = 0.0,
    fault_scenario: str = "mixed",
    jobs: Optional[int] = None,
    as_json: bool = False,
    mode: str = "full",
    replay: bool = True,
) -> str:
    """The ``repro cluster`` drill as deterministic text.

    With ``as_json`` the merged snapshot is dumped as canonical JSON
    (sorted keys, one trailing newline) — the byte stream the
    ``cluster-determinism`` CI job diffs across ``--jobs`` values.
    """
    import json

    from repro.experiments.runner import format_table

    report = fleet(
        num_boards,
        placement=placement,
        scheduler=scheduler,
        admission=admission,
        mix=mix,
        seed=seed,
        num_events=num_events,
        rate_multiplier=rate_multiplier,
        fault_rate=fault_rate,
        fault_scenario=fault_scenario,
        jobs=jobs,
        mode=mode,
        replay=replay,
    )
    if as_json:
        return json.dumps(report.to_dict(), sort_keys=True) + "\n"
    headers = ["board", "profile", "slots", "apps", "retired", "shed",
               "items", "busy (s)", "energy (J)", "faults"]
    rows: List[List[object]] = []
    for payload in report.boards:
        rows.append([
            payload["board"],
            payload["profile"]["name"],
            payload["profile"]["num_slots"],
            payload["submitted"],
            payload["retired"],
            payload["shed"],
            payload["items_done"],
            payload["run_busy_ms"] / 1000.0,
            payload["energy_j"],
            payload["faults"]["total"],
        ])
    title = (
        f"Cluster drill: {num_boards} board(s), placement={placement}, "
        f"scheduler={scheduler}, admission={admission or 'none'}, "
        f"seed={seed}"
    )
    summary = (
        f"fleet: retired={report.retired} shed={report.shed} "
        f"items={report.items_done} "
        f"throughput={report.throughput_items_per_s:.3f} items/s "
        f"p50={report.quantile_ms(0.5):.1f} ms "
        f"p99={report.quantile_ms(0.99):.1f} ms "
        f"makespan={report.makespan_ms:.1f} ms "
        f"energy={report.energy_j:.1f} J\n"
        f"snapshot sha256: {report.snapshot_digest()}"
    )
    return (
        f"{title}\n{format_table(headers, rows)}\n{summary}\n"
    )
