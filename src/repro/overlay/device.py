"""Runtime model of the virtualized FPGA: slots and the configuration port.

Two hardware constraints from the paper shape every scheduler:

* a slot hosts at most one task, and must be partially reconfigured
  (~80 ms) before hosting a different one;
* only one reconfiguration can be in flight at a time, because the device
  has a single configuration access port (CAP).

:class:`FPGADevice` enforces both as state machines on top of the
discrete-event engine; violations raise instead of silently corrupting a
schedule, which the property-based tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, List, Optional

from collections import deque

from repro.errors import ReconfigurationError, SlotStateError
from repro.sim.engine import SimulationEngine


class SlotPhase(str, Enum):
    """Lifecycle of one reconfigurable slot."""

    EMPTY = "empty"
    RECONFIGURING = "reconfiguring"
    OCCUPIED = "occupied"


class SlotHealth(str, Enum):
    """Fault status of one reconfigurable slot (see ``repro.faults``).

    * ``HEALTHY`` — fully usable (the only state in a fault-free run);
    * ``FAULTY`` — hit by a transient (SEU-style) fault; unusable until the
      scrub/repair completes, at which point it returns to ``HEALTHY``;
    * ``DEAD`` — permanently failed or blacklisted; never usable again.
    """

    HEALTHY = "healthy"
    FAULTY = "faulty"
    DEAD = "dead"


@dataclass
class Slot:
    """One reconfigurable region at runtime.

    ``occupant`` is an opaque handle owned by the hypervisor (a runtime task
    instance). ``busy`` is True while the hosted logic is processing a batch
    item; an occupied, non-busy slot is "waiting for its next batch", the
    only state in which Nimblock may preempt it.
    """

    index: int
    phase: SlotPhase = SlotPhase.EMPTY
    occupant: Optional[object] = None
    busy: bool = False
    health: SlotHealth = SlotHealth.HEALTHY
    #: Device-installed hook fired on every phase/health transition so the
    #: device can invalidate its availability caches. ``busy`` flips do not
    #: notify — they never change ``is_free``/``is_healthy``.
    on_availability_change: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    #: Device-owned set of idle-resident slot indices (occupied, not
    #: busy). Maintained inline by every transition below so the launch
    #: loop iterates exactly the slots that could start an item instead
    #: of scanning the whole board each pass. None for a free-standing
    #: slot (unit tests).
    idle_registry: Optional[set] = field(
        default=None, repr=False, compare=False
    )

    def _notify(self) -> None:
        if self.on_availability_change is not None:
            self.on_availability_change()

    def host(self, occupant: object) -> None:
        """Complete a reconfiguration: the slot now hosts ``occupant``."""
        if self.phase != SlotPhase.RECONFIGURING:
            raise SlotStateError(
                f"slot {self.index} cannot host from phase {self.phase}"
            )
        self.phase = SlotPhase.OCCUPIED
        self.occupant = occupant
        self.busy = False
        if self.idle_registry is not None:
            self.idle_registry.add(self.index)
        self._notify()

    def begin_reconfig(self) -> None:
        """Enter the reconfiguring phase (evicting any previous occupant)."""
        if self.phase == SlotPhase.RECONFIGURING:
            raise SlotStateError(f"slot {self.index} is already reconfiguring")
        if self.busy:
            raise SlotStateError(
                f"slot {self.index} cannot be reconfigured while running"
            )
        self.phase = SlotPhase.RECONFIGURING
        self.occupant = None
        if self.idle_registry is not None:
            self.idle_registry.discard(self.index)
        self._notify()

    def clear(self) -> None:
        """Release the slot (task finished or was preempted)."""
        if self.phase != SlotPhase.OCCUPIED:
            raise SlotStateError(
                f"slot {self.index} cannot clear from phase {self.phase}"
            )
        if self.busy:
            raise SlotStateError(
                f"slot {self.index} cannot be cleared while running an item"
            )
        self.phase = SlotPhase.EMPTY
        self.occupant = None
        if self.idle_registry is not None:
            self.idle_registry.discard(self.index)
        self._notify()

    def start_item(self) -> None:
        """Mark the hosted logic as running one batch item."""
        if self.phase != SlotPhase.OCCUPIED:
            raise SlotStateError(
                f"slot {self.index} cannot run items in phase {self.phase}"
            )
        if self.busy:
            raise SlotStateError(f"slot {self.index} is already running an item")
        self.busy = True
        if self.idle_registry is not None:
            self.idle_registry.discard(self.index)

    def finish_item(self) -> None:
        """Mark the current batch item as complete."""
        if not self.busy:
            raise SlotStateError(f"slot {self.index} finished an item it never started")
        # busy implies OCCUPIED (start_item requires it, and no phase
        # transition is legal while busy), so the slot is idle-resident.
        self.busy = False
        if self.idle_registry is not None:
            self.idle_registry.add(self.index)

    def interrupt_item(self) -> None:
        """Abort the in-flight batch item (a fault killed the slot logic).

        The item's partial work is lost; the hypervisor cancels the
        completion event and rolls the task back to its last batch
        boundary before calling this.
        """
        if not self.busy:
            raise SlotStateError(
                f"slot {self.index} has no in-flight item to interrupt"
            )
        self.busy = False
        if self.idle_registry is not None:
            self.idle_registry.add(self.index)

    def abort_reconfig(self) -> None:
        """A partial reconfiguration failed; return the slot to EMPTY."""
        if self.phase != SlotPhase.RECONFIGURING:
            raise SlotStateError(
                f"slot {self.index} cannot abort a reconfiguration from "
                f"phase {self.phase}"
            )
        self.phase = SlotPhase.EMPTY
        self.occupant = None
        self._notify()

    def mark_faulty(self) -> None:
        """A transient fault hit the slot; unusable until repaired."""
        if self.phase == SlotPhase.OCCUPIED:
            raise SlotStateError(
                f"slot {self.index} must be evicted before marking faulty"
            )
        if self.health is SlotHealth.DEAD:
            raise SlotStateError(f"slot {self.index} is already dead")
        self.health = SlotHealth.FAULTY
        self._notify()

    def mark_dead(self) -> None:
        """Permanently fail (blacklist) the slot."""
        if self.phase == SlotPhase.OCCUPIED:
            raise SlotStateError(
                f"slot {self.index} must be evicted before marking dead"
            )
        self.health = SlotHealth.DEAD
        self._notify()

    def repair(self) -> None:
        """Complete the scrub of a transient fault; slot usable again."""
        if self.health is not SlotHealth.FAULTY:
            raise SlotStateError(
                f"slot {self.index} cannot repair from health {self.health}"
            )
        self.health = SlotHealth.HEALTHY
        self._notify()

    @property
    def is_healthy(self) -> bool:
        """True unless a fault has (temporarily or permanently) hit the slot."""
        return self.health is SlotHealth.HEALTHY

    @property
    def is_free(self) -> bool:
        """True if the slot can accept a new reconfiguration immediately."""
        return self.phase == SlotPhase.EMPTY and self.health is SlotHealth.HEALTHY


@dataclass
class _ReconfigRequest:
    slot: Slot
    duration_ms: float
    on_done: Callable[[float], None]


class ReconfigurationPort:
    """The serialized CAP: at most one partial reconfiguration in flight.

    Requests queue FIFO. Each request puts its slot into
    ``RECONFIGURING`` immediately (the slot is unusable while queued, as on
    real hardware where the hypervisor has already decoupled it) and calls
    ``on_done(now)`` once the bits are written.
    """

    def __init__(self, engine: SimulationEngine) -> None:
        self._engine = engine
        self._queue: Deque[_ReconfigRequest] = deque()
        self._active: Optional[_ReconfigRequest] = None
        self.total_reconfigs = 0
        self.busy_ms = 0.0

    @property
    def is_busy(self) -> bool:
        """True while a reconfiguration is in flight."""
        return self._active is not None

    @property
    def queue_depth(self) -> int:
        """Number of requests waiting behind the active one."""
        return len(self._queue)

    def request(
        self,
        slot: Slot,
        duration_ms: float,
        on_done: Callable[[float], None],
    ) -> None:
        """Queue a reconfiguration of ``slot`` taking ``duration_ms``."""
        if duration_ms < 0:
            raise ReconfigurationError(f"negative duration {duration_ms}")
        slot.begin_reconfig()
        self._queue.append(_ReconfigRequest(slot, duration_ms, on_done))
        self._pump()

    def _pump(self) -> None:
        if self._active is not None or not self._queue:
            return
        request = self._queue.popleft()
        self._active = request
        self.total_reconfigs += 1
        self.busy_ms += request.duration_ms
        self._engine.schedule_delay(request.duration_ms, self._complete, -1)

    def _complete(self, now: float) -> None:
        if self._active is None:
            raise ReconfigurationError("CAP completion with no active request")
        request = self._active
        self._active = None
        request.on_done(now)
        self._pump()


class FPGADevice:
    """The virtualized board: uniform slots plus one reconfiguration port."""

    def __init__(self, engine: SimulationEngine, num_slots: int) -> None:
        if num_slots < 1:
            raise SlotStateError(f"num_slots must be >= 1, got {num_slots}")
        self._slots: List[Slot] = [Slot(i) for i in range(num_slots)]
        self.port = ReconfigurationPort(engine)
        # Availability caches, invalidated by the slots' change hook: the
        # schedulers probe for the lowest free slot on every decision-pass
        # iteration, while slot phase/health transitions are far rarer.
        self._free_cache: Optional[List[Slot]] = None
        self._healthy_cache: Optional[List[Slot]] = None
        #: Indices of occupied, non-busy slots (see Slot.idle_registry).
        self.idle_residents: set = set()
        for slot in self._slots:
            slot.on_availability_change = self._invalidate_availability
            slot.idle_registry = self.idle_residents

    def _invalidate_availability(self) -> None:
        self._free_cache = None
        self._healthy_cache = None

    @property
    def num_slots(self) -> int:
        """Number of reconfigurable slots."""
        return len(self._slots)

    @property
    def slots(self) -> List[Slot]:
        """All slots in index order (live objects, not copies)."""
        return self._slots

    def slot(self, index: int) -> Slot:
        """The slot at ``index``."""
        if not 0 <= index < len(self._slots):
            raise SlotStateError(f"slot index {index} out of range")
        return self._slots[index]

    def free_slots(self) -> List[Slot]:
        """Slots that can accept a reconfiguration right now (read-only)."""
        cache = self._free_cache
        if cache is None:
            cache = self._free_cache = [
                slot for slot in self._slots if slot.is_free
            ]
        return cache

    def lowest_free_slot_index(self) -> Optional[int]:
        """Index of the lowest-numbered free slot, or None (cached)."""
        free = self.free_slots()
        return free[0].index if free else None

    def occupied_slots(self) -> List[Slot]:
        """Slots currently hosting a task."""
        return [slot for slot in self._slots if slot.phase == SlotPhase.OCCUPIED]

    def healthy_slots(self) -> List[Slot]:
        """Slots not currently faulted or blacklisted (read-only)."""
        cache = self._healthy_cache
        if cache is None:
            cache = self._healthy_cache = [
                slot for slot in self._slots if slot.is_healthy
            ]
        return cache

    def dead_slots(self) -> List[Slot]:
        """Permanently failed (blacklisted) slots."""
        return [slot for slot in self._slots if slot.health is SlotHealth.DEAD]

    def utilization(self) -> float:
        """Fraction of slots occupied or reconfiguring."""
        used = sum(1 for slot in self._slots if not slot.is_free)
        return used / len(self._slots)
