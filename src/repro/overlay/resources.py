"""FPGA resource accounting (Table 1 of the paper).

The paper reports the per-slot and static-region utilization of the ZCU106
overlay across seven resource kinds. We encode those numbers so the
floorplanner can check that ten slots plus the static region actually fit
the device, and so Table 1 can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.errors import FloorplanError

#: Resource kinds tracked by the overlay, in Table 1 column order.
RESOURCE_KINDS: Tuple[str, ...] = (
    "DSP",
    "LUT",
    "FF",
    "Carry",
    "RAMB18",
    "RAMB36",
    "IOBuf",
)


@dataclass(frozen=True)
class ResourceVector:
    """A count per resource kind, supporting addition and comparison."""

    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.counts) != len(RESOURCE_KINDS):
            raise FloorplanError(
                f"expected {len(RESOURCE_KINDS)} resource counts, "
                f"got {len(self.counts)}"
            )
        if any(count < 0 for count in self.counts):
            raise FloorplanError(f"negative resource count in {self.counts}")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, int]) -> "ResourceVector":
        """Build a vector from a ``{kind: count}`` mapping (missing -> 0)."""
        unknown = set(mapping) - set(RESOURCE_KINDS)
        if unknown:
            raise FloorplanError(f"unknown resource kinds: {sorted(unknown)}")
        return cls(tuple(int(mapping.get(kind, 0)) for kind in RESOURCE_KINDS))

    @classmethod
    def zero(cls) -> "ResourceVector":
        """The all-zero vector."""
        return cls(tuple(0 for _ in RESOURCE_KINDS))

    def as_dict(self) -> Dict[str, int]:
        """``{kind: count}`` view of the vector."""
        return dict(zip(RESOURCE_KINDS, self.counts))

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            tuple(a + b for a, b in zip(self.counts, other.counts))
        )

    def scaled(self, factor: int) -> "ResourceVector":
        """The vector multiplied element-wise by a non-negative integer."""
        if factor < 0:
            raise FloorplanError(f"scale factor must be >= 0, got {factor}")
        return ResourceVector(tuple(count * factor for count in self.counts))

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True if every count is <= the corresponding capacity count."""
        return all(a <= b for a, b in zip(self.counts, capacity.counts))

    def utilization_of(self, capacity: "ResourceVector") -> Dict[str, float]:
        """Fractional utilization per resource kind (0 capacity -> 0.0)."""
        result = {}
        for kind, used, avail in zip(RESOURCE_KINDS, self.counts, capacity.counts):
            result[kind] = used / avail if avail else 0.0
        return result


#: Approximate total programmable-logic resources of the XCZU7EV (ZCU106).
ZCU106_RESOURCES = ResourceVector.from_mapping(
    {
        "DSP": 1728,
        "LUT": 230400,
        "FF": 460800,
        "Carry": 28800,
        "RAMB18": 624,
        "RAMB36": 312,
        "IOBuf": 52000,
    }
)

#: Table 1, "Slot" row: the paper reports a min-max range per resource kind
#: because the ten slots are uniform in area but not in exact column mix.
SLOT_UTILIZATION_RANGE: Dict[str, Tuple[int, int]] = {
    "DSP": (46, 92),
    "LUT": (9680, 12960),
    "FF": (19360, 22880),
    "Carry": (1210, 1620),
    "RAMB18": (44, 46),
    "RAMB36": (22, 23),
    "IOBuf": (1908, 2343),
}

#: Table 1, "Static" row.
STATIC_REGION_UTILIZATION = ResourceVector.from_mapping(
    {
        "DSP": 1004,
        "LUT": 122560,
        "FF": 245120,
        "Carry": 15320,
        "RAMB18": 172,
        "RAMB36": 86,
        "IOBuf": 24803,
    }
)


def slot_resource_vector(which: str = "min") -> ResourceVector:
    """A per-slot resource vector from Table 1.

    ``which`` selects the ``"min"`` or ``"max"`` end of the reported range.
    """
    if which not in ("min", "max"):
        raise FloorplanError(f"which must be 'min' or 'max', got {which!r}")
    index = 0 if which == "min" else 1
    return ResourceVector.from_mapping(
        {kind: bounds[index] for kind, bounds in SLOT_UTILIZATION_RANGE.items()}
    )
