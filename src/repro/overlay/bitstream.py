"""Partial bitstreams and the hypervisor's bitstream store (paper §2.2).

For ``n`` slots, every task carries ``n`` partial bitstreams — one per slot
— because the prototype does not use bitstream relocation. Each bitstream
has a header with interface information, batch size, HLS performance
estimates and priority level; the header is what the scheduler consumes.

The "SD card" of the prototype becomes an in-memory store with a simulated
load cost so traces account for the load-before-reconfigure step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import BitstreamError


@dataclass(frozen=True)
class BitstreamHeader:
    """Metadata attached to every partial bitstream (paper §2.2).

    ``latency_estimate_ms`` comes from the HLS report; ``batch_size`` and
    ``priority`` are user-specified; the interface fields describe the two
    memory-mapped ports (control + data) that the slot wrapper expects.
    """

    application: str
    task_id: str
    latency_estimate_ms: float
    batch_size: int
    priority: int
    control_interface: str = "axilite"
    data_interface: str = "axi4"

    def __post_init__(self) -> None:
        if self.latency_estimate_ms <= 0:
            raise BitstreamError(
                f"latency estimate for {self.task_id!r} must be > 0"
            )
        if self.batch_size < 1:
            raise BitstreamError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.priority < 1:
            raise BitstreamError(f"priority must be >= 1, got {self.priority}")


@dataclass(frozen=True)
class PartialBitstream:
    """One slot-specific partial bitstream."""

    header: BitstreamHeader
    slot: int
    size_bytes: int = 4_000_000  # typical slot-sized partial on ZU7EV

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise BitstreamError(f"slot must be >= 0, got {self.slot}")
        if self.size_bytes <= 0:
            raise BitstreamError(f"size_bytes must be > 0, got {self.size_bytes}")

    @property
    def key(self) -> Tuple[str, str, int]:
        """Unique identity (application, task, slot)."""
        return (self.header.application, self.header.task_id, self.slot)


class BitstreamStore:
    """The filesystem holding partial bitstreams (the prototype's SD card).

    ``register_task`` adds one bitstream per slot for a task, mirroring the
    paper's per-slot bitstream generation. ``load`` returns the bitstream
    plus the simulated SD-to-DRAM load time.

    With ``relocatable=True`` the store models bitstream relocation
    (the [5, 10, 23] line of work the paper cites as out of scope): a
    single slot-agnostic bitstream per task is stored and retargeted to
    any slot at load time, dividing storage by the slot count.
    """

    #: Effective SD-card read bandwidth used to cost bitstream loads.
    SD_BANDWIDTH_BYTES_PER_MS = 20_000_000 / 1000.0 * 50  # ~1 GB/s DMA-cached

    def __init__(self, num_slots: int, relocatable: bool = False) -> None:
        if num_slots < 1:
            raise BitstreamError(f"num_slots must be >= 1, got {num_slots}")
        self._num_slots = num_slots
        self._relocatable = relocatable
        self._store: Dict[Tuple[str, str, int], PartialBitstream] = {}
        self._cached: set = set()
        self.loads = 0
        self.cache_hits = 0

    @property
    def num_slots(self) -> int:
        """Slot count the store generates bitstreams for."""
        return self._num_slots

    @property
    def relocatable(self) -> bool:
        """True when one slot-agnostic bitstream per task is stored."""
        return self._relocatable

    def register_task(
        self,
        header: BitstreamHeader,
        size_bytes: int = 4_000_000,
    ) -> List[PartialBitstream]:
        """Register the task's bitstreams (one per slot, or one relocatable)."""
        slots = [0] if self._relocatable else range(self._num_slots)
        streams = []
        for slot in slots:
            stream = PartialBitstream(header, slot, size_bytes)
            if stream.key in self._store:
                raise BitstreamError(
                    f"bitstream already registered for {stream.key}"
                )
            self._store[stream.key] = stream
            streams.append(stream)
        return streams

    def register_all(
        self, headers: Iterable[BitstreamHeader], size_bytes: int = 4_000_000
    ) -> None:
        """Register every header's full per-slot bitstream set."""
        for header in headers:
            self.register_task(header, size_bytes)

    def lookup(
        self, application: str, task_id: str, slot: int
    ) -> PartialBitstream:
        """The bitstream for (application, task, slot); raises if absent.

        In relocatable mode the stored slot-agnostic bitstream satisfies
        lookups for every valid slot index.
        """
        if not 0 <= slot < self._num_slots:
            raise BitstreamError(
                f"slot {slot} out of range for a {self._num_slots}-slot store"
            )
        key = (application, task_id, 0 if self._relocatable else slot)
        try:
            return self._store[key]
        except KeyError:
            raise BitstreamError(f"no bitstream registered for {key}") from None

    def load(
        self, application: str, task_id: str, slot: int
    ) -> Tuple[PartialBitstream, float]:
        """Fetch a bitstream, returning it and the load latency in ms.

        Recently loaded bitstreams stay cached in DRAM (the hypervisor keeps
        them resident), so repeat loads are free — matching the prototype's
        load-on-demand behaviour.
        """
        stream = self.lookup(application, task_id, slot)
        self.loads += 1
        if stream.key in self._cached:
            self.cache_hits += 1
            return stream, 0.0
        self._cached.add(stream.key)
        return stream, stream.size_bytes / self.SD_BANDWIDTH_BYTES_PER_MS

    def count(self, application: Optional[str] = None) -> int:
        """Total bitstreams stored (optionally for one application)."""
        if application is None:
            return len(self._store)
        return sum(1 for key in self._store if key[0] == application)
