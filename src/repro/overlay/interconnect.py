"""Inter-slot data movement models (paper §7, future work).

On the prototype, slots communicate through the PS: a producer's output is
written to shared memory by way of the ARM core before a consumer in
another slot can read it. The paper's future-work section proposes a
Network-on-Chip for "optimized data transfer between slots".

The default model used for paper reproduction is :class:`ZeroCost` — the
benchmark task latencies were measured end-to-end on the board and already
include PS-routed transfer time, so charging it again would double-count.
The explicit models exist for the extension study
(``repro.experiments.ext_interconnect``): re-run the evaluation with
transfer costs broken out and compare PS routing against a NoC.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ReproError


class InterconnectModel(ABC):
    """Latency model for moving one item's data between producer and consumer."""

    #: Registry/display name.
    name: str = "abstract"

    @abstractmethod
    def transfer_ms(self, payload_bytes: int, same_slot: bool) -> float:
        """Latency to move ``payload_bytes`` from producer to consumer."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ZeroCost(InterconnectModel):
    """Transfers are free (folded into measured task latencies)."""

    name = "zero_cost"

    def transfer_ms(self, payload_bytes: int, same_slot: bool) -> float:
        return 0.0


class PSRouted(InterconnectModel):
    """Producer -> DDR -> ARM-mediated handoff -> consumer (the prototype).

    The ARM core orchestrates both buffer copies, so each hop pays a fixed
    software overhead plus two traversals of the PS memory path.
    """

    name = "ps_routed"

    def __init__(
        self,
        bandwidth_bytes_per_ms: float = 1.2e6,  # ~1.2 GB/s effective
        software_overhead_ms: float = 0.08,
    ) -> None:
        if bandwidth_bytes_per_ms <= 0:
            raise ReproError("bandwidth must be > 0")
        if software_overhead_ms < 0:
            raise ReproError("software overhead must be >= 0")
        self.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms
        self.software_overhead_ms = software_overhead_ms

    def transfer_ms(self, payload_bytes: int, same_slot: bool) -> float:
        if payload_bytes < 0:
            raise ReproError(f"negative payload {payload_bytes}")
        if same_slot:
            # Data stays in the slot-local buffer; only the handoff costs.
            return self.software_overhead_ms
        two_copies = 2 * payload_bytes / self.bandwidth_bytes_per_ms
        return self.software_overhead_ms + two_copies


class NoC(InterconnectModel):
    """Direct slot-to-slot transfers over an on-fabric network.

    One traversal at much higher bandwidth and no ARM involvement;
    same-slot handoffs are free (data never leaves the region).
    """

    name = "noc"

    def __init__(
        self,
        bandwidth_bytes_per_ms: float = 16e6,  # ~16 GB/s aggregate
        router_latency_ms: float = 0.002,
        hops: int = 2,
    ) -> None:
        if bandwidth_bytes_per_ms <= 0:
            raise ReproError("bandwidth must be > 0")
        if router_latency_ms < 0:
            raise ReproError("router latency must be >= 0")
        if hops < 1:
            raise ReproError("hops must be >= 1")
        self.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms
        self.router_latency_ms = router_latency_ms
        self.hops = hops

    def transfer_ms(self, payload_bytes: int, same_slot: bool) -> float:
        if payload_bytes < 0:
            raise ReproError(f"negative payload {payload_bytes}")
        if same_slot:
            return 0.0
        return (
            self.hops * self.router_latency_ms
            + payload_bytes / self.bandwidth_bytes_per_ms
        )


def make_interconnect(name: str) -> InterconnectModel:
    """Instantiate an interconnect model by name."""
    models = {
        "zero_cost": ZeroCost,
        "ps_routed": PSRouted,
        "noc": NoC,
    }
    factory = models.get(name)
    if factory is None:
        raise ReproError(
            f"unknown interconnect {name!r}; known: {sorted(models)}"
        )
    return factory()
