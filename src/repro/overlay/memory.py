"""Hypervisor-managed data buffers (paper §2.2).

Tasks read inputs from and write outputs to buffers allocated by the
hypervisor in shared system memory; a task consuming another task's output
reads the buffer its producer filled. When a task retires, buffers no
longer referenced are released.

The scheduler itself is insensitive to buffer sizes, but modeling the
allocator (a) exercises the full hypervisor control path the paper
describes and (b) lets tests assert the no-leak invariant: after an
application retires, all of its buffers are gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import BufferError_


@dataclass
class DataBuffer:
    """One shared-memory buffer holding a task's output for one batch item."""

    buffer_id: int
    app_id: int
    task_id: str
    item: int
    size_bytes: int
    refcount: int = 0


class BufferManager:
    """Allocator for inter-task data buffers in shared system memory.

    A producer's output buffer for batch item ``b`` is created when the item
    completes, with one reference per consumer edge; each consumer drops its
    reference when it finishes processing that item. Sink-task outputs are
    held until the application's response is sent, then released in bulk by
    :meth:`release_app`.
    """

    def __init__(self, capacity_bytes: int = 2 * 1024**3) -> None:
        if capacity_bytes <= 0:
            raise BufferError_(f"capacity must be > 0, got {capacity_bytes}")
        self._capacity = capacity_bytes
        self._used = 0
        self._next_id = 0
        self._buffers: Dict[int, DataBuffer] = {}
        self._by_output: Dict[Tuple[int, str, int], int] = {}
        self.peak_bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def live_buffers(self) -> int:
        """Number of live buffers."""
        return len(self._buffers)

    def publish_output(
        self,
        app_id: int,
        task_id: str,
        item: int,
        size_bytes: int,
        consumers: int,
    ) -> DataBuffer:
        """Allocate the output buffer of (app, task, item).

        ``consumers`` is the number of downstream readers; a sink task has
        zero consumers but its buffer is retained (refcount pinned at 1)
        until :meth:`release_app`.
        """
        if size_bytes <= 0:
            raise BufferError_(f"buffer size must be > 0, got {size_bytes}")
        key = (app_id, task_id, item)
        if key in self._by_output:
            raise BufferError_(f"output buffer already published for {key}")
        if self._used + size_bytes > self._capacity:
            raise BufferError_(
                f"out of buffer memory: need {size_bytes}, "
                f"free {self._capacity - self._used}"
            )
        buffer = DataBuffer(
            self._next_id, app_id, task_id, item, size_bytes,
            refcount=max(consumers, 1),
        )
        self._next_id += 1
        self._buffers[buffer.buffer_id] = buffer
        self._by_output[key] = buffer.buffer_id
        self._used += size_bytes
        self.peak_bytes = max(self.peak_bytes, self._used)
        return buffer

    def consume(self, app_id: int, task_id: str, item: int) -> None:
        """Drop one consumer reference from (app, task, item)'s buffer."""
        key = (app_id, task_id, item)
        buffer_id = self._by_output.get(key)
        if buffer_id is None:
            raise BufferError_(f"no buffer published for {key}")
        buffer = self._buffers[buffer_id]
        buffer.refcount -= 1
        if buffer.refcount <= 0:
            self._release(buffer_id)

    def _release(self, buffer_id: int) -> None:
        buffer = self._buffers.pop(buffer_id)
        self._by_output.pop((buffer.app_id, buffer.task_id, buffer.item), None)
        self._used -= buffer.size_bytes

    def release_app(self, app_id: int) -> int:
        """Free every buffer belonging to ``app_id``; returns bytes freed."""
        doomed = [
            bid for bid, buf in self._buffers.items() if buf.app_id == app_id
        ]
        freed = 0
        for buffer_id in doomed:
            freed += self._buffers[buffer_id].size_bytes
            self._release(buffer_id)
        return freed

    def app_bytes(self, app_id: int) -> int:
        """Bytes currently held by one application."""
        return sum(
            buf.size_bytes for buf in self._buffers.values()
            if buf.app_id == app_id
        )
