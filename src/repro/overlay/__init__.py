"""Model of the Nimblock FPGA overlay (paper §2.1).

The overlay splits the ZCU106 fabric into a static region (interconnect,
decoupling, PS bridges) plus ten uniform reconfigurable slots. This package
models the pieces the scheduler interacts with: slot state machines, the
serialized configuration access port (CAP), the partial-bitstream store and
the hypervisor-managed data buffers. Table 1's resource numbers are encoded
in :mod:`repro.overlay.resources`.
"""

from repro.overlay.resources import (
    RESOURCE_KINDS,
    ResourceVector,
    SLOT_UTILIZATION_RANGE,
    STATIC_REGION_UTILIZATION,
    ZCU106_RESOURCES,
)
from repro.overlay.floorplan import Floorplan, SlotRegion
from repro.overlay.bitstream import BitstreamHeader, BitstreamStore, PartialBitstream
from repro.overlay.device import FPGADevice, ReconfigurationPort, Slot, SlotPhase
from repro.overlay.interconnect import (
    InterconnectModel,
    NoC,
    PSRouted,
    ZeroCost,
    make_interconnect,
)
from repro.overlay.memory import BufferManager, DataBuffer

__all__ = [
    "RESOURCE_KINDS",
    "ResourceVector",
    "SLOT_UTILIZATION_RANGE",
    "STATIC_REGION_UTILIZATION",
    "ZCU106_RESOURCES",
    "Floorplan",
    "SlotRegion",
    "BitstreamHeader",
    "BitstreamStore",
    "PartialBitstream",
    "FPGADevice",
    "ReconfigurationPort",
    "Slot",
    "SlotPhase",
    "InterconnectModel",
    "NoC",
    "PSRouted",
    "ZeroCost",
    "make_interconnect",
    "BufferManager",
    "DataBuffer",
]
