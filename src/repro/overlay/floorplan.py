"""Floorplanning of the slot-based overlay onto the target device.

The scheduler never reads the floorplan at runtime — slots are uniform by
construction (paper §2.1) — but the floorplanner verifies the premise: the
static region plus ``num_slots`` uniform slots must fit the device, and a
slot must be large enough for the largest benchmark task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import FloorplanError
from repro.overlay.resources import (
    ResourceVector,
    STATIC_REGION_UTILIZATION,
    ZCU106_RESOURCES,
    slot_resource_vector,
)


@dataclass(frozen=True)
class SlotRegion:
    """One physical reconfigurable region of the overlay."""

    index: int
    resources: ResourceVector

    def __post_init__(self) -> None:
        if self.index < 0:
            raise FloorplanError(f"slot index must be >= 0, got {self.index}")


class Floorplan:
    """A static region plus a set of uniform reconfigurable slot regions.

    Example
    -------
    >>> plan = Floorplan.zcu106(num_slots=10)
    >>> plan.validate()
    >>> len(plan.slots)
    10
    """

    def __init__(
        self,
        device_resources: ResourceVector,
        static_resources: ResourceVector,
        slots: Sequence[SlotRegion],
    ) -> None:
        if not slots:
            raise FloorplanError("a floorplan needs at least one slot")
        indices = [slot.index for slot in slots]
        if sorted(indices) != list(range(len(slots))):
            raise FloorplanError(
                f"slot indices must be 0..{len(slots) - 1}, got {indices}"
            )
        first = slots[0].resources
        if any(slot.resources != first for slot in slots):
            raise FloorplanError("overlay slots must be uniform (paper §2.1)")
        self._device = device_resources
        self._static = static_resources
        self._slots: List[SlotRegion] = sorted(slots, key=lambda s: s.index)

    @classmethod
    def zcu106(cls, num_slots: int = 10, slot_size: str = "min") -> "Floorplan":
        """The paper's ZCU106 floorplan with Table 1 resource numbers.

        Table 1 reports each slot as a min-max range because the ten
        uniform-area slots cover different column mixes; ``slot_size``
        picks which end of the range to model. Only the ``"min"`` end can
        hold ten identical slots next to the static region on the real
        XCZU7EV, so it is the default for device-fit validation.
        """
        slot_vector = slot_resource_vector(slot_size)
        slots = [SlotRegion(i, slot_vector) for i in range(num_slots)]
        return cls(ZCU106_RESOURCES, STATIC_REGION_UTILIZATION, slots)

    @property
    def slots(self) -> List[SlotRegion]:
        """The slot regions in index order."""
        return list(self._slots)

    @property
    def num_slots(self) -> int:
        """Number of reconfigurable slots."""
        return len(self._slots)

    @property
    def slot_resources(self) -> ResourceVector:
        """Resources of one (uniform) slot."""
        return self._slots[0].resources

    @property
    def static_resources(self) -> ResourceVector:
        """Resources consumed by the static region."""
        return self._static

    def total_reconfigurable(self) -> ResourceVector:
        """Resources across all slots combined."""
        return self.slot_resources.scaled(self.num_slots)

    def validate(self) -> None:
        """Raise :class:`FloorplanError` unless the overlay fits the device."""
        total = self._static + self.total_reconfigurable()
        if not total.fits_within(self._device):
            overflow = {
                kind: used - avail
                for (kind, used), avail in zip(
                    total.as_dict().items(), self._device.counts
                )
                if used > avail
            }
            raise FloorplanError(
                f"overlay exceeds device resources by {overflow}"
            )

    def task_fits_slot(self, task_resources: ResourceVector) -> bool:
        """True if a task's resource demand fits a single slot."""
        return task_resources.fits_within(self.slot_resources)

    def utilization_report(self) -> dict:
        """Device-level utilization breakdown (drives the Table 1 bench)."""
        total = self._static + self.total_reconfigurable()
        return {
            "static": self._static.as_dict(),
            "per_slot": self.slot_resources.as_dict(),
            "all_slots": self.total_reconfigurable().as_dict(),
            "device": self._device.as_dict(),
            "device_utilization": total.utilization_of(self._device),
        }
