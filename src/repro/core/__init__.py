"""The Nimblock scheduling algorithm — the paper's primary contribution.

The pieces map one-to-one onto Figure 3:

* :mod:`repro.core.tokens` — token accumulation and candidate selection
  (Algorithm 1, borrowed from PREMA);
* :mod:`repro.core.saturation` — DML-style saturation-point analysis
  producing per-application *goal numbers*;
* :mod:`repro.core.allocation` — the three-phase slot allocator (§4.2);
* :mod:`repro.core.preemption` — batch-preemption victim selection
  (Algorithm 2);
* :mod:`repro.core.nimblock` — the policy tying it all together;
* :mod:`repro.core.variants` — the ablation variants of §5.6.
"""

from repro.core.tokens import TokenAccounting
from repro.core.allocation import allocate_slots
from repro.core.saturation import SaturationAnalyzer, saturation_sweep
from repro.core.preemption import select_preemption_slot
from repro.core.nimblock import NimblockScheduler
from repro.core.variants import (
    ABLATION_NAMES,
    nimblock_full,
    nimblock_no_pipe,
    nimblock_no_preempt,
    nimblock_no_preempt_no_pipe,
)

__all__ = [
    "TokenAccounting",
    "allocate_slots",
    "SaturationAnalyzer",
    "saturation_sweep",
    "select_preemption_slot",
    "NimblockScheduler",
    "ABLATION_NAMES",
    "nimblock_full",
    "nimblock_no_pipe",
    "nimblock_no_preempt",
    "nimblock_no_preempt_no_pipe",
]
