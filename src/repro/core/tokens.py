"""Token accumulation and candidate selection (Algorithm 1, paper §4.1).

Borrowed from PREMA: a newly arrived application starts with ``token =
priority``; while it waits, it accumulates ``alpha x priority x
degradation_norm`` at every scheduling event (interval tick, arrival,
completion). The candidate threshold is the maximum pending token floored
to the nearest priority level, and every application whose token clears the
threshold is a scheduling candidate.

Degradation follows PREMA's slowdown definition: how much longer the
application has already been in the system relative to its isolated latency
estimate, ``(wait + estimate) / estimate``, normalized to the most degraded
pending application so the accumulation rate stays bounded.

The threshold comparison is ``>=`` (PREMA's original semantics); the paper
prose says "greater than" but a strict comparison would leave the candidate
pool empty whenever every token sits exactly on a priority level — e.g. at
system start — and deadlock the scheduler.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.config import SystemConfig
from repro.hypervisor.application import AppRun


class TokenAccounting:
    """Implements Algorithm 1 over the pending application queue."""

    def __init__(self, config: SystemConfig) -> None:
        self._config = config
        #: Token generation: bumped on every accumulation round that
        #: mutates at least one token. Together with the pending queue's
        #: ``version`` (and the watchdog's boost counter, the only other
        #: token writer) it keys candidate-pool caches: an unchanged
        #: (version, gen, boosts) triple guarantees :meth:`candidates`
        #: and :meth:`threshold` would return the same result.
        self.gen = 0

    def note_external_token_write(self) -> None:
        """Invalidate candidate caches after a direct ``app.token`` write.

        The production token writers (accumulation rounds here, starvation
        boosts in the watchdog) are covered by cache keys automatically;
        tests and drills that poke ``app.token`` directly must call this
        once afterwards so keyed candidate caches notice.
        """
        self.gen += 1

    def degradation(self, app: AppRun, now: float) -> float:
        """PREMA slowdown of one application at time ``now``."""
        waited = max(0.0, now - app.arrival_ms)
        return (waited + app.latency_estimate_ms) / app.latency_estimate_ms

    def accumulate(self, apps: Iterable[AppRun], now: float) -> None:
        """One accumulation round over the pending queue (Alg. 1 line 6)."""
        if not isinstance(apps, list):
            apps = list(apps)
        if not apps:
            return
        # Single fused pass: degradation per app plus the running max,
        # with the same float expressions (and addition order) as the
        # original pair-list construction.
        degradations = []
        append = degradations.append
        max_degradation = 0.0
        for app in apps:
            waited = now - app.arrival_ms
            if waited < 0.0:
                waited = 0.0
            estimate = app.latency_estimate_ms
            degradation = (waited + estimate) / estimate
            append(degradation)
            if degradation > max_degradation:
                max_degradation = degradation
        if max_degradation <= 0:
            return
        self.gen += 1
        alpha = self._config.token_alpha
        for app, degradation in zip(apps, degradations):
            app.token += alpha * app.priority * (
                degradation / max_degradation
            )

    def threshold(self, apps: Sequence[AppRun]) -> float:
        """Candidate threshold (Alg. 1 line 8)."""
        if not apps:
            return 0.0
        # ``floor_priority`` is monotone non-decreasing, so the max of
        # the floors is the floor of the max token — one floor call
        # instead of one per app.
        max_token = None
        for app in apps:
            token = app.token
            if max_token is None or token > max_token:
                max_token = token
        return self._config.floor_priority(max_token)

    def candidates(self, apps: Sequence[AppRun]) -> List[AppRun]:
        """Applications whose tokens clear the threshold, oldest first."""
        if not apps:
            return []
        threshold = self.threshold(apps)
        # The pending queue hands out its arrival-order snapshot, so the
        # filtered subset is almost always already age-ordered; detect
        # that in the same pass and skip the sort (the degrade admission
        # policy's priority-major reordering is the one caller that still
        # pays it).
        chosen: List[AppRun] = []
        append = chosen.append
        in_order = True
        prev_key = None
        for app in apps:
            if app.token >= threshold:
                key = app.age_key
                if prev_key is not None and key < prev_key:
                    in_order = False
                prev_key = key
                append(app)
        if not in_order:
            chosen.sort(key=lambda app: app.age_key)
        return chosen

    def snapshot(self, apps: Sequence[AppRun]) -> Dict[int, float]:
        """Current token per app id (diagnostics and tests)."""
        return {app.app_id: app.token for app in apps}
