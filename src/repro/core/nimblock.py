"""The Nimblock scheduling algorithm (paper §4, Figure 3).

Each decision pass walks Figure 3's pipeline:

1. tokens accumulate at scheduling events (interval ticks, arrivals,
   completions) — Algorithm 1;
2. the candidate pool is the set of pending applications whose tokens
   clear the priority-floored threshold;
3. slots are (re)allocated across candidates using goal numbers from the
   saturation analysis — §4.2;
4. the oldest candidate still below its allocation gets its next
   configurable task placed into a free slot, building inter-batch
   pipelines automatically — §4.3;
5. if a task is ready but no slot is free, the largest over-consumer is
   batch-preempted at a batch boundary — Algorithm 2.

The ``enable_pipelining`` / ``enable_preemption`` switches implement the
ablation variants of §5.6.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.allocation import allocate_slots
from repro.core.preemption import select_preemption_slot
from repro.core.saturation import SaturationAnalyzer
from repro.core.tokens import TokenAccounting
from repro.schedulers.base import (
    Action,
    ConfigureAction,
    PreemptAction,
    SchedulerPolicy,
)


class NimblockScheduler(SchedulerPolicy):
    """Time- and space-multiplexing scheduler with batch-preemption."""

    name = "nimblock"
    prefetch = True

    def __init__(
        self,
        enable_pipelining: bool = True,
        enable_preemption: bool = True,
    ) -> None:
        self.enable_pipelining = enable_pipelining
        self.enable_preemption = enable_preemption
        self.pipelined = enable_pipelining
        # Without inter-batch pipelining the algorithm also stops
        # configuring tasks ahead of their inputs (bulk processing, as in
        # the PREMA/FCFS comparisons): prefetched-but-idle tasks are what
        # over-consumes slots, and §5.6 observes that the no-pipe variant
        # does not monopolize resources.
        self.prefetch = enable_pipelining
        if not enable_pipelining and not enable_preemption:
            self.name = "nimblock_no_preempt_no_pipe"
        elif not enable_pipelining:
            self.name = "nimblock_no_pipe"
        elif not enable_preemption:
            self.name = "nimblock_no_preempt"
        self._tokens: Optional[TokenAccounting] = None
        self._saturation: Optional[SaturationAnalyzer] = None
        self._goals: Dict[int, int] = {}
        # Reallocation is triggered by the periodic scheduling interval and
        # by candidate-pool changes (paper §4.2), NOT by every task/item
        # completion — per-event reallocation makes over-consumption flap
        # and preemption thrash at large batch sizes.
        self._alloc_dirty = True
        self._last_slot_cap: Optional[int] = None
        self.preemptions_issued = 0
        # Candidate-pool cache: the pool is a pure function of the
        # pending-queue contents and the token values, so it is keyed by
        # (pending version, token generation, watchdog boosts) — the
        # complete set of mutation counters for those inputs. Most
        # passes are triggered by item completions, which change
        # neither, so the filter + threshold + sort is skipped entirely.
        self._cand_key: Optional[tuple] = None
        self._cand_cache: list = []
        #: Key the last slot allocation was computed under; replaces the
        #: old per-decide frozenset comparison of candidate ids (an
        #: unchanged key implies an unchanged candidate pool).
        self._alloc_key: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Lazy sub-component construction (the policy learns the platform
    # configuration from the first context it sees).
    # ------------------------------------------------------------------
    def _accounting(self, ctx) -> TokenAccounting:
        if self._tokens is None:
            self._tokens = TokenAccounting(ctx.config)
        return self._tokens

    def _analyzer(self, ctx) -> SaturationAnalyzer:
        if self._saturation is None:
            self._saturation = SaturationAnalyzer(ctx.config)
        return self._saturation

    def _goal_number(self, ctx, app) -> int:
        goal = self._goals.get(app.app_id)
        if goal is None:
            if self.enable_pipelining:
                goal = self._analyzer(ctx).goal_number(
                    app.graph, app.batch_size
                )
            else:
                # Without inter-batch pipelining extra slots only help for
                # parallel branches of the task graph.
                goal = min(app.graph.max_width(), ctx.config.num_slots)
            self._goals[app.app_id] = goal
        return goal

    # ------------------------------------------------------------------
    # Token accumulation events (Algorithm 1)
    # ------------------------------------------------------------------
    def notify_arrival(self, ctx, app) -> None:
        pending = [a for a in ctx.pending_apps() if a.app_id != app.app_id]
        self._accounting(ctx).accumulate(pending, ctx.now)
        self._alloc_dirty = True

    def notify_completion(self, ctx, app) -> None:
        self._goals.pop(app.app_id, None)
        self._accounting(ctx).accumulate(ctx.pending_apps(), ctx.now)
        self._alloc_dirty = True

    def notify_tick(self, ctx) -> None:
        self._accounting(ctx).accumulate(ctx.pending_apps(), ctx.now)
        self._alloc_dirty = True

    # ------------------------------------------------------------------
    # Decision pass (Figure 3)
    # ------------------------------------------------------------------
    def decide(self, ctx) -> Optional[Action]:
        pending = ctx.pending_apps()
        if not pending:
            return None
        accounting = self._tokens
        if accounting is None:
            accounting = self._accounting(ctx)
        cand_key = (
            ctx.pending_version(), accounting.gen, ctx.token_boosts()
        )
        if cand_key != self._cand_key:
            self._cand_cache = accounting.candidates(pending)
            self._cand_key = cand_key
        candidates = self._cand_cache
        if not candidates:
            return None

        # Reallocation (§4.2): at scheduling intervals and whenever the
        # candidate pool changes. Non-candidates hold no allocation, so a
        # formerly greedy application becomes an over-consumer the moment
        # it drops out of (or is out-aged in) the candidate pool. An
        # unchanged candidate cache key implies an unchanged pool, so the
        # key comparison replaces the old per-decide id-set comparison
        # (it can only over-trigger, and allocation is a deterministic
        # function of its inputs, so an extra recomputation is invisible).
        # Overload degradation (repro.admission): while the degrade
        # policy's pressure signal is high, every application's allocation
        # is clamped — goal raises and surplus grants alike — so more
        # candidates share the board and the backlog drains. None (the
        # default, and always without an admission controller) changes
        # nothing.
        slot_cap = ctx.admission_slot_cap()
        if (
            self._alloc_dirty
            or cand_key != self._alloc_key
            or slot_cap != self._last_slot_cap
        ):
            goals = {
                app.app_id: self._goal_number(ctx, app)
                for app in candidates
            }
            if slot_cap is not None:
                goals = {
                    app_id: min(goal, slot_cap)
                    for app_id, goal in goals.items()
                }
            allocation = allocate_slots(
                candidates, ctx.config.num_slots, goals
            )
            for app in pending:
                allocated = allocation.get(app.app_id, 0)
                if slot_cap is not None and allocated > slot_cap:
                    allocated = slot_cap
                app.slots_allocated = allocated
            self._alloc_dirty = False
            self._alloc_key = cand_key
            self._last_slot_cap = slot_cap

        # Task selection (§4.3): oldest candidate below its allocation.
        for app in candidates:
            if app._slots_used >= app.slots_allocated:
                continue
            task_id = app.first_configurable_task(prefetch=self.prefetch)
            if task_id is None:
                continue
            slot_index = ctx.free_slot_index()
            if slot_index is not None:
                return ConfigureAction(app.app_id, task_id, slot_index)
            # Preemption (§4.4): ready task, no free slot.
            if not self.enable_preemption:
                return None
            victim_slot = select_preemption_slot(ctx)
            if victim_slot is None:
                return None
            self.preemptions_issued += 1
            return PreemptAction(victim_slot)
        return None
