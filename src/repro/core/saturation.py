"""Saturation-point analysis producing per-application goal numbers (§4.2).

Following DML's observation, an application has a limit to the slots it can
effectively use. We sweep the slot count from one to the system size,
estimate the application's isolated pipelined latency at each count with
the ILP-substitute estimator, and pick the *goal number*: the smallest slot
count beyond which one more slot improves latency by less than the
configured threshold.

Consistent with the paper's observations, a second slot is always part of
the goal when the application has more than one task and more than one
batch item (it enables inter-batch parallelism), and the goal never exceeds
the task count. The analysis depends only on HLS estimates — never on
runtime state — so results are memoized per (graph shape, batch size).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import SystemConfig
from repro.errors import SolverError
from repro.ilp.estimator import estimate_makespan_ms
from repro.ilp.model import ScheduleProblem
from repro.taskgraph.graph import TaskGraph


def saturation_sweep(
    graph: TaskGraph,
    batch_size: int,
    config: SystemConfig,
) -> List[float]:
    """Estimated isolated latency (ms) for each slot count ``1..num_slots``."""
    latencies = []
    for slots in range(1, config.num_slots + 1):
        problem = ScheduleProblem(
            graph=graph,
            batch_size=batch_size,
            num_slots=slots,
            reconfig_ms=config.reconfig_ms,
        )
        latencies.append(estimate_makespan_ms(problem))
    return latencies


def find_saturation_point(
    latencies: List[float], threshold: float
) -> int:
    """Slot count after which one more slot gains less than ``threshold``.

    ``latencies[k-1]`` is the latency with ``k`` slots. Returns the
    smallest ``k`` such that every subsequent increment improves latency by
    less than ``threshold`` (fractionally), so the curve has genuinely
    flattened rather than merely paused at a plateau.
    """
    if not latencies:
        raise SolverError("latency sweep must be non-empty")
    n = len(latencies)
    for k in range(1, n + 1):
        flat = True
        for j in range(k, n):
            before, after = latencies[j - 1], latencies[j]
            if before <= 0:
                continue
            if (before - after) / before >= threshold:
                flat = False
                break
        if flat:
            return k
    return n


class SaturationAnalyzer:
    """Memoized goal-number oracle used by the Nimblock scheduler.

    The memo lives **on the graph object**, keyed by the platform scalars
    the analysis depends on (slot count, reconfiguration latency,
    saturation threshold) plus the batch size. Graphs are immutable and
    the catalog benchmarks are process-wide singletons, so the memo is
    shared across analyzer instances — and therefore across the thousands
    of simulation runs in a sweep, each of which constructs a fresh
    scheduler. Keying by graph identity (not name) keeps two distinct
    graphs that merely share a name from colliding.
    """

    def __init__(self, config: SystemConfig) -> None:
        self._config = config

    def _key(self, batch_size: int) -> Tuple:
        return (
            batch_size,
            self._config.num_slots,
            self._config.reconfig_ms,
            self._config.saturation_threshold,
        )

    @staticmethod
    def _graph_cache(graph: TaskGraph, attr: str) -> Dict[Tuple, object]:
        cache = getattr(graph, attr, None)
        if cache is None:
            cache = {}
            setattr(graph, attr, cache)
        return cache

    def sweep(self, graph: TaskGraph, batch_size: int) -> List[float]:
        """Cached latency sweep across slot counts."""
        sweeps = self._graph_cache(graph, "_saturation_sweep_cache")
        key = (batch_size, self._config.num_slots, self._config.reconfig_ms)
        cached = sweeps.get(key)
        if cached is None:
            cached = sweeps[key] = saturation_sweep(
                graph, batch_size, self._config
            )
        return cached  # type: ignore[return-value]

    def goal_number(self, graph: TaskGraph, batch_size: int) -> int:
        """The application's goal number of slots (paper §4.2)."""
        goals = self._graph_cache(graph, "_saturation_goal_cache")
        key = self._key(batch_size)
        cached = goals.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        point = find_saturation_point(
            self.sweep(graph, batch_size), self._config.saturation_threshold
        )
        # A second slot always pays off for multi-task, multi-item
        # applications (it lets two batch items be in flight), and a goal
        # beyond the task count is meaningless.
        if graph.num_tasks > 1 and batch_size > 1:
            point = max(point, 2)
        point = min(point, graph.num_tasks, self._config.num_slots)
        goals[key] = point
        return point
