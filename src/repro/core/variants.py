"""Ablation variants of the Nimblock scheduler (paper §5.6, Figure 9).

The ablation study removes pipelining and preemption individually and
together. Each factory returns a fresh policy instance so one experiment
run never leaks token or goal-number state into the next.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.nimblock import NimblockScheduler

#: Variant names in Figure 9/10 legend order.
ABLATION_NAMES: Tuple[str, ...] = (
    "nimblock",
    "nimblock_no_preempt",
    "nimblock_no_pipe",
    "nimblock_no_preempt_no_pipe",
)


def nimblock_full() -> NimblockScheduler:
    """The complete algorithm: pipelining and batch-preemption enabled."""
    return NimblockScheduler(enable_pipelining=True, enable_preemption=True)


def nimblock_no_preempt() -> NimblockScheduler:
    """Pipelining without preemption (over-consumers are never rolled back)."""
    return NimblockScheduler(enable_pipelining=True, enable_preemption=False)


def nimblock_no_pipe() -> NimblockScheduler:
    """Preemption without inter-batch pipelining (bulk batch processing)."""
    return NimblockScheduler(enable_pipelining=False, enable_preemption=True)


def nimblock_no_preempt_no_pipe() -> NimblockScheduler:
    """Neither pipelining nor preemption (token + allocation core only)."""
    return NimblockScheduler(enable_pipelining=False, enable_preemption=False)
