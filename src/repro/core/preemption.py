"""Batch-preemption victim selection (Algorithm 2, paper §4.4).

When a candidate task is ready but no slot is free, Nimblock looks for the
running application that exceeds its slot allocation by the most **and**
has a task waiting at a batch boundary (line 5's ``s.task is waiting``).
From that over-consumer we take the configured task latest in topological
order — it cannot be feeding a pipelined dependency of another resident
task — and preempt it only if its slot is indeed waiting for its next
batch item; otherwise preemption is delayed until the item in flight
drains (the scheduler simply retries at the next event).
"""

from __future__ import annotations

from typing import Optional

from repro.hypervisor.application import AppRun, TaskRunState


def select_preemption_slot(ctx) -> Optional[int]:
    """Slot index to batch-preempt, or None if nobody over-consumes.

    ``ctx`` is the hypervisor's :class:`SchedulerContext`.
    """
    over_consumption = 0
    over_consumer: Optional[AppRun] = None
    for slot in ctx.device.slots:
        occupant = ctx.slot_occupant(slot.index)
        if occupant is None:
            continue
        app, _task = occupant
        consumption = app.over_consumption
        if ctx.slot_waiting(slot.index) and consumption > over_consumption:
            over_consumption = consumption
            over_consumer = app
    if over_consumer is None:
        return None

    # Topologically latest configured task of the over-consumer.
    graph = over_consumer.graph
    latest_task = None
    latest_index = -1
    for run in over_consumer.tasks.values():
        if run.state != TaskRunState.CONFIGURED:
            continue
        index = graph.topo_index(run.task_id)
        if index > latest_index:
            latest_index = index
            latest_task = run
    if latest_task is None or latest_task.slot_index is None:
        return None

    # Preempt only at a batch boundary; if the task is mid-item, delay.
    if ctx.slot_waiting(latest_task.slot_index):
        return latest_task.slot_index
    return None
