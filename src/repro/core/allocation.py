"""The three-phase slot allocator (paper §4.2).

Given the candidate pool (oldest first), the allocator decides each
candidate's ``slots_allocated``:

1. **Forward progress** — one slot per candidate, oldest first, so every
   candidate can always make progress. With more candidates than slots the
   youngest candidates get nothing this round.
2. **Goal numbers** — remaining slots raise candidates (oldest first) to
   their saturation-derived goal number.
3. **Surplus** — anything still left goes, oldest first, to candidates
   that can use extra slots beyond their goal (bounded by their number of
   unfinished tasks) so old applications can pipeline aggressively toward
   their deadlines.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import SchedulerError
from repro.hypervisor.application import AppRun


def allocate_slots(
    candidates: Sequence[AppRun],
    total_slots: int,
    goal_numbers: Dict[int, int],
) -> Dict[int, int]:
    """Slot allocation per candidate app id.

    ``candidates`` must already be in age order (oldest first);
    ``goal_numbers[app_id]`` is the saturation goal for each candidate.
    """
    if total_slots < 1:
        raise SchedulerError(f"total_slots must be >= 1, got {total_slots}")
    for app in candidates:
        if app.app_id not in goal_numbers:
            raise SchedulerError(
                f"missing goal number for candidate app {app.app_id}"
            )

    allocation: Dict[int, int] = {app.app_id: 0 for app in candidates}
    remaining = total_slots

    # Phase 1: one slot each, oldest first.
    for app in candidates:
        if remaining == 0:
            break
        allocation[app.app_id] = 1
        remaining -= 1

    # Phase 2: raise to goal numbers, oldest first.
    for app in candidates:
        if remaining == 0:
            break
        ceiling = min(goal_numbers[app.app_id], app.max_useful_slots())
        want = max(0, ceiling - allocation[app.app_id])
        if allocation[app.app_id] == 0:
            continue  # did not even get a progress slot this round
        grant = min(want, remaining)
        allocation[app.app_id] += grant
        remaining -= grant

    # Phase 3: surplus beyond the goal, oldest first, bounded by how many
    # slots the application can actually occupy.
    for app in candidates:
        if remaining == 0:
            break
        if allocation[app.app_id] == 0:
            continue
        ceiling = app.max_useful_slots()
        want = max(0, ceiling - allocation[app.app_id])
        grant = min(want, remaining)
        allocation[app.app_id] += grant
        remaining -= grant

    return allocation
