"""Closed-loop remediation study: static policies vs the autotuner (ext).

Every other robustness harness fixes its admission/watchdog policy up
front and measures what happens under stress. Production FPGA services
do the opposite: they watch their own SLO and *change configuration
mid-run*. This extension drives the same seeded overload episode — a
calm phase, a burst at several times the sustainable rate, and a long
recovery — through three service runs:

* **static unbounded** — no protection: the burst builds unbounded
  backlog and the tail never recovers inside the episode;
* **static shed** — the hand-picked load-shedding policy the overload
  study recommends, as the oracle an operator could have configured;
* **autotuned** — starts exactly like static unbounded but with the
  :mod:`repro.autotune` pipeline armed: the detector sees the breach,
  the proposer offers patches, the verifier replays the captured
  episode under each, and the winner is applied at a window boundary.

The interesting comparison is the last row against the first two: the
closed loop should recover most of the gap between the unprotected
baseline and the oracle, and the decision log shows *when* and *why*
each patch landed. Determinism matches the service tier: each cell is a
pure function of its seed, byte-identical at any ``--jobs``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import service_cells
from repro.experiments.runner import ExperimentSettings
from repro.metrics.slo import DEFAULT_SERVICE_SLO, SloTarget
from repro.service.windows import WindowedMetrics

#: The three configurations compared: (row label, admission policy,
#: arm-the-autotuner flag).
AUTOTUNE_ROWS: Tuple[Tuple[str, str, bool], ...] = (
    ("static-unbounded", "unbounded", False),
    ("static-shed", "shed", False),
    ("autotuned", "unbounded", True),
)

#: The overload episode, as (duration_s, rate_per_s) phases of an
#: ``episode`` arrival process: calm, 4x burst, recovery.
EPISODE_RATE_PER_S = 1.0
EPISODE_BURST_MULTIPLIER = 4.0
EPISODE_PHASES: Tuple[Tuple[float, float], ...] = (
    (60.0, EPISODE_RATE_PER_S),
    (120.0, EPISODE_RATE_PER_S * EPISODE_BURST_MULTIPLIER),
    (240.0, EPISODE_RATE_PER_S),
)

#: Tumbling-window width of the study's runs (ms).
AUTOTUNE_WINDOW_MS = 10_000.0

#: Scheduler under test (the paper's headline policy).
AUTOTUNE_SCHEDULER = "nimblock"


def _submissions(settings: ExperimentSettings) -> int:
    """Arrivals per cell: enough to cover the whole episode."""
    return max(120, settings.num_sequences * settings.num_events)


def _evaluate_cell(payload: dict, slo: SloTarget) -> dict:
    """Reduce one service report payload to the study's scalars."""
    windows = WindowedMetrics.from_dict(payload["windows"])
    active = [w for w in windows.windows if w.arrived > 0]
    attainment = 1.0 if not active else sum(
        1 for w in active if slo.met(w.p(99.0), w.loss_frac)
    ) / len(active)
    arrived = payload["arrived"]
    lost = payload["shed"] + payload["dropped"]
    return {
        "admission": payload["admission"],
        "arrived": arrived,
        "completed": payload["completed"],
        "shed": payload["shed"],
        "dropped": payload["dropped"],
        "attainment": attainment,
        "windows": len(active),
        "p99_ms": windows.total().sketch.percentile(99.0),
        "loss_frac": (lost / arrived) if arrived else 0.0,
        "applies": payload.get("applies", 0),
        "decisions": payload.get("decisions", []),
    }


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    rows: Sequence[Tuple[str, str, bool]] = AUTOTUNE_ROWS,
    phases: Sequence[Tuple[float, float]] = EPISODE_PHASES,
    submissions: Optional[int] = None,
    window_ms: float = AUTOTUNE_WINDOW_MS,
    slo: Optional[SloTarget] = None,
) -> dict:
    """Run the episode under each configuration; compare SLO outcomes.

    ``cache`` is accepted for registry uniformity but unused: the run
    cache keys closed sequences, and open-loop service runs must never
    be satisfied from it. Every row faces the *identical* seeded
    arrival stream, so outcome differences are pure policy (or
    remediation) effects.
    """
    from repro.autotune import AutotuneConfig

    settings = settings or ExperimentSettings.from_env()
    slo = slo or DEFAULT_SERVICE_SLO
    per_cell = submissions if submissions is not None else _submissions(
        settings
    )
    seed = settings.base_seed
    arrival_spec = ("episode", (("phases", tuple(phases)),))
    autotune = AutotuneConfig().with_slo(slo)
    tasks = [
        (AUTOTUNE_SCHEDULER, policy, EPISODE_RATE_PER_S, 0.0, seed,
         per_cell, window_ms, mode, True,
         autotune if armed else None, arrival_spec)
        for _, policy, armed in rows
    ]
    jobs = jobs if jobs is not None else getattr(cache, "jobs", None)
    payloads = service_cells(tasks, jobs=jobs)

    cells: Dict[str, dict] = {}
    for (label, _, _), payload in zip(rows, payloads):
        cells[label] = _evaluate_cell(payload, slo)
    return {
        "scheduler": AUTOTUNE_SCHEDULER,
        "rows": [label for label, _, _ in rows],
        "phases": [list(phase) for phase in phases],
        "submissions": per_cell,
        "window_ms": window_ms,
        "seed": seed,
        "slo": {"p99_ms": slo.p99_ms, "max_loss_frac": slo.max_loss_frac},
        "cells": cells,
    }


def format_result(result: dict) -> str:
    """Render the three-row comparison plus the tuned decision log."""
    slo = SloTarget(
        p99_ms=result["slo"]["p99_ms"],
        max_loss_frac=result["slo"]["max_loss_frac"],
    )
    phase_text = " -> ".join(
        f"{duration:g}s@{rate:g}/s" for duration, rate in result["phases"]
    )
    lines = [
        "Closed-loop remediation: static policies vs the autotuner "
        f"({slo.describe()})",
        f"episode: {phase_text}, {result['submissions']} submissions, "
        f"scheduler={result['scheduler']}, seed={result['seed']}",
        "",
        f"{'configuration':<18}{'attain':>8}{'p99 ms':>10}{'loss':>8}"
        f"{'shed':>7}{'drop':>7}{'applies':>9}",
    ]
    for label in result["rows"]:
        cell = result["cells"][label]
        p99 = cell["p99_ms"]
        lines.append(
            f"{label:<18}{cell['attainment']:>8.3f}"
            + (f"{p99:>10.0f}" if p99 == p99 else f"{'-':>10}")
            + f"{cell['loss_frac']:>8.3f}{cell['shed']:>7}"
            f"{cell['dropped']:>7}{cell['applies']:>9}"
        )
    for label in result["rows"]:
        for decision in result["cells"][label]["decisions"]:
            symptoms = ",".join(
                s["kind"] for s in decision.get("symptoms", ())
            ) or "none"
            applied = decision.get("applied")
            lines.append(
                f"  {label} window {decision.get('window')}: "
                f"symptoms=[{symptoms}] "
                + (
                    f"applied {applied}" if applied
                    else f"no patch ({decision.get('skipped') or 'no winner'})"
                )
            )
    return "\n".join(lines)
