"""Scheduler-overhead comparison (paper §1/§6 motivation).

The paper argues that low-overhead heuristic scheduling must exist
"without solving expensive ILP problems" on the critical path. This
experiment measures (a) the wall-clock cost of a single Nimblock decision
pass under a loaded pending queue and (b) the cost of an exact
branch-and-bound schedule solve for a modest instance, demonstrating the
gap that motivates the heuristic design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from repro.apps.catalog import get_benchmark
from repro.config import SystemConfig
from repro.hypervisor.application import AppRequest
from repro.hypervisor.hypervisor import Hypervisor
from repro.ilp.model import ScheduleProblem
from repro.ilp.solver import BranchAndBoundSolver
from repro.schedulers.registry import make_scheduler


@dataclass(frozen=True)
class OverheadResult:
    """Measured decision costs (seconds per decision/solve)."""

    nimblock_decision_s: float
    exact_solve_s: float
    solver_nodes: int

    @property
    def speedup(self) -> float:
        """How much cheaper one heuristic decision is than one exact solve."""
        if self.nimblock_decision_s <= 0:
            return float("inf")
        return self.exact_solve_s / self.nimblock_decision_s


def _loaded_hypervisor(num_apps: int) -> Hypervisor:
    """A hypervisor with ``num_apps`` pending applications, mid-flight."""
    hypervisor = Hypervisor(make_scheduler("nimblock"))
    names = ["lenet", "imgc", "of", "3dr", "alexnet"]
    for index in range(num_apps):
        app = get_benchmark(names[index % len(names)])
        hypervisor.submit(
            AppRequest(
                name=app.name,
                graph=app.graph,
                batch_size=5,
                priority=(1, 3, 9)[index % 3],
                arrival_ms=float(index * 10),
            )
        )
    # Advance far enough that everything arrived and the board is busy.
    hypervisor.run(until=float(num_apps * 10 + 500))
    return hypervisor


def measure_decision_cost(
    num_apps: int = 12, iterations: int = 200
) -> float:
    """Mean wall-clock seconds per Nimblock decision pass."""
    hypervisor = _loaded_hypervisor(num_apps)
    ctx = hypervisor._ctx
    policy = hypervisor.scheduler
    start = time.perf_counter()
    for _ in range(iterations):
        policy.decide(ctx)
    return (time.perf_counter() - start) / iterations


def measure_exact_solve_cost(
    benchmark: str = "of", batch_size: int = 5, num_slots: int = 3
) -> tuple:
    """(seconds, nodes) of an exact branch-and-bound solve."""
    app = get_benchmark(benchmark)
    problem = ScheduleProblem(
        graph=app.graph,
        batch_size=batch_size,
        num_slots=num_slots,
        reconfig_ms=SystemConfig().reconfig_ms,
    )
    solver = BranchAndBoundSolver(problem)
    start = time.perf_counter()
    result = solver.solve()
    return time.perf_counter() - start, result.nodes_visited


def run(
    settings=None,
    cache=None,
    *,
    jobs=None,
    mode: str = "full",
    num_apps: int = 12,
    iterations: int = 200,
) -> OverheadResult:
    """Measure both costs and report the gap.

    Uniform experiment signature; the micro-benchmark ignores
    ``settings``, ``cache``, ``jobs`` and ``mode``.
    """
    decision = measure_decision_cost(num_apps, iterations)
    solve_s, nodes = measure_exact_solve_cost()
    return OverheadResult(
        nimblock_decision_s=decision,
        exact_solve_s=solve_s,
        solver_nodes=nodes,
    )


def format_result(result: OverheadResult) -> str:
    """Overhead comparison as text."""
    return (
        "Scheduler overhead comparison\n"
        f"  Nimblock decision pass: {result.nimblock_decision_s * 1e6:10.1f} us\n"
        f"  Exact schedule solve:   {result.exact_solve_s * 1e6:10.1f} us "
        f"({result.solver_nodes} nodes)\n"
        f"  Heuristic advantage:    {result.speedup:10.1f}x"
    )
