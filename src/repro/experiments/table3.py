"""Table 3: benchmark latencies and response times (paper §5.5).

A fixed-batch (5) sequence with 500 ms between events exercises all six
benchmarks. The top half reports each benchmark's execution and response
time under the no-sharing baseline; the bottom half reports response
times under the four sharing algorithms.

Paper shapes: baseline response times are dominated by head-of-line
blocking behind digit recognition (hundreds of seconds even for sub-second
benchmarks); sharing algorithms collapse short-running benchmarks to a few
seconds; Nimblock leads on the longer-running optical flow and AlexNet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.catalog import BENCHMARK_NAMES
from repro.errors import ExperimentError
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.hypervisor.results import AppResult
from repro.schedulers.registry import ALL_SCHEDULERS
from repro.workload.scenarios import fixed_batch_sequence

#: Table 3 workload parameters.
TABLE3_BATCH = 5
TABLE3_DELAY_MS = 500.0


@dataclass(frozen=True)
class Table3Result:
    """Execution and response times per benchmark per algorithm."""

    schedulers: Tuple[str, ...]
    execution_s: Dict[str, float]             # baseline execution time
    response_s: Dict[Tuple[str, str], float]  # (scheduler, benchmark)
    samples: Dict[str, int]

    def response(self, scheduler: str, benchmark: str) -> float:
        """Mean response time (s) of one table cell."""
        return self.response_s[(scheduler, benchmark)]


def _mean_by_benchmark(results: Sequence[AppResult]) -> Dict[str, float]:
    grouped: Dict[str, List[float]] = {}
    for result in results:
        grouped.setdefault(result.name, []).append(result.response_ms)
    return {
        name: sum(values) / len(values) / 1000.0
        for name, values in grouped.items()
    }


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    schedulers: Sequence[str] = ALL_SCHEDULERS,
) -> Table3Result:
    """Run the Table 3 workload under every algorithm."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    sequences = [
        fixed_batch_sequence(
            TABLE3_BATCH, seed,
            delay_ms=TABLE3_DELAY_MS, num_events=settings.num_events,
        )
        for seed in settings.seeds()
    ]
    cache.prewarm(("baseline", *schedulers), sequences, jobs=jobs)

    baseline = cache.combined("baseline", sequences)
    seen = {result.name for result in baseline}
    missing = set(BENCHMARK_NAMES) - seen
    if missing:
        raise ExperimentError(
            f"stimuli never selected benchmarks {sorted(missing)}; "
            "increase REPRO_SEQUENCES or REPRO_EVENTS"
        )

    execution: Dict[str, List[float]] = {}
    samples: Dict[str, int] = {}
    for result in baseline:
        execution.setdefault(result.name, []).append(result.execution_ms)
    execution_s = {
        name: sum(values) / len(values) / 1000.0
        for name, values in execution.items()
    }
    for name, values in execution.items():
        samples[name] = len(values)

    response: Dict[Tuple[str, str], float] = {}
    for scheduler in schedulers:
        results = cache.combined(scheduler, sequences)
        for name, mean in _mean_by_benchmark(results).items():
            response[(scheduler, name)] = mean
    return Table3Result(
        schedulers=tuple(schedulers),
        execution_s=execution_s,
        response_s=response,
        samples=samples,
    )


def format_result(result: Table3Result) -> str:
    """Table 3 as text."""
    headers = ["benchmark", "exec base (s)"] + [
        f"{s} resp (s)" for s in result.schedulers
    ]
    rows: List[List[object]] = []
    for name in BENCHMARK_NAMES:
        row: List[object] = [name, result.execution_s[name]]
        row.extend(
            result.response(scheduler, name)
            for scheduler in result.schedulers
        )
        rows.append(row)
    title = (
        f"Table 3: benchmark latencies and response times "
        f"(batch {TABLE3_BATCH}, {TABLE3_DELAY_MS:.0f} ms delay)"
    )
    return f"{title}\n{format_table(headers, rows)}"
