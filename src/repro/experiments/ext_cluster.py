"""Extension study: fleet scaling of the cluster tier (1 -> 64 boards).

The headline question for the ROADMAP's production north-star: if the
ext-overload burst workload grows with the fleet (offered load and
arrival rate both scale linearly with the board count), does fleet
throughput scale and does the p99 response stay flat?

Every fleet size runs the same per-board offered load — ``num_events``
and the arrival-rate multiplier both scale with ``num_boards`` — so
ideal scaling is a straight throughput line and a horizontal p99. What
bends the lines is the tier itself: placement skew, heterogeneous board
capability (the default fleet mix rotates zcu106/edge/hpc profiles) and
per-board power envelopes under ``power_aware`` placement.

Board simulation is sharded over ``jobs`` worker processes by the
cluster tier; any ``jobs`` value produces byte-identical merged
snapshots, so the study's numbers are jobs-invariant by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import (
    PLACEMENT_POLICIES,
    Cluster,
    DEFAULT_FLEET_MIX,
    fleet_profiles,
)
from repro.errors import ExperimentError
from repro.experiments.ext_overload import (
    OVERLOAD_BURST_FACTOR,
    OVERLOAD_WORKLOAD,
    study_sequence,
)
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)

#: Fleet sizes swept: 1 -> 64 boards, doubling.
FLEET_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Arrival-rate multiplier of the burst, per board. 4x is the
#: ext-overload acceptance stress point.
DEFAULT_RATE: float = 4.0


@dataclass(frozen=True)
class ClusterStudyResult:
    """Throughput and tail-latency scaling per (fleet size, placement)."""

    scheduler: str
    rate: float
    mix: Tuple[str, ...]
    fleet_sizes: Tuple[int, ...]
    placements: Tuple[str, ...]
    #: Fleet throughput, batch items per second, per (size, placement).
    throughput: Dict[Tuple[int, str], float]
    #: Merged p99 response, ms, per (size, placement).
    p99_ms: Dict[Tuple[int, str], float]
    #: Merged p50 response, ms, per (size, placement).
    p50_ms: Dict[Tuple[int, str], float]
    #: Retired applications per (size, placement).
    retired: Dict[Tuple[int, str], int]
    #: Estimated fleet energy, joules, per (size, placement).
    energy_j: Dict[Tuple[int, str], float]
    #: Merged snapshot digests per (size, placement) — the determinism
    #: witness the CI job diffs across ``--jobs`` values.
    digests: Dict[Tuple[int, str], str]

    def scaling(self, placement: str) -> List[float]:
        """Throughput normalized to the single-board fleet."""
        base = self.throughput[(self.fleet_sizes[0], placement)]
        return [
            self.throughput[(size, placement)] / base if base > 0 else 0.0
            for size in self.fleet_sizes
        ]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    scheduler: str = "nimblock",
    placements: Sequence[str] = PLACEMENT_POLICIES,
    fleet_sizes: Sequence[int] = FLEET_SIZES,
    rate: float = DEFAULT_RATE,
    mix: Sequence[str] = DEFAULT_FLEET_MIX,
    events_per_board: Optional[int] = None,
) -> ClusterStudyResult:
    """Sweep fleet sizes and placement policies under the burst workload.

    ``events_per_board`` defaults to ``settings.num_events`` (so a fleet
    of N boards faces ``N * num_events`` arrivals at ``N * rate`` times
    the nominal arrival rate — constant offered load per board).
    ``cache`` contributes only its fan-out width: cluster cells carry
    placement state that the run cache's keys do not encode.
    """
    from repro.experiments import parallel

    settings = settings or ExperimentSettings.from_env()
    if not placements:
        raise ExperimentError("placements must be non-empty")
    if not fleet_sizes:
        raise ExperimentError("fleet_sizes must be non-empty")
    if events_per_board is None:
        events_per_board = settings.num_events
    resolved_jobs = parallel.resolve_jobs(jobs, cache)

    throughput: Dict[Tuple[int, str], float] = {}
    p99: Dict[Tuple[int, str], float] = {}
    p50: Dict[Tuple[int, str], float] = {}
    retired: Dict[Tuple[int, str], int] = {}
    energy: Dict[Tuple[int, str], float] = {}
    digests: Dict[Tuple[int, str], str] = {}
    for num_boards in fleet_sizes:
        sequence = study_sequence(
            OVERLOAD_WORKLOAD,
            settings.base_seed,
            events_per_board * num_boards,
            rate * num_boards,
        )
        for placement in placements:
            fleet = Cluster(
                fleet_profiles(num_boards, mix),
                placement=placement,
                scheduler=scheduler,
                seed=settings.base_seed,
            )
            fleet.submit_sequence(sequence)
            report = fleet.run(jobs=resolved_jobs)
            key = (num_boards, placement)
            throughput[key] = report.throughput_items_per_s
            p99[key] = report.quantile_ms(0.99)
            p50[key] = report.quantile_ms(0.50)
            retired[key] = report.retired
            energy[key] = report.energy_j
            digests[key] = report.snapshot_digest()
    return ClusterStudyResult(
        scheduler=scheduler,
        rate=rate,
        mix=tuple(mix),
        fleet_sizes=tuple(fleet_sizes),
        placements=tuple(placements),
        throughput=throughput,
        p99_ms=p99,
        p50_ms=p50,
        retired=retired,
        energy_j=energy,
        digests=digests,
    )


def format_result(result: ClusterStudyResult) -> str:
    """Scaling tables: throughput (and speedup) plus p99 per placement."""
    blocks = []
    headers = ["boards"] + [
        f"{p} (items/s)" for p in result.placements
    ] + [f"{p} scaling" for p in result.placements]
    scalings = {p: result.scaling(p) for p in result.placements}
    rows: List[List[object]] = []
    for row_index, size in enumerate(result.fleet_sizes):
        row: List[object] = [size]
        row.extend(
            result.throughput[(size, p)] for p in result.placements
        )
        row.extend(
            f"{scalings[p][row_index]:.2f}x" for p in result.placements
        )
        rows.append(row)
    blocks.append(
        f"Extension: cluster throughput scaling ({result.scheduler} per "
        f"board, {'/'.join(result.mix)} mix, {result.rate:g}x burst per "
        "board)\n" + format_table(headers, rows)
    )

    headers = ["boards"] + [
        f"{p} p99 (s)" for p in result.placements
    ]
    rows = []
    for size in result.fleet_sizes:
        rows.append([size] + [
            result.p99_ms[(size, p)] / 1000.0 for p in result.placements
        ])
    blocks.append(
        "Extension: cluster p99 response under per-board-constant burst "
        "load\n" + format_table(headers, rows)
    )
    return "\n\n".join(blocks)
