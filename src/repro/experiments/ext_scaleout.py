"""Extension study: scale-out across a fleet of virtualized FPGAs (§1).

The cluster tier (:mod:`repro.cluster`) dispatches whole applications to
one of ``N`` Nimblock-scheduled boards. We sweep fleet sizes under a
heavy arrival stream and compare placement policies on mean response.

Historically this study ran on the toy ``FPGACluster`` front-end and
capped out at four homogeneous devices; it now drives the real cluster
tier — homogeneous zcu106 fleets for continuity with the old numbers —
and sweeps to 64 boards, sharding board simulation over ``jobs`` worker
processes.

Expected shapes: mean response improves steeply from one to two boards
and sub-linearly after (a fixed arrival stream can only be spread so
thin — past the knee every extra board mostly idles). The dispatch
policies trade blows: least-loaded (driven by the hypervisor's HLS work
estimates) isolates kilosecond outliers onto their own boards, while
round-robin's even spread can win on balanced streams — neither
dominates across workloads, which is itself the finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster import Cluster, fleet_profiles
from repro.experiments.runner import (
    ExperimentSettings,
    format_table,
)
from repro.workload.scenarios import STRESS, scenario_sequence

#: Fleet sizes swept: 1 -> 64, doubling (the old front-end stopped at 4).
FLEET_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Placement policies compared (the old study's two dispatch policies,
#: now backed by the cluster tier's placement registry).
DISPATCH_POLICIES: Tuple[str, ...] = ("round_robin", "least_loaded")


@dataclass(frozen=True)
class ScaleOutResult:
    """Mean response per (fleet size, placement policy)."""

    scheduler: str
    mean_response_ms: Dict[Tuple[int, str], float]
    placements: Dict[Tuple[int, str], List[int]]

    def response(self, devices: int, dispatch: str) -> float:
        """Mean response (ms) for one fleet configuration."""
        return self.mean_response_ms[(devices, dispatch)]

    def speedup(self, devices: int, dispatch: str) -> float:
        """Improvement over the single-device fleet (same placement)."""
        return self.response(1, dispatch) / self.response(devices, dispatch)


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,  # accepted for harness uniformity
    *,
    jobs=None,
    mode: str = "full",
    scheduler: str = "nimblock",
    fleet_sizes: Tuple[int, ...] = FLEET_SIZES,
) -> ScaleOutResult:
    """Sweep fleet sizes and placement policies on one arrival stream."""
    from repro.experiments import parallel

    settings = settings or ExperimentSettings.from_env()
    resolved_jobs = parallel.resolve_jobs(jobs, cache)
    sequences = [
        scenario_sequence(STRESS, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    means: Dict[Tuple[int, str], float] = {}
    placements: Dict[Tuple[int, str], List[int]] = {}
    for devices in fleet_sizes:
        for dispatch in DISPATCH_POLICIES:
            responses: List[float] = []
            balance = [0] * devices
            for sequence in sequences:
                fleet = Cluster(
                    fleet_profiles(devices, mix=("zcu106",)),
                    placement=dispatch,
                    scheduler=scheduler,
                    seed=settings.base_seed,
                )
                fleet.submit_sequence(sequence)
                report = fleet.run(jobs=resolved_jobs)
                for payload in report.boards:
                    balance[payload["board"]] += payload["submitted"]
                responses.append(report.sketch.mean)
            means[(devices, dispatch)] = sum(responses) / len(responses)
            placements[(devices, dispatch)] = balance
    return ScaleOutResult(
        scheduler=scheduler, mean_response_ms=means, placements=placements
    )


def format_result(result: ScaleOutResult) -> str:
    """Extension table: fleet size vs mean response per placement."""
    headers = ["devices"] + [
        f"{d} resp (s)" for d in DISPATCH_POLICIES
    ] + [f"{d} speedup" for d in DISPATCH_POLICIES]
    rows: List[List[object]] = []
    sizes = sorted({devices for devices, _ in result.mean_response_ms})
    for devices in sizes:
        row: List[object] = [devices]
        row.extend(
            result.response(devices, dispatch) / 1000.0
            for dispatch in DISPATCH_POLICIES
        )
        row.extend(
            f"{result.speedup(devices, dispatch):.2f}x"
            for dispatch in DISPATCH_POLICIES
        )
        rows.append(row)
    title = (
        f"Extension: scale-out across virtualized FPGAs "
        f"({result.scheduler} per device)"
    )
    return f"{title}\n{format_table(headers, rows)}"
