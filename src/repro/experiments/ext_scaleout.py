"""Extension study: scale-out across a fleet of virtualized FPGAs (§1).

A cluster front-end dispatches whole applications to one of ``N``
Nimblock-scheduled devices. We sweep fleet sizes under a heavy arrival
stream and compare the two dispatch policies.

Expected shapes: mean response improves steeply from one to two devices
and sub-linearly after. The dispatch policies trade blows: least-loaded
(driven by the hypervisor's HLS work estimates) isolates kilosecond
outliers onto their own devices, while round-robin's even spread can win
on balanced streams — neither dominates across workloads, which is itself
the finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.runner import ExperimentSettings, format_table, uniform_args
from repro.hypervisor.cluster import DISPATCH_POLICIES, FPGACluster
from repro.workload.scenarios import STRESS, scenario_sequence

#: Fleet sizes swept.
FLEET_SIZES: Tuple[int, ...] = (1, 2, 3, 4)


@dataclass(frozen=True)
class ScaleOutResult:
    """Mean response per (fleet size, dispatch policy)."""

    scheduler: str
    mean_response_ms: Dict[Tuple[int, str], float]
    placements: Dict[Tuple[int, str], List[int]]

    def response(self, devices: int, dispatch: str) -> float:
        """Mean response (ms) for one fleet configuration."""
        return self.mean_response_ms[(devices, dispatch)]

    def speedup(self, devices: int, dispatch: str) -> float:
        """Improvement over the single-device fleet (same dispatch)."""
        return self.response(1, dispatch) / self.response(devices, dispatch)


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,  # accepted for harness uniformity
    *,
    jobs=None,
    scheduler: str = "nimblock",
    fleet_sizes: Tuple[int, ...] = FLEET_SIZES,
) -> ScaleOutResult:
    """Sweep fleet sizes and dispatch policies on one arrival stream."""
    settings, cache = uniform_args(settings, cache)
    settings = settings or ExperimentSettings.from_env()
    sequences = [
        scenario_sequence(STRESS, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    means: Dict[Tuple[int, str], float] = {}
    placements: Dict[Tuple[int, str], List[int]] = {}
    for devices in fleet_sizes:
        for dispatch in DISPATCH_POLICIES:
            responses: List[float] = []
            balance = [0] * devices
            for sequence in sequences:
                cluster = FPGACluster(
                    devices, scheduler_name=scheduler, dispatch=dispatch
                )
                for request in sequence.to_requests():
                    cluster.submit(request)
                cluster.run()
                responses.extend(
                    r.result.response_ms for r in cluster.results()
                )
                for index, count in enumerate(cluster.device_utilization()):
                    balance[index] += count
            means[(devices, dispatch)] = sum(responses) / len(responses)
            placements[(devices, dispatch)] = balance
    return ScaleOutResult(
        scheduler=scheduler, mean_response_ms=means, placements=placements
    )


def format_result(result: ScaleOutResult) -> str:
    """Extension table: fleet size vs mean response per dispatch policy."""
    headers = ["devices"] + [
        f"{d} resp (s)" for d in DISPATCH_POLICIES
    ] + [f"{d} speedup" for d in DISPATCH_POLICIES]
    rows: List[List[object]] = []
    sizes = sorted({devices for devices, _ in result.mean_response_ms})
    for devices in sizes:
        row: List[object] = [devices]
        row.extend(
            result.response(devices, dispatch) / 1000.0
            for dispatch in DISPATCH_POLICIES
        )
        row.extend(
            f"{result.speedup(devices, dispatch):.2f}x"
            for dispatch in DISPATCH_POLICIES
        )
        rows.append(row)
    title = (
        f"Extension: scale-out across virtualized FPGAs "
        f"({result.scheduler} per device)"
    )
    return f"{title}\n{format_table(headers, rows)}"
