"""Extension study: overload protection under admission control.

Sweeps arrival-rate multipliers over the admission policies of
:mod:`repro.admission` (unbounded / reject / shed / degrade) and reports
how well each protects the high-priority p99 response when the offered
load exceeds what the board can serve.

The headline table is the **protection ratio**: each policy's
high-priority p99 at rate ``m``, normalized to the *same policy's* p99 at
the uncongested 1x rate. An unbounded queue lets the ratio blow up with
the backlog; reject/shed/degrade should hold it near 1 by refusing,
evicting or right-sizing work instead of queueing it. The SLO table at
the top rate adds the cost side: admission ratio, drops, shed count,
goodput under overload, starvation index and watchdog activity.

Every cell runs through :func:`repro.experiments.parallel.overload_cells`
— deliberately outside :class:`~repro.experiments.runner.RunCache`, whose
keys do not include the admission policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    Watchdog,
    WatchdogConfig,
)
from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.results import AppResult
from repro.metrics.slo import p99_response_ms
from repro.schedulers.registry import make_scheduler
from repro.sim.trace import Trace
from repro.workload.events import EventSequence
from repro.workload.generator import EVENTS_PER_SEQUENCE
from repro.workload.scenarios import (
    Scenario,
    SCENARIOS,
    overload_sequence,
)

#: Arrival-rate sweep: 1x is the uncongested reference each policy is
#: normalized against; 4x is the acceptance-criterion stress point.
DEFAULT_RATE_MULTIPLIERS: Tuple[float, ...] = (1.0, 2.0, 4.0)

#: The study's dedicated arrival regime. Nominal inter-arrival delays are
#: tuned so the 1x reference leaves the ten-slot board genuinely
#: uncongested (no overload window ever opens) while 4x queues deeply for
#: the whole burst; the paper's own scenarios either saturate the board
#: at 1x (stress, realtime) or never congest it at 4x (standard), leaving
#: no arrival-rate signal to protect against.
OVERLOAD_WORKLOAD = Scenario(
    "overload", (600.0, 900.0),
    "overload-study arrivals: uncongested at 1x, deeply queued at 4x",
)

#: Benchmark pool without the heavyweight outliers: "dr" (single-slot
#: latency up to 787 s) and "alexnet" (65 s) dominate every p99 and drown
#: the arrival-rate signal under max-sensitive tail metrics.
OVERLOAD_BENCHMARKS: Tuple[str, ...] = ("lenet", "imgc", "3dr", "of")

#: Small batches: paper-default batch sizes saturate the board on their
#: own, independent of the arrival rate.
OVERLOAD_BATCH_RANGE: Tuple[int, int] = (1, 4)

#: The overload episode must outlast the largest single-app service time
#: (~15-20 s simulated) several times over before queueing dominates the
#: tail, so study sequences are this many times longer than the paper's
#: events-per-sequence knob (default 20 -> 160 events).
OVERLOAD_BURST_FACTOR = 8


def study_sequence(
    workload: Scenario,
    seed: int,
    num_events: int,
    rate_multiplier: float,
    batch_range: Tuple[int, int] = OVERLOAD_BATCH_RANGE,
    benchmarks: Sequence[str] = OVERLOAD_BENCHMARKS,
) -> EventSequence:
    """One study sequence: the tuned pool/batch regime at one rate."""
    return overload_sequence(
        workload, seed, num_events, rate_multiplier,
        batch_range=batch_range, benchmarks=benchmarks,
    )


def run_overload_sequence(
    scheduler_name: str,
    sequence: EventSequence,
    policy: str = "unbounded",
    seed: int = 0,
    fault_config: Optional[FaultConfig] = None,
    config: Optional[SystemConfig] = None,
    watchdog_config: Optional[WatchdogConfig] = None,
) -> Tuple[List[AppResult], Trace, AdmissionController]:
    """Run one event sequence with admission control and a watchdog.

    The ``unbounded`` policy admits everything and arms no watermarks, so
    its runs are byte-identical to the plain path; the other policies may
    legally finish with fewer retired applications than arrivals (dropped
    and shed apps never retire). Returns the retired-app results, the
    trace, and the controller (whose ``stats`` carry the admission side).
    """
    injector = None
    if fault_config is not None and fault_config.enabled:
        injector = FaultInjector(fault_config)
    controller = AdmissionController(policy, seed=seed)
    watchdog = Watchdog(watchdog_config)
    hypervisor = Hypervisor(
        make_scheduler(scheduler_name), config=config, faults=injector,
        admission=controller, watchdog=watchdog,
    )
    for request in sequence.to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    if not hypervisor.all_retired:
        raise ExperimentError(
            f"scheduler {scheduler_name!r} failed to drain sequence "
            f"{sequence.label!r} under policy {controller.policy.kind!r} "
            f"({len(hypervisor.retired)} retired + {len(hypervisor.shed)} "
            f"shed of {len(hypervisor.apps)})"
        )
    return hypervisor.results(), hypervisor.trace, controller


@dataclass(frozen=True)
class OverloadStudyResult:
    """Protection ratios and SLO metrics for one rate-multiplier sweep."""

    workload: str
    scheduler: str
    high_priority: int
    rate_multipliers: Tuple[float, ...]
    policies: Tuple[str, ...]
    #: Pooled high-priority p99 response, ms, per (policy, rate).
    p99_high_ms: Dict[Tuple[str, float], float]
    #: Pooled all-priority p99 response, ms, per (policy, rate).
    p99_all_ms: Dict[Tuple[str, float], float]
    #: ``p99_high(rate) / p99_high(rates[0])`` per (policy, rate).
    protection: Dict[Tuple[str, float], float]
    admission_ratio: Dict[Tuple[str, float], float]
    drops: Dict[Tuple[str, float], int]
    shed: Dict[Tuple[str, float], int]
    goodput: Dict[Tuple[str, float], float]
    starvation: Dict[Tuple[str, float], float]
    overload_ms: Dict[Tuple[str, float], float]
    watchdog_kicks: Dict[Tuple[str, float], int]

    def protection_curve(self, policy: str) -> List[float]:
        """The policy's protection ratios over the swept rates."""
        return [
            self.protection[(policy, rate)]
            for rate in self.rate_multipliers
        ]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    workload: Scenario = OVERLOAD_WORKLOAD,
    scheduler: str = "fcfs",
    rate_multipliers: Sequence[float] = DEFAULT_RATE_MULTIPLIERS,
    policies: Sequence[str] = ADMISSION_POLICIES,
    num_events: Optional[int] = None,
) -> OverloadStudyResult:
    """Sweep arrival-rate multipliers over every admission policy.

    The default scheduler is priority-blind **FCFS**, not nimblock:
    Nimblock's token scheduler with batch-boundary preemption already
    shields high-priority applications from a backlog on its own (its
    unbounded 4x high-priority p99 barely moves), so running the study on
    it would measure the scheduler, not the admission layer. FCFS makes
    admission control the only protection mechanism in play; pass
    ``scheduler="nimblock"`` to see the scheduler-level protection
    instead. ``num_events`` defaults to ``settings.num_events *``
    :data:`OVERLOAD_BURST_FACTOR` — the burst must outlast the largest
    single-app service time several times over.

    The (policy, rate, sequence) grid fans out over ``jobs`` worker
    processes; each worker rebuilds its controller from the picklable
    (policy name, seed) pair, so the seeded retry jitter — and therefore
    every aggregate — is identical to a serial run. ``cache`` contributes
    only its platform config and fan-out width; overload cells are never
    stored in (or served from) the run cache, whose keys do not encode
    the admission policy.
    """
    from repro.experiments import parallel

    settings = settings or ExperimentSettings.from_env()
    config = cache.config if cache is not None else SystemConfig()
    rates = tuple(rate_multipliers)
    if not rates:
        raise ExperimentError("rate_multipliers must be non-empty")
    if not policies:
        raise ExperimentError("policies must be non-empty")
    if num_events is None:
        num_events = settings.num_events * OVERLOAD_BURST_FACTOR
    seeds = settings.seeds()
    sequences = {
        rate: [
            study_sequence(workload, seed, num_events, rate)
            for seed in seeds
        ]
        for rate in rates
    }
    tasks = [
        (scheduler, sequence, policy, seeds[index], None, config)
        for policy in policies
        for rate in rates
        for index, sequence in enumerate(sequences[rate])
    ]
    cells = iter(
        parallel.overload_cells(
            tasks, jobs=parallel.resolve_jobs(jobs, cache)
        )
    )

    p99_all: Dict[Tuple[str, float], float] = {}
    admission: Dict[Tuple[str, float], float] = {}
    drops: Dict[Tuple[str, float], int] = {}
    shed: Dict[Tuple[str, float], int] = {}
    goodput: Dict[Tuple[str, float], float] = {}
    starvation: Dict[Tuple[str, float], float] = {}
    overload: Dict[Tuple[str, float], float] = {}
    kicks: Dict[Tuple[str, float], int] = {}
    pooled_by_key: Dict[Tuple[str, float], List[AppResult]] = {}
    high_priority = 0
    for policy in policies:
        for rate in rates:
            pooled: List[AppResult] = []
            ratios: List[float] = []
            goodputs: List[float] = []
            starvations: List[float] = []
            key = (policy, rate)
            drops[key] = shed[key] = kicks[key] = 0
            overload[key] = 0.0
            for _ in range(len(seeds)):
                cell = next(cells)
                pooled.extend(cell.results)
                ratios.append(cell.admission_ratio)
                goodputs.append(cell.goodput_under_overload)
                starvations.append(cell.starvation_index)
                drops[key] += cell.drops
                shed[key] += cell.shed
                kicks[key] += cell.watchdog_kicks
                overload[key] += cell.overload_ms
            if pooled:
                high_priority = max(
                    high_priority,
                    max(result.priority for result in pooled),
                )
            admission[key] = sum(ratios) / len(ratios)
            goodput[key] = sum(goodputs) / len(goodputs)
            starvation[key] = sum(starvations) / len(starvations)
            p99_all[key] = p99_response_ms(pooled)
            # High-priority p99 needs the highest priority over the
            # whole grid (drop-heavy cells may retire none of them), so
            # it is resolved in a second pass over the pooled results.
            pooled_by_key[key] = pooled
    return _finalize(
        workload, scheduler, high_priority, rates, tuple(policies),
        p99_all, admission, drops, shed, goodput, starvation, overload,
        kicks, pooled_by_key,
    )


def _finalize(
    workload, scheduler, high_priority, rates, policies, p99_all,
    admission, drops, shed, goodput, starvation, overload, kicks,
    pooled_by_key,
) -> OverloadStudyResult:
    """Second pass: high-priority p99 and protection vs the 1x column."""
    p99_high: Dict[Tuple[str, float], float] = {}
    protection: Dict[Tuple[str, float], float] = {}
    for policy in policies:
        for rate in rates:
            key = (policy, rate)
            p99_high[key] = p99_response_ms(
                pooled_by_key[key], high_priority
            )
        base = p99_high[(policy, rates[0])]
        for rate in rates:
            key = (policy, rate)
            value = p99_high[key]
            if math.isnan(value) or math.isnan(base) or base <= 0:
                protection[key] = float("nan")
            else:
                protection[key] = value / base
    return OverloadStudyResult(
        workload=workload.name,
        scheduler=scheduler,
        high_priority=high_priority,
        rate_multipliers=rates,
        policies=policies,
        p99_high_ms=p99_high,
        p99_all_ms=p99_all,
        protection=protection,
        admission_ratio=admission,
        drops=drops,
        shed=shed,
        goodput=goodput,
        starvation=starvation,
        overload_ms=overload,
        watchdog_kicks=kicks,
    )


def format_result(result: OverloadStudyResult) -> str:
    """Protection-ratio table plus the SLO table at the top rate."""
    blocks = []
    headers = ["policy"] + [
        f"{rate:g}x" for rate in result.rate_multipliers
    ]
    rows: List[List[object]] = []
    for policy in result.policies:
        rows.append([policy] + [
            _ratio(result.protection[(policy, rate)])
            for rate in result.rate_multipliers
        ])
    blocks.append(
        f"Extension: p99 protection ratio for priority-"
        f"{result.high_priority} apps ({result.workload} workload, "
        f"{result.scheduler}; 1.00 = uncongested p99 held)\n"
        + format_table(headers, rows)
    )

    top = result.rate_multipliers[-1]
    headers = ["policy", "p99 hi (ms)", "admit", "drops", "shed",
               "goodput (items/s)", "starvation", "overload (ms)",
               "wd kicks"]
    rows = []
    for policy in result.policies:
        key = (policy, top)
        rows.append([
            policy,
            _ratio(result.p99_high_ms[key]),
            result.admission_ratio[key],
            result.drops[key],
            result.shed[key],
            result.goodput[key],
            result.starvation[key],
            result.overload_ms[key],
            result.watchdog_kicks[key],
        ])
    blocks.append(
        f"Extension: SLO metrics at {top:g}x arrival rate\n"
        + format_table(headers, rows)
    )
    return "\n\n".join(blocks)


def _ratio(value: float) -> object:
    """NaN-tolerant table cell."""
    return "n/a" if math.isnan(value) else value


# ---------------------------------------------------------------------------
# `repro overload` CLI entry point
# ---------------------------------------------------------------------------
def overload_report(
    rate_multiplier: float = 4.0,
    seed: int = 1,
    num_events: Optional[int] = None,
    workload_name: str = "overload",
    scheduler: str = "fcfs",
    policies: Sequence[str] = ADMISSION_POLICIES,
) -> str:
    """One-shot overload drill: every policy, one sequence, one rate.

    Reports per-policy p99 (high-priority and overall), protection ratio
    versus the same policy at 1x, and the admission/shedding cost side.
    The default ``"overload"`` workload is the study's dedicated regime
    (:data:`OVERLOAD_WORKLOAD`); the paper's congestion scenarios are
    accepted by name too.
    """
    from repro.metrics.slo import slo_report

    if workload_name == OVERLOAD_WORKLOAD.name:
        workload = OVERLOAD_WORKLOAD
    else:
        workload = next(
            (s for s in SCENARIOS if s.name == workload_name), None
        )
    if workload is None:
        known = sorted(
            [s.name for s in SCENARIOS] + [OVERLOAD_WORKLOAD.name]
        )
        raise ExperimentError(
            f"unknown workload scenario {workload_name!r}; known: {known}"
        )
    if num_events is None:
        num_events = EVENTS_PER_SEQUENCE * OVERLOAD_BURST_FACTOR
    calm = study_sequence(workload, seed, num_events, 1.0)
    hot = study_sequence(workload, seed, num_events, rate_multiplier)
    headers = ["policy", "p99 hi (ms)", "protection", "admit", "drops",
               "shed", "goodput (items/s)", "starvation", "wd kicks"]
    rows: List[List[object]] = []
    for policy in policies:
        calm_results, _, _ = run_overload_sequence(
            scheduler, calm, policy, seed=seed
        )
        results, trace, _ = run_overload_sequence(
            scheduler, hot, policy, seed=seed
        )
        high = max(
            (r.priority for r in calm_results + results), default=0
        )
        report = slo_report(trace, results)
        base = p99_response_ms(calm_results, high)
        p99 = p99_response_ms(results, high)
        ratio = (
            float("nan")
            if math.isnan(p99) or math.isnan(base) or base <= 0
            else p99 / base
        )
        rows.append([
            policy, _ratio(p99), _ratio(ratio), report.admission_ratio,
            report.drops, report.shed, report.goodput_under_overload,
            report.starvation_index, report.watchdog_kicks,
        ])
    title = (
        f"Overload drill: rate={rate_multiplier:g}x "
        f"workload={workload_name} scheduler={scheduler} seed={seed} "
        f"events={num_events}"
    )
    return title + "\n" + format_table(headers, rows)
