"""Extension study: batching strategies (the §3.2 motivation, quantified).

One logical workload — an application with N total items — is presented
to the hypervisor whole, in fixed chunks, or one item per request. The
paper's claim: large batches hide reconfiguration latency and avoid
redundant scheduling decisions, so completion time degrades as the batch
is fragmented.

Measured as the time until the *last* item of the logical workload
completes, under Nimblock, with the board otherwise idle (isolating the
batching effect from contention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.catalog import get_benchmark
from repro.experiments.runner import format_table
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.workload.batching import (
    BatchingStrategy,
    chunks,
    per_item,
    requests_for,
    whole,
)

#: Strategies compared, in fragmentation order.
def default_strategies() -> List[BatchingStrategy]:
    """whole, halves-of-30, chunks of 5, one per item."""
    return [whole(), chunks(15), chunks(5), per_item()]


#: Benchmarks studied: a short chain (reconfig-dominated) and a longer one.
STUDY_BENCHMARKS: Tuple[str, ...] = ("imgc", "lenet", "of")

#: Total logical items per workload.
TOTAL_ITEMS = 30


@dataclass(frozen=True)
class BatchingResult:
    """Completion time per (benchmark, strategy)."""

    total_items: int
    benchmarks: Tuple[str, ...]
    strategies: Tuple[str, ...]
    completion_ms: Dict[Tuple[str, str], float]
    reconfigs: Dict[Tuple[str, str], int]

    def completion(self, benchmark: str, strategy: str) -> float:
        """Time until the last item finished."""
        return self.completion_ms[(benchmark, strategy)]

    def fragmentation_penalty(self, benchmark: str) -> float:
        """per_item completion relative to whole-batch completion."""
        return (
            self.completion(benchmark, "per_item")
            / self.completion(benchmark, "whole")
        )


def run(
    settings=None,
    cache=None,  # harness uniformity
    *,
    jobs=None,
    mode: str = "full",
    benchmarks: Sequence[str] = STUDY_BENCHMARKS,
    total_items: int = TOTAL_ITEMS,
    strategies: Optional[List[BatchingStrategy]] = None,
) -> BatchingResult:
    """Measure every (benchmark, strategy) cell on an idle board."""
    strategies = strategies or default_strategies()
    completion: Dict[Tuple[str, str], float] = {}
    reconfigs: Dict[Tuple[str, str], int] = {}
    for name in benchmarks:
        app = get_benchmark(name)
        for strategy in strategies:
            hypervisor = Hypervisor(make_scheduler("nimblock"))
            for request in requests_for(
                app.name, app.graph, total_items, strategy
            ):
                hypervisor.submit(request)
            hypervisor.run()
            results = hypervisor.results()
            completion[(name, strategy.name)] = max(
                r.retire_ms for r in results
            )
            reconfigs[(name, strategy.name)] = sum(
                r.reconfig_count for r in results
            )
    return BatchingResult(
        total_items=total_items,
        benchmarks=tuple(benchmarks),
        strategies=tuple(s.name for s in strategies),
        completion_ms=completion,
        reconfigs=reconfigs,
    )


def format_result(result: BatchingResult) -> str:
    """Batching table: completion time and reconfiguration counts."""
    headers = ["benchmark"] + [
        f"{s} (s)" for s in result.strategies
    ] + [f"{s} cfgs" for s in result.strategies]
    rows: List[List[object]] = []
    for name in result.benchmarks:
        row: List[object] = [name]
        row.extend(
            result.completion(name, s) / 1000.0 for s in result.strategies
        )
        row.extend(result.reconfigs[(name, s)] for s in result.strategies)
        rows.append(row)
    title = (
        f"Extension: batching strategies for {result.total_items} logical "
        "items (idle board, Nimblock; §3.2 motivation)"
    )
    return f"{title}\n{format_table(headers, rows)}"
