"""Extension study: heterogeneous fleets (Hetero-ViTAL's setting, §6.1).

Hetero-ViTAL extends slot virtualization across *heterogeneous classes of
devices*. This study puts the cluster front-end in that setting: the same
arrival stream runs on (a) one big board, (b) a homogeneous pair of big
boards, and (c) a heterogeneous pair — one big datacenter-class board plus
one small edge-class board with fewer slots and slower reconfiguration.

Expected shapes: the heterogeneous pair lands between the single board and
the homogeneous pair (the small board adds real capacity), and
capability-normalized least-loaded dispatch places more applications on
the big board than on the small one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.experiments.runner import ExperimentSettings, format_table
from repro.hypervisor.cluster import FPGACluster
from repro.workload.scenarios import STRESS, scenario_sequence

#: The edge-class board: fewer slots, slower configuration port.
EDGE_CONFIG = SystemConfig(num_slots=4, reconfig_ms=120.0)

#: Fleet definitions: name -> list of device configs.
def fleet_definitions() -> Dict[str, List[SystemConfig]]:
    big = SystemConfig()
    return {
        "1x big": [big],
        "2x big": [big, big],
        "big + edge": [big, EDGE_CONFIG],
    }


@dataclass(frozen=True)
class HeteroResult:
    """Mean response and placement balance per fleet."""

    fleets: Tuple[str, ...]
    mean_response_ms: Dict[str, float]
    placements: Dict[str, Tuple[int, ...]]

    def response(self, fleet: str) -> float:
        """Fleet-wide mean response (ms)."""
        return self.mean_response_ms[fleet]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,  # harness uniformity
    *,
    jobs=None,
    mode: str = "full",
    scheduler: str = "nimblock",
) -> HeteroResult:
    """Run the arrival stream on each fleet definition."""
    settings = settings or ExperimentSettings.from_env()
    sequences = [
        scenario_sequence(STRESS, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    means: Dict[str, float] = {}
    placements: Dict[str, Tuple[int, ...]] = {}
    for fleet_name, configs in fleet_definitions().items():
        responses: List[float] = []
        balance = [0] * len(configs)
        for sequence in sequences:
            cluster = FPGACluster(
                1, scheduler_name=scheduler, device_configs=configs,
                dispatch="least_loaded",
            )
            for request in sequence.to_requests():
                cluster.submit(request)
            cluster.run()
            responses.extend(
                r.result.response_ms for r in cluster.results()
            )
            for index, count in enumerate(cluster.device_utilization()):
                balance[index] += count
        means[fleet_name] = sum(responses) / len(responses)
        placements[fleet_name] = tuple(balance)
    return HeteroResult(
        fleets=tuple(fleet_definitions()),
        mean_response_ms=means,
        placements=placements,
    )


def format_result(result: HeteroResult) -> str:
    """Heterogeneous-fleet table."""
    headers = ["fleet", "mean response (s)", "placement"]
    rows: List[List[object]] = []
    for fleet in result.fleets:
        rows.append(
            [
                fleet,
                result.response(fleet) / 1000.0,
                "/".join(str(c) for c in result.placements[fleet]),
            ]
        )
    title = (
        "Extension: heterogeneous fleets (big = 10 slots/80 ms, "
        "edge = 4 slots/120 ms; capability-normalized dispatch)"
    )
    return f"{title}\n{format_table(headers, rows)}"
