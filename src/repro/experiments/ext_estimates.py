"""Extension study: sensitivity to HLS latency-estimate error.

Nimblock's tokens, PREMA's shortest-first pick and both algorithms'
allocation logic consume HLS latency *estimates* (paper §4.1). Real HLS
reports deviate from silicon. This study perturbs every estimate by a
bounded relative error (deterministic per task, see
``repro.apps.hls.synthesize_report``) and measures how each algorithm's
response-time reduction degrades.

Expected shape: both algorithms are remarkably flat. Estimates gate
*ordering* decisions, not correctness, and the suite's benchmarks differ
in latency by orders of magnitude (18 ms image-compression tasks vs 65 s
digit-recognition tasks), so a bounded ±40% error almost never flips a
comparison. Estimate quality would only start to matter between
applications of similar scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.experiments.runner import (
    ExperimentSettings,
    format_table,
)
from repro.metrics.response import mean_reduction_factor
from repro.workload.scenarios import STRESS, scenario_sequence

#: Relative estimation-error bounds swept.
ERROR_LEVELS: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4)

#: Estimate-consuming algorithms studied.
STUDIED: Tuple[str, ...] = ("prema", "nimblock")


@dataclass(frozen=True)
class EstimateSensitivityResult:
    """Reduction factor per (error level, scheduler)."""

    error_levels: Tuple[float, ...]
    schedulers: Tuple[str, ...]
    reductions: Dict[Tuple[float, str], float]

    def reduction(self, error: float, scheduler: str) -> float:
        """One cell of the sensitivity table."""
        return self.reductions[(error, scheduler)]

    def degradation(self, scheduler: str) -> float:
        """Reduction at the worst error relative to perfect estimates."""
        perfect = self.reduction(self.error_levels[0], scheduler)
        worst = self.reduction(self.error_levels[-1], scheduler)
        return worst / perfect


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,  # accepted for harness uniformity; config varies per cell
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    error_levels: Sequence[float] = ERROR_LEVELS,
    schedulers: Sequence[str] = STUDIED,
) -> EstimateSensitivityResult:
    """Sweep estimation error for each studied scheduler."""
    from repro.experiments import parallel

    settings = settings or ExperimentSettings.from_env()
    sequences = [
        scenario_sequence(STRESS, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    # Flat task list in the exact aggregation order: per error level, the
    # baseline runs first, then each studied scheduler.
    tasks = []
    for error in error_levels:
        config = SystemConfig(hls_estimation_error=error)
        for name in ("baseline", *schedulers):
            for sequence in sequences:
                tasks.append((name, sequence, config, mode))
    runs = iter(
        parallel.map_runs(tasks, jobs=parallel.resolve_jobs(jobs, cache))
    )
    reductions: Dict[Tuple[float, str], float] = {}
    for error in error_levels:
        baseline: List = []
        for _sequence in sequences:
            baseline.extend(next(runs))
        for scheduler in schedulers:
            results: List = []
            for _sequence in sequences:
                results.extend(next(runs))
            reductions[(error, scheduler)] = mean_reduction_factor(
                baseline, results
            )
    return EstimateSensitivityResult(
        error_levels=tuple(error_levels),
        schedulers=tuple(schedulers),
        reductions=reductions,
    )


def format_result(result: EstimateSensitivityResult) -> str:
    """Sensitivity table: error levels x schedulers."""
    headers = ["estimate error"] + [f"{s} (x)" for s in result.schedulers]
    rows: List[List[object]] = []
    for error in result.error_levels:
        row: List[object] = [f"±{error:.0%}"]
        row.extend(
            result.reduction(error, scheduler)
            for scheduler in result.schedulers
        )
        rows.append(row)
    title = (
        "Extension: sensitivity to HLS latency-estimate error "
        "(stress arrivals, reduction vs baseline)"
    )
    return f"{title}\n{format_table(headers, rows)}"
