"""Experiment registry: one uniform public API over every study.

Historically each ``fig*`` / ``table*`` / ``ext_*`` module grew its own
``run`` signature and the CLI guessed capabilities by introspection
(the old ``_needs_runs(module)`` hack). The registry replaces that with a
declared, uniform contract:

* every experiment module exposes
  ``run(settings=None, cache=None, *, jobs=None, mode="full", ...) ->
  <module result>`` and ``format_result(result) -> str``;
* the registry wraps each module in an :class:`Experiment` whose
  ``run(settings, *, cache=None, jobs=None, mode="full")`` returns an
  :class:`ExperimentResult` (name + raw value + rendered text);
* dispatch — CLI, benchmarks, notebooks — goes through
  :func:`get_experiment` / :func:`run_experiment` and never special-cases
  a module again.

Modules are imported lazily on first lookup, so importing the registry
(or ``repro`` itself) stays cheap.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentSettings, RunCache


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform result envelope: raw value plus its rendered text."""

    name: str
    value: Any
    text: str
    title: str = ""


@runtime_checkable
class ExperimentLike(Protocol):
    """Anything invokable through the registry's uniform signature."""

    name: str

    def run(
        self,
        settings: Optional[ExperimentSettings] = None,
        *,
        cache: Optional[RunCache] = None,
        jobs: Optional[int] = None,
        mode: str = "full",
    ) -> ExperimentResult:
        """Execute the experiment and return its uniform result."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class Experiment:
    """Registry entry binding a CLI name to one experiment module."""

    name: str
    module_path: str
    _module_cache: List[ModuleType] = field(
        default_factory=list, repr=False, compare=False
    )

    def module(self) -> ModuleType:
        """The lazily imported experiment module."""
        if not self._module_cache:
            self._module_cache.append(
                importlib.import_module(self.module_path)
            )
        return self._module_cache[0]

    @property
    def title(self) -> str:
        """First docstring line of the module (what the study produces)."""
        doc = self.module().__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else self.name

    def run(
        self,
        settings: Optional[ExperimentSettings] = None,
        *,
        cache: Optional[RunCache] = None,
        jobs: Optional[int] = None,
        mode: str = "full",
    ) -> ExperimentResult:
        """Uniform entry point: execute, render, wrap.

        ``settings`` defaults to :meth:`ExperimentSettings.from_env`;
        ``cache`` defaults to a fresh memory-only :class:`RunCache`
        carrying ``jobs`` as its fan-out width and ``mode`` as its run
        mode (results are mode-independent; ``mode="metrics"`` only
        skips trace-row recording).
        """
        module = self.module()
        if settings is None:
            settings = ExperimentSettings.from_env()
        if cache is None:
            cache = RunCache(jobs=jobs, mode=mode)
        value = module.run(settings, cache, jobs=jobs, mode=mode)
        return ExperimentResult(
            name=self.name, value=value,
            text=module.format_result(value), title=self.title,
        )


#: Every registered experiment, in CLI-name order. Names match the
#: command line (hyphenated); module paths are imported on first use.
_SPECS: Tuple[Tuple[str, str], ...] = (
    ("ext-autotune", "repro.experiments.ext_autotune"),
    ("ext-batching", "repro.experiments.ext_batching"),
    ("ext-capacity", "repro.experiments.ext_capacity"),
    ("ext-cluster", "repro.experiments.ext_cluster"),
    ("ext-estimates", "repro.experiments.ext_estimates"),
    ("ext-faults", "repro.experiments.ext_faults"),
    ("ext-hetero", "repro.experiments.ext_hetero"),
    ("ext-interconnect", "repro.experiments.ext_interconnect"),
    ("ext-mixes", "repro.experiments.ext_mixes"),
    ("ext-overload", "repro.experiments.ext_overload"),
    ("ext-scaleout", "repro.experiments.ext_scaleout"),
    ("ext-schedulers", "repro.experiments.ext_schedulers"),
    ("ext-seeds", "repro.experiments.ext_seeds"),
    ("ext-service", "repro.experiments.ext_service"),
    ("ext-utilization", "repro.experiments.ext_utilization"),
    ("fig2", "repro.experiments.fig2_modes"),
    ("fig4", "repro.experiments.fig4_taskgraph"),
    ("fig5", "repro.experiments.fig5_response"),
    ("fig6", "repro.experiments.fig6_tail"),
    ("fig7", "repro.experiments.fig7_deadlines"),
    ("fig8", "repro.experiments.fig8_breakdown"),
    ("fig9", "repro.experiments.fig9_ablation"),
    ("fig10", "repro.experiments.fig10_alexnet"),
    ("fig11", "repro.experiments.fig11_throughput"),
    ("overhead", "repro.experiments.overhead"),
    ("report", "repro.experiments.report"),
    ("table1", "repro.experiments.table1"),
    ("table2", "repro.experiments.table2"),
    ("table3", "repro.experiments.table3"),
)

_REGISTRY: Dict[str, Experiment] = {
    name: Experiment(name, path) for name, path in _SPECS
}


def experiment_names() -> Tuple[str, ...]:
    """Every registered experiment name, sorted."""
    return tuple(sorted(_REGISTRY))


def all_experiments() -> Tuple[Experiment, ...]:
    """Every registered experiment, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_experiment(name: str) -> Experiment:
    """Look one experiment up by CLI name."""
    experiment = _REGISTRY.get(name)
    if experiment is None:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return experiment


def run_experiment(
    name: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
    mode: str = "full",
) -> ExperimentResult:
    """One-call uniform dispatch: look up, run, wrap."""
    return get_experiment(name).run(
        settings, cache=cache, jobs=jobs, mode=mode
    )
