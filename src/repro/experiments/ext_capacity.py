"""Extension study: capacity planning — how many slots does a workload need?

The overlay's slot count is a floorplanning decision (§2.1: "Nimblock ...
is flexible across different numbers of slots"). This study sweeps the
slot count for a fixed stress workload under Nimblock, reporting mean
response and the marginal gain of each increment — the same knee-finding
logic the saturation analysis applies per application, applied to the
whole platform.

Expected shape: steep gains up to roughly the workload's aggregate
parallelism, then a plateau; the knee tells an operator how many slots
this tenant mix actually pays for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.experiments.runner import ExperimentSettings, format_table
from repro.workload.scenarios import STRESS, scenario_sequence

#: Slot counts swept (the paper's platform is 10).
DEFAULT_SLOT_COUNTS: Tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14)


@dataclass(frozen=True)
class CapacityResult:
    """Mean response per slot count, plus the detected knee."""

    scheduler: str
    slot_counts: Tuple[int, ...]
    mean_response_ms: Dict[int, float]

    def response(self, slots: int) -> float:
        """Mean response (ms) at one slot count."""
        return self.mean_response_ms[slots]

    def marginal_gain(self, slots: int) -> float:
        """Fractional improvement over the previous swept count."""
        index = self.slot_counts.index(slots)
        if index == 0:
            return 0.0
        before = self.response(self.slot_counts[index - 1])
        return (before - self.response(slots)) / before

    def knee(self, threshold: float = 0.05) -> int:
        """Smallest slot count after which every increment gains < threshold."""
        for index, slots in enumerate(self.slot_counts):
            remaining = self.slot_counts[index + 1:]
            if all(
                self.marginal_gain(later) < threshold for later in remaining
            ):
                return slots
        return self.slot_counts[-1]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,  # per-slot-count configs cannot share the default cache
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    scheduler: str = "nimblock",
    slot_counts: Sequence[int] = DEFAULT_SLOT_COUNTS,
) -> CapacityResult:
    """Sweep the overlay slot count for one workload."""
    from repro.experiments import parallel

    settings = settings or ExperimentSettings.from_env()
    sequences = [
        scenario_sequence(STRESS, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    # One task per (slot count, sequence) cell; each cell carries its own
    # platform config, reconstructed worker-side.
    tasks = [
        (scheduler, sequence, SystemConfig(num_slots=slots), mode)
        for slots in slot_counts
        for sequence in sequences
    ]
    runs = iter(
        parallel.map_runs(tasks, jobs=parallel.resolve_jobs(jobs, cache))
    )
    means: Dict[int, float] = {}
    for slots in slot_counts:
        responses: List[float] = []
        for _sequence in sequences:
            responses.extend(result.response_ms for result in next(runs))
        means[slots] = sum(responses) / len(responses)
    return CapacityResult(
        scheduler=scheduler,
        slot_counts=tuple(slot_counts),
        mean_response_ms=means,
    )


def format_result(result: CapacityResult) -> str:
    """Capacity table with marginal gains and the knee."""
    headers = ["slots", "mean response (s)", "marginal gain"]
    rows: List[List[object]] = []
    for slots in result.slot_counts:
        rows.append(
            [
                slots,
                result.response(slots) / 1000.0,
                f"{result.marginal_gain(slots):+.1%}",
            ]
        )
    title = (
        f"Extension: capacity planning under {result.scheduler} "
        "(stress workload, slot-count sweep)"
    )
    return (
        f"{title}\n{format_table(headers, rows)}\n"
        f"knee (5% threshold): {result.knee()} slots"
    )
