"""Experiment harness: one module per table/figure of the evaluation (§5).

Every experiment is regenerable from the command line
(``python -m repro.cli <experiment>``) and from the pytest-benchmark
harness under ``benchmarks/``. Runs are cached per (scheduler, stimulus,
platform) within a harness instance so Figures 5, 6 and 7 — which the
paper derives from the same test sequences — share simulations.
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    all_experiments,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    run_sequence,
)
from repro.experiments import (
    parallel,
    ext_batching,
    ext_capacity,
    ext_cluster,
    ext_estimates,
    ext_hetero,
    ext_interconnect,
    ext_mixes,
    ext_scaleout,
    ext_schedulers,
    ext_seeds,
    ext_utilization,
    fig2_modes,
    fig4_taskgraph,
    fig5_response,
    fig6_tail,
    fig7_deadlines,
    fig8_breakdown,
    fig9_ablation,
    fig10_alexnet,
    fig11_throughput,
    overhead,
    report,
    table1,
    table2,
    table3,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSettings",
    "RunCache",
    "all_experiments",
    "experiment_names",
    "get_experiment",
    "run_experiment",
    "run_sequence",
    "parallel",
    "ext_batching",
    "ext_capacity",
    "ext_cluster",
    "ext_estimates",
    "ext_hetero",
    "ext_interconnect",
    "ext_mixes",
    "ext_scaleout",
    "ext_schedulers",
    "ext_seeds",
    "ext_utilization",
    "fig2_modes",
    "fig4_taskgraph",
    "fig5_response",
    "fig6_tail",
    "fig7_deadlines",
    "fig8_breakdown",
    "fig9_ablation",
    "fig10_alexnet",
    "fig11_throughput",
    "overhead",
    "report",
    "table1",
    "table2",
    "table3",
]
