"""Figure 4: the AlexNet task graph (structure summary + DOT source).

Prints the per-stage layer table (width and per-task latency — identical
tasks per stage, matching Figure 4's coloring) and the Graphviz source
that renders the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps.catalog import get_benchmark
from repro.experiments.runner import format_table
from repro.taskgraph.dot import stage_summary, to_dot
from repro.taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class Fig4Result:
    """AlexNet graph structure plus renderable DOT source."""

    graph: TaskGraph
    stages: Tuple[dict, ...]
    dot_source: str

    @property
    def num_tasks(self) -> int:
        """38 in the paper."""
        return self.graph.num_tasks

    @property
    def num_edges(self) -> int:
        """184 in the paper."""
        return self.graph.num_edges


def run(
    settings=None,
    cache=None,
    *,
    jobs=None,
    mode: str = "full",
    benchmark: str = "alexnet",
) -> Fig4Result:
    """Summarize one benchmark's task graph (AlexNet by default).

    Uniform experiment signature; a structural study, so ``settings``,
    ``cache`` and ``jobs`` are ignored.
    """
    graph = get_benchmark(benchmark).graph
    return Fig4Result(
        graph=graph,
        stages=tuple(stage_summary(graph)),
        dot_source=to_dot(graph),
    )


def format_result(result: Fig4Result) -> str:
    """Figure 4 as a stage table plus DOT (render with `dot -Tpng`)."""
    headers = ["stage", "width", "task latency (ms)"]
    rows: List[List[object]] = [
        [s["stage"], s["width"], s["latency_ms"]] for s in result.stages
    ]
    title = (
        f"Figure 4: {result.graph.name} task graph — "
        f"{result.num_tasks} tasks, {result.num_edges} edges"
    )
    return (
        f"{title}\n{format_table(headers, rows)}\n\n"
        "Graphviz source (pipe into `dot -Tpng -o fig4.png`):\n"
        f"{result.dot_source}"
    )
