"""Figure 6: tail (95th/99th percentile) response time, normalized.

The paper captures tail behaviour as the 95th and 99th percentiles of the
per-event normalized response-time distribution for each scenario. Lower
is better. Shapes to reproduce: Nimblock best at the 95th percentile
everywhere; in the real-time test Nimblock's 99th percentile beats RR and
FCFS by large factors (4.8x / 6.6x in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.metrics.response import tail_normalized_response
from repro.schedulers.registry import SHARING_SCHEDULERS
from repro.workload.scenarios import SCENARIOS, Scenario, scenario_sequence

#: The two tail percentiles of Figure 6.
TAIL_PERCENTILES: Tuple[float, float] = (95.0, 99.0)


@dataclass(frozen=True)
class Fig6Result:
    """Normalized tail response per (scenario, percentile, scheduler)."""

    scenarios: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    tails: Dict[Tuple[str, float, str], float]

    def tail(self, scenario: str, pct: float, scheduler: str) -> float:
        """One bar of Figure 6."""
        return self.tails[(scenario, pct, scheduler)]

    def best_scheduler(self, scenario: str, pct: float) -> str:
        """Lowest-tail algorithm for one (scenario, percentile)."""
        return min(
            self.schedulers, key=lambda s: self.tails[(scenario, pct, s)]
        )


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    scenarios: Sequence[Scenario] = SCENARIOS,
    schedulers: Sequence[str] = SHARING_SCHEDULERS,
) -> Fig6Result:
    """Compute the Figure 6 tail matrix (reusing Figure 5's runs)."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    per_scenario = {
        scenario.name: [
            scenario_sequence(scenario, seed, settings.num_events)
            for seed in settings.seeds()
        ]
        for scenario in scenarios
    }
    cache.prewarm(
        ("baseline", *schedulers),
        [seq for seqs in per_scenario.values() for seq in seqs],
        jobs=jobs,
    )
    tails: Dict[Tuple[str, float, str], float] = {}
    for scenario in scenarios:
        sequences = per_scenario[scenario.name]
        baseline = cache.combined("baseline", sequences)
        for scheduler in schedulers:
            results = cache.combined(scheduler, sequences)
            for pct in TAIL_PERCENTILES:
                tails[(scenario.name, pct, scheduler)] = (
                    tail_normalized_response(baseline, results, pct)
                )
    return Fig6Result(
        scenarios=tuple(s.name for s in scenarios),
        schedulers=tuple(schedulers),
        tails=tails,
    )


def format_result(result: Fig6Result) -> str:
    """Figure 6 as a text table (rows = scenario-percentile pairs)."""
    headers = ["case"] + list(result.schedulers)
    rows: List[List[object]] = []
    for scenario in result.scenarios:
        for pct in TAIL_PERCENTILES:
            row: List[object] = [f"{scenario}-{int(pct)}"]
            row.extend(
                result.tail(scenario, pct, scheduler)
                for scheduler in result.schedulers
            )
            rows.append(row)
    title = (
        "Figure 6: tail response time normalized to baseline "
        "(lower is better)"
    )
    return f"{title}\n{format_table(headers, rows)}"
