"""Extension study: board utilization per scheduler (§1's efficiency case).

The paper's introduction argues coarse-grained allocation "potentially
leads to resource under-utilization". This study measures it: the same
stress workload runs under every algorithm, and each run's slot-time is
split into compute, reconfiguration, resident-idle and empty shares.

Expected shape: the no-sharing baseline leaves the vast majority of
slot-time empty; the sharing schedulers raise the compute share by an
order of magnitude, with the pipelined Nimblock keeping the most slots
doing useful work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentSettings, format_table
from repro.hypervisor.hypervisor import Hypervisor
from repro.metrics.utilization import UtilizationReport, board_utilization
from repro.schedulers.registry import ALL_SCHEDULERS, make_scheduler
from repro.workload.scenarios import STRESS, scenario_sequence


@dataclass(frozen=True)
class UtilizationResult:
    """Averaged slot-time shares per scheduler."""

    schedulers: Tuple[str, ...]
    reports: Dict[str, UtilizationReport]

    def compute_share(self, scheduler: str) -> float:
        """Fraction of slot-time spent computing."""
        return self.reports[scheduler].compute_fraction


def _average(reports: List[UtilizationReport]) -> UtilizationReport:
    n = len(reports)
    return UtilizationReport(
        window_ms=sum(r.window_ms for r in reports) / n,
        num_slots=reports[0].num_slots,
        compute_fraction=sum(r.compute_fraction for r in reports) / n,
        reconfig_fraction=sum(r.reconfig_fraction for r in reports) / n,
        idle_resident_fraction=sum(
            r.idle_resident_fraction for r in reports
        ) / n,
    )


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,  # traces are needed, so runs are not shareable
    *,
    jobs=None,
    mode: str = "full",
    schedulers: Sequence[str] = ALL_SCHEDULERS,
) -> UtilizationResult:
    """Measure slot-time shares for every scheduler on the same stimuli."""
    settings = settings or ExperimentSettings.from_env()
    sequences = [
        scenario_sequence(STRESS, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    reports: Dict[str, UtilizationReport] = {}
    for name in schedulers:
        per_run: List[UtilizationReport] = []
        for sequence in sequences:
            hypervisor = Hypervisor(make_scheduler(name))
            for request in sequence.to_requests():
                hypervisor.submit(request)
            hypervisor.run()
            per_run.append(
                board_utilization(
                    hypervisor.trace, hypervisor.config.num_slots
                )
            )
        reports[name] = _average(per_run)
    return UtilizationResult(schedulers=tuple(schedulers), reports=reports)


def format_result(result: UtilizationResult) -> str:
    """Utilization table: slot-time shares per scheduler."""
    headers = ["scheduler", "compute", "reconfig", "idle-resident",
               "empty", "window (s)"]
    rows: List[List[object]] = []
    for name in result.schedulers:
        report = result.reports[name]
        rows.append(
            [
                name,
                f"{report.compute_fraction:.1%}",
                f"{report.reconfig_fraction:.2%}",
                f"{report.idle_resident_fraction:.1%}",
                f"{report.empty_fraction:.1%}",
                report.window_ms / 1000.0,
            ]
        )
    title = (
        "Extension: board utilization under the stress workload "
        "(slot-time shares)"
    )
    return f"{title}\n{format_table(headers, rows)}"
