"""Paper-vs-measured comparison report (drives ``EXPERIMENTS.md``).

For every table and figure, the report states the paper's quantitative
claim, the value measured by this reproduction, and a verdict:

* ``HELD`` — the qualitative shape (ordering, crossover, trend) matches;
* ``PARTIAL`` — the direction matches but a stated magnitude does not;
* ``DIVERGED`` — the shape does not match.

Absolute factors are expected to differ (the substrate is a simulator
without the board's data-movement and control overheads); shapes are the
reproduction contract.

Every simulation-derived line of the report is deterministic — identical
across reruns, worker counts (``--jobs``) and cache states. The one
exception is the §1/§6 scheduler-overhead row, which is a *live*
wall-clock microbenchmark of the host (see
:mod:`repro.experiments.overhead`); its evidence numbers vary run to run
while its verdict stays stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments import (
    fig5_response,
    fig6_tail,
    fig7_deadlines,
    fig8_breakdown,
    fig9_ablation,
    fig10_alexnet,
    fig11_throughput,
    overhead,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import ExperimentSettings, RunCache


@dataclass(frozen=True)
class Finding:
    """One compared claim."""

    experiment: str
    claim: str
    measured: str
    verdict: str  # HELD / PARTIAL / DIVERGED

    def as_markdown_row(self) -> str:
        return (
            f"| {self.experiment} | {self.claim} | {self.measured} "
            f"| {self.verdict} |"
        )


def _verdict(held: bool, partial: bool = False) -> str:
    if held:
        return "HELD"
    return "PARTIAL" if partial else "DIVERGED"


def _check_table1() -> List[Finding]:
    result = table1.run()
    return [
        Finding(
            "Table 1",
            "10 uniform slots + static region fit the ZCU106; slot uses "
            "46-92 DSP, 9680-12960 LUT",
            f"floorplan valid: {result.floorplan_valid}; "
            f"slot DSP range {result.slot_range['DSP']}",
            _verdict(
                result.floorplan_valid
                and result.slot_range["DSP"] == (46, 92)
            ),
        )
    ]


def _check_table2() -> List[Finding]:
    result = table2.run()
    return [
        Finding(
            "Table 2",
            "benchmark task/edge counts (AlexNet 38/184, OF 9/8, ...)",
            "all six benchmarks match exactly"
            if result.all_match else "counts differ",
            _verdict(result.all_match),
        )
    ]


def _check_table3(cache: RunCache, settings: ExperimentSettings) -> List[Finding]:
    result = table3.run(cache=cache, settings=settings)
    findings = []
    short_ok = all(
        result.response("nimblock", name) < result.response("baseline", name)
        for name in ("lenet", "imgc", "3dr")
    )
    findings.append(
        Finding(
            "Table 3",
            "sub-second benchmarks collapse from hundreds of seconds "
            "(baseline head-of-line blocking) to seconds under sharing",
            "; ".join(
                f"{name}: {result.response('baseline', name):.0f}s -> "
                f"{result.response('nimblock', name):.1f}s"
                for name in ("lenet", "imgc", "3dr")
            ),
            _verdict(short_ok),
        )
    )
    of_best = result.response("nimblock", "of") <= min(
        result.response(s, "of") for s in ("prema", "rr", "fcfs")
    )
    findings.append(
        Finding(
            "Table 3",
            "Nimblock leads on the longer-running optical flow "
            "(14.35s vs 29-31s for others in the paper)",
            f"of: nimblock {result.response('nimblock', 'of'):.1f}s, "
            f"prema {result.response('prema', 'of'):.1f}s, "
            f"rr {result.response('rr', 'of'):.1f}s, "
            f"fcfs {result.response('fcfs', 'of'):.1f}s",
            _verdict(of_best, partial=True),
        )
    )
    return findings


def _check_fig5(cache: RunCache, settings: ExperimentSettings) -> List[Finding]:
    result = fig5_response.run(cache=cache, settings=settings)
    findings = []
    wins = all(
        result.best_scheduler(s) == "nimblock" for s in result.scenarios
    )
    findings.append(
        Finding(
            "Fig 5",
            "Nimblock has the best average response-time reduction in all "
            "three scenarios (4.7x/5.7x/3.1x over baseline in the paper)",
            "; ".join(
                f"{s}: nimblock {result.reduction(s, 'nimblock'):.1f}x"
                for s in result.scenarios
            ),
            _verdict(wins),
        )
    )
    stress_order = (
        result.reduction("stress", "nimblock")
        > result.reduction("stress", "prema")
        > result.reduction("stress", "rr")
    )
    findings.append(
        Finding(
            "Fig 5",
            "stress ordering Nimblock > PREMA > RR (5.7 > 4.8 > 3.7 in "
            "the paper)",
            f"stress: nb {result.reduction('stress', 'nimblock'):.1f}x, "
            f"prema {result.reduction('stress', 'prema'):.1f}x, "
            f"rr {result.reduction('stress', 'rr'):.1f}x",
            _verdict(stress_order),
        )
    )
    return findings


def _check_fig6(cache: RunCache, settings: ExperimentSettings) -> List[Finding]:
    result = fig6_tail.run(cache=cache, settings=settings)
    best95 = all(
        result.best_scheduler(s, 95.0) == "nimblock"
        for s in result.scenarios
    )
    rt99 = result.tail("realtime", 99.0, "nimblock") < result.tail(
        "realtime", 99.0, "rr"
    )
    return [
        Finding(
            "Fig 6",
            "Nimblock best 95th-percentile tail in every scenario",
            "; ".join(
                f"{s}: best={result.best_scheduler(s, 95.0)}"
                for s in result.scenarios
            ),
            _verdict(best95),
        ),
        Finding(
            "Fig 6",
            "real-time 99th percentile: Nimblock far below RR "
            "(4.8x better in the paper)",
            f"rt-99: nimblock "
            f"{result.tail('realtime', 99.0, 'nimblock'):.2f} vs rr "
            f"{result.tail('realtime', 99.0, 'rr'):.2f} (normalized)",
            _verdict(rt99),
        ),
    ]


def _check_fig7(cache: RunCache, settings: ExperimentSettings) -> List[Finding]:
    result = fig7_deadlines.run(cache=cache, settings=settings)
    findings = []
    for scenario in result.scenarios:
        rates = result.tightest_rates(scenario)
        others = [r for s, r in rates.items() if s != "nimblock"]
        best = rates["nimblock"] <= min(others) + 1e-9
        margin = (
            (min(others) - rates["nimblock"]) / min(others)
            if min(others) > 0 else 0.0
        )
        findings.append(
            Finding(
                "Fig 7",
                f"{scenario}: Nimblock lowest violation rate at the "
                "tightest deadline (49%/44%/14% fewer in the paper)",
                f"D_s=1: nimblock {rates['nimblock']:.0%}, best other "
                f"{min(others):.0%} ({margin:.0%} fewer)",
                _verdict(best),
            )
        )
    return findings


def _check_fig8(cache: RunCache, settings: ExperimentSettings) -> List[Finding]:
    result = fig8_breakdown.run(cache=cache, settings=settings)
    dr_ok = True
    measured = []
    if "dr" in result.breakdowns:
        dr = result.breakdowns["dr"]
        dr_ok = dr.run_fraction > 10 * dr.reconfig_fraction
        measured.append(
            f"dr: run {dr.run_fraction:.0%}, PR {dr.reconfig_fraction:.2%}"
        )
    if "imgc" in result.breakdowns:
        imgc = result.breakdowns["imgc"]
        measured.append(
            f"imgc: run {imgc.run_fraction:.0%}, "
            f"PR {imgc.reconfig_fraction:.0%}, wait {imgc.wait_fraction:.0%}"
        )
    return [
        Finding(
            "Fig 8",
            "long benchmarks are run-dominated; short benchmarks show "
            "visible reconfiguration and wait shares",
            "; ".join(measured) or "insufficient samples",
            _verdict(dr_ok),
        )
    ]


def _check_fig9(cache: RunCache, settings: ExperimentSettings) -> List[Finding]:
    result = fig9_ablation.run(cache=cache, settings=settings)
    big = max(result.batch_sizes)
    neutral1 = all(
        abs(result.relative_response(1, v) - 1.0) < 0.25
        for v in result.variants
    )
    ordering = (
        result.relative_response(big, "nimblock_no_preempt") >= 0.95
        and result.relative_response(big, "nimblock_no_pipe") >= 1.05
    )
    overlap = abs(
        result.relative_response(big, "nimblock_no_pipe")
        - result.relative_response(big, "nimblock_no_preempt_no_pipe")
    ) < 0.15 * result.relative_response(big, "nimblock_no_pipe")
    return [
        Finding(
            "Fig 9",
            "batch 1 shows no ablation effect; removing pipelining costs "
            "~1.2x; NoPipe and NoPreemptNoPipe overlap",
            f"batch {big}: no_preempt "
            f"{result.relative_response(big, 'nimblock_no_preempt'):.2f}x, "
            f"no_pipe "
            f"{result.relative_response(big, 'nimblock_no_pipe'):.2f}x, "
            f"neither "
            f"{result.relative_response(big, 'nimblock_no_preempt_no_pipe'):.2f}x",
            _verdict(neutral1 and ordering and overlap,
                     partial=ordering),
        )
    ]


def _check_fig10_11(cache: RunCache, settings: ExperimentSettings) -> List[Finding]:
    r10 = fig10_alexnet.run(cache=cache, settings=settings)
    r11 = fig11_throughput.run(cache=cache, settings=settings)
    big = max(r10.batch_sizes)
    pipe_best = r10.response(big, "nimblock") <= r10.response(
        big, "nimblock_no_pipe"
    )
    sublinear = r10.response(big, "nimblock") < big * r10.response(
        1, "nimblock"
    )
    throughput_grows = r11.items_per_s(big, "nimblock") > r11.items_per_s(
        1, "nimblock"
    )
    flattens = (
        r11.items_per_s(big, "nimblock")
        < 2.0 * r11.items_per_s(5, "nimblock")
        if 5 in r11.batch_sizes else True
    )
    return [
        Finding(
            "Fig 10",
            "AlexNet response grows sublinearly with batch size; "
            "pipelining variants fastest",
            f"batch 1 -> {big}: "
            f"{r10.response(1, 'nimblock'):.1f}s -> "
            f"{r10.response(big, 'nimblock'):.1f}s",
            _verdict(pipe_best and sublinear),
        ),
        Finding(
            "Fig 11",
            "AlexNet throughput higher with pipelining and flattens "
            "beyond batch ~5",
            f"items/s at batch 1/{big}: "
            f"{r11.items_per_s(1, 'nimblock'):.3f} / "
            f"{r11.items_per_s(big, 'nimblock'):.3f}",
            _verdict(throughput_grows and flattens),
        ),
    ]


def _check_overhead() -> List[Finding]:
    result = overhead.run(num_apps=10, iterations=50)
    return [
        Finding(
            "§1/§6",
            "heuristic scheduling is orders of magnitude cheaper than "
            "exact (ILP-style) solving",
            f"decision {result.nimblock_decision_s * 1e6:.0f} us vs exact "
            f"solve {result.exact_solve_s * 1e3:.0f} ms "
            f"({result.speedup:.0f}x)",
            _verdict(result.speedup > 50),
        )
    ]


def _prewarm_shared_runs(
    cache: RunCache, settings: ExperimentSettings, jobs=None
) -> None:
    """Fan the report's shared stimuli out in one batch.

    Figures 5-8 reuse the scenario sequences and Table 3 its fixed-batch
    workload; prewarming them together gives the parallel executor the
    widest fan-out, after which the per-figure prewarms are pure lookups.
    """
    from repro.experiments.table3 import TABLE3_BATCH, TABLE3_DELAY_MS
    from repro.schedulers.registry import ALL_SCHEDULERS
    from repro.workload.scenarios import (
        SCENARIOS,
        fixed_batch_sequence,
        scenario_sequence,
    )

    sequences = [
        scenario_sequence(scenario, seed, settings.num_events)
        for scenario in SCENARIOS
        for seed in settings.seeds()
    ]
    sequences.extend(
        fixed_batch_sequence(
            TABLE3_BATCH, seed,
            delay_ms=TABLE3_DELAY_MS, num_events=settings.num_events,
        )
        for seed in settings.seeds()
    )
    cache.prewarm(ALL_SCHEDULERS, sequences, jobs=jobs)


def generate_findings(
    cache: Optional[RunCache] = None,
    settings: Optional[ExperimentSettings] = None,
    jobs=None,
    mode: str = "full",
) -> List[Finding]:
    """Run every experiment and compare against the paper's claims."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    _prewarm_shared_runs(cache, settings, jobs=jobs)
    findings: List[Finding] = []
    findings.extend(_check_table1())
    findings.extend(_check_table2())
    findings.extend(_check_table3(cache, settings))
    findings.extend(_check_fig5(cache, settings))
    findings.extend(_check_fig6(cache, settings))
    findings.extend(_check_fig7(cache, settings))
    findings.extend(_check_fig8(cache, settings))
    findings.extend(_check_fig9(cache, settings))
    findings.extend(_check_fig10_11(cache, settings))
    findings.extend(_check_overhead())
    return findings


def format_findings(findings: List[Finding]) -> str:
    """Markdown table of all findings."""
    held = sum(1 for f in findings if f.verdict == "HELD")
    lines = [
        "| Experiment | Paper claim | Measured | Verdict |",
        "|---|---|---|---|",
    ]
    lines.extend(f.as_markdown_row() for f in findings)
    lines.append("")
    lines.append(
        f"{held}/{len(findings)} claims HELD "
        f"({sum(1 for f in findings if f.verdict == 'PARTIAL')} partial, "
        f"{sum(1 for f in findings if f.verdict == 'DIVERGED')} diverged)."
    )
    return "\n".join(lines)


# CLI adapter: `nimblock-repro report`.
def run(settings=None, cache=None, *, jobs=None, mode="full") -> List[Finding]:
    """Experiment-module interface used by the CLI."""
    return generate_findings(
        cache=cache, settings=settings, jobs=jobs, mode=mode
    )


def format_result(findings: List[Finding]) -> str:
    """Experiment-module interface used by the CLI."""
    return format_findings(findings)
