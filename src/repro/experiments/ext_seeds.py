"""Extension study: seed sensitivity of the headline result.

How stable is "Nimblock's mean response-time reduction over the baseline"
across disjoint random seed blocks? Each block is an independent
replication of the stress experiment; we report per-block reductions and
the across-block mean, standard deviation and coefficient of variation.

Expected shape: the reduction varies with workload composition (blocks
drawing more digit-recognition events have deeper baseline queues), but
Nimblock beats the baseline in every block and beats PREMA in every
block — the orderings, which are the reproduction contract, are
seed-stable even where magnitudes wobble.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.runner import (
    BASE_SEED,
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.metrics.response import mean_reduction_factor
from repro.workload.scenarios import STRESS, scenario_sequence

#: Independent replications (disjoint seed blocks).
DEFAULT_BLOCKS = 5

#: Schedulers whose reductions are replicated.
STUDIED: Tuple[str, ...] = ("prema", "nimblock")


@dataclass(frozen=True)
class SeedStudyResult:
    """Per-block reductions plus across-block statistics."""

    blocks: int
    sequences_per_block: int
    schedulers: Tuple[str, ...]
    reductions: Dict[Tuple[int, str], float]

    def block_values(self, scheduler: str) -> List[float]:
        """Reduction factor in each block."""
        return [
            self.reductions[(block, scheduler)]
            for block in range(self.blocks)
        ]

    def mean(self, scheduler: str) -> float:
        """Across-block mean reduction."""
        values = self.block_values(scheduler)
        return sum(values) / len(values)

    def stdev(self, scheduler: str) -> float:
        """Across-block sample standard deviation."""
        values = self.block_values(scheduler)
        mean = self.mean(scheduler)
        if len(values) < 2:
            return 0.0
        return math.sqrt(
            sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        )

    def cv(self, scheduler: str) -> float:
        """Coefficient of variation (stdev / mean)."""
        return self.stdev(scheduler) / self.mean(scheduler)

    def ordering_stable(self, better: str, worse: str) -> bool:
        """True if ``better`` beats ``worse`` in every block."""
        return all(
            self.reductions[(block, better)]
            > self.reductions[(block, worse)]
            for block in range(self.blocks)
        )


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    blocks: int = DEFAULT_BLOCKS,
    schedulers: Tuple[str, ...] = STUDIED,
) -> SeedStudyResult:
    """Replicate the stress experiment over disjoint seed blocks."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    per_block_count = max(1, settings.num_sequences // 2)
    per_block = {}
    for block in range(blocks):
        # Disjoint seeds: shift each block well past the default range.
        base = BASE_SEED + 1000 * (block + 1)
        per_block[block] = [
            scenario_sequence(STRESS, base + i, settings.num_events)
            for i in range(per_block_count)
        ]
    cache.prewarm(
        ("baseline", *schedulers),
        [seq for seqs in per_block.values() for seq in seqs],
        jobs=jobs,
    )
    reductions: Dict[Tuple[int, str], float] = {}
    for block in range(blocks):
        sequences = per_block[block]
        baseline = cache.combined("baseline", sequences)
        for scheduler in schedulers:
            results = cache.combined(scheduler, sequences)
            reductions[(block, scheduler)] = mean_reduction_factor(
                baseline, results
            )
    return SeedStudyResult(
        blocks=blocks,
        sequences_per_block=per_block_count,
        schedulers=tuple(schedulers),
        reductions=reductions,
    )


def format_result(result: SeedStudyResult) -> str:
    """Replication table plus stability statistics."""
    headers = ["block"] + [f"{s} (x)" for s in result.schedulers]
    rows: List[List[object]] = []
    for block in range(result.blocks):
        row: List[object] = [block]
        row.extend(
            result.reductions[(block, s)] for s in result.schedulers
        )
        rows.append(row)
    summary_rows: List[List[object]] = [
        ["mean"] + [result.mean(s) for s in result.schedulers],
        ["stdev"] + [result.stdev(s) for s in result.schedulers],
        ["cv"] + [f"{result.cv(s):.1%}" for s in result.schedulers],
    ]
    title = (
        f"Extension: seed sensitivity over {result.blocks} disjoint "
        f"blocks x {result.sequences_per_block} sequences (stress)"
    )
    stable = result.ordering_stable("nimblock", "prema")
    return (
        f"{title}\n{format_table(headers, rows + summary_rows)}\n"
        f"nimblock > prema in every block: {stable}"
    )
