"""Result export: per-application records as CSV or JSON.

The paper's artifact parses serial-console reports into result files;
this is the equivalent structured output for downstream analysis. Every
:class:`AppResult` field is exported verbatim plus the derived metrics
(response, wait, execution, throughput).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ExperimentError
from repro.hypervisor.results import AppResult

#: Column order of the CSV export.
CSV_FIELDS = (
    "app_id", "name", "batch_size", "priority",
    "arrival_ms", "first_start_ms", "retire_ms",
    "response_ms", "wait_ms", "execution_ms",
    "run_busy_ms", "reconfig_busy_ms", "reconfig_count",
    "preemption_count", "single_slot_latency_ms",
    "throughput_items_per_s",
)


def result_to_record(result: AppResult) -> dict:
    """Flat dict of one result (raw fields plus derived metrics)."""
    return {
        "app_id": result.app_id,
        "name": result.name,
        "batch_size": result.batch_size,
        "priority": result.priority,
        "arrival_ms": result.arrival_ms,
        "first_start_ms": result.first_start_ms,
        "retire_ms": result.retire_ms,
        "response_ms": result.response_ms,
        "wait_ms": result.wait_ms,
        "execution_ms": result.execution_ms,
        "run_busy_ms": result.run_busy_ms,
        "reconfig_busy_ms": result.reconfig_busy_ms,
        "reconfig_count": result.reconfig_count,
        "preemption_count": result.preemption_count,
        "single_slot_latency_ms": result.single_slot_latency_ms,
        "throughput_items_per_s": result.throughput_items_per_s,
    }


def export_csv(
    results: Sequence[AppResult], path: Union[str, Path]
) -> Path:
    """Write results as CSV (one row per application)."""
    if not results:
        raise ExperimentError("nothing to export")
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for result in results:
            writer.writerow(result_to_record(result))
    return path


def export_json(
    results: Sequence[AppResult], path: Union[str, Path],
    label: str = "",
) -> Path:
    """Write results as a JSON document with a small header."""
    if not results:
        raise ExperimentError("nothing to export")
    path = Path(path)
    payload = {
        "label": label,
        "count": len(results),
        "results": [result_to_record(r) for r in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_records(path: Union[str, Path]) -> List[dict]:
    """Read records back from a CSV or JSON export (by extension)."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no export at {path}")
    if path.suffix == ".json":
        payload = json.loads(path.read_text(encoding="utf-8"))
        return list(payload.get("results", []))
    if path.suffix == ".csv":
        with path.open(newline="", encoding="utf-8") as handle:
            return [dict(row) for row in csv.DictReader(handle)]
    raise ExperimentError(
        f"unknown export format {path.suffix!r} (expected .csv or .json)"
    )
