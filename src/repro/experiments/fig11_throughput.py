"""Figure 11: AlexNet throughput vs batch size across ablations (§5.6).

Throughput = completed batch items per second of response time, averaged
over AlexNet events in the ablation runs. Paper shapes: the
pipelining-enabled variants (Nimblock, NimblockNoPreempt) sustain higher
throughput; gains flatten beyond batch size ~5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.variants import ABLATION_NAMES
from repro.errors import ExperimentError
from repro.experiments.fig9_ablation import _ablation_sequences
from repro.experiments.fig10_alexnet import TARGET_BENCHMARK
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.workload.scenarios import ABLATION_BATCH_SIZES


@dataclass(frozen=True)
class Fig11Result:
    """Mean AlexNet throughput (items/s) per (batch size, variant)."""

    batch_sizes: Tuple[int, ...]
    variants: Tuple[str, ...]
    throughput: Dict[Tuple[int, str], float]

    def items_per_s(self, batch_size: int, variant: str) -> float:
        """One point of Figure 11."""
        return self.throughput[(batch_size, variant)]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    batch_sizes: Sequence[int] = ABLATION_BATCH_SIZES,
    variants: Sequence[str] = ABLATION_NAMES,
) -> Fig11Result:
    """Compute AlexNet throughput from the ablation runs."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    per_batch = {
        batch_size: _ablation_sequences(settings, batch_size)
        for batch_size in batch_sizes
    }
    cache.prewarm(
        variants,
        [seq for seqs in per_batch.values() for seq in seqs],
        jobs=jobs,
    )
    throughput: Dict[Tuple[int, str], float] = {}
    for batch_size in batch_sizes:
        sequences = per_batch[batch_size]
        for variant in variants:
            results = [
                r for r in cache.combined(variant, sequences)
                if r.name == TARGET_BENCHMARK
            ]
            if not results:
                raise ExperimentError(
                    f"no {TARGET_BENCHMARK} events in the stimuli; increase "
                    "REPRO_SEQUENCES or REPRO_EVENTS"
                )
            throughput[(batch_size, variant)] = sum(
                r.throughput_items_per_s for r in results
            ) / len(results)
    return Fig11Result(
        batch_sizes=tuple(batch_sizes),
        variants=tuple(variants),
        throughput=throughput,
    )


def format_result(result: Fig11Result) -> str:
    """Figure 11 as a text table."""
    headers = ["batch"] + [f"{v} (items/s)" for v in result.variants]
    rows: List[List[object]] = []
    for batch_size in result.batch_sizes:
        row: List[object] = [batch_size]
        row.extend(
            round(result.items_per_s(batch_size, variant), 4)
            for variant in result.variants
        )
        rows.append(row)
    title = "Figure 11: AlexNet throughput under ablation variants"
    return f"{title}\n{format_table(headers, rows)}"
