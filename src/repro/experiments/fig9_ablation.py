"""Figure 9: ablation study of preemption and pipelining (paper §5.6).

Under stress-test arrival conditions with fixed batch sizes, the full
Nimblock algorithm is compared against itself with pipelining and/or
preemption removed. Responses are normalized to the full algorithm
(higher than 1.0 = worse than Nimblock).

Paper shapes: removing preemption costs 1.07-1.14x; removing pipelining
costs ~1.2x; removing both is only marginally worse than removing
pipelining alone (without pipelining nobody over-consumes, so preemption
rarely fires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.variants import ABLATION_NAMES
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.metrics.response import normalized_responses
from repro.workload.generator import EventGenerator
from repro.workload.scenarios import ABLATION_BATCH_SIZES, STRESS

#: Benchmark pool for the fixed-batch ablation runs. Digit recognition is
#: excluded: one DR event at batch 20 is ~66 minutes of slot-time, which
#: cannot fit the paper's ~30-minute test sequences (artifact appendix),
#: so the ablation mix on the testbed cannot have contained it; keeping it
#: would drown the preemption/pipelining effects in DR queueing noise.
ABLATION_BENCHMARKS = ("lenet", "alexnet", "imgc", "of", "3dr")


@dataclass(frozen=True)
class Fig9Result:
    """Mean response relative to full Nimblock per (batch, variant)."""

    batch_sizes: Tuple[int, ...]
    variants: Tuple[str, ...]
    relative: Dict[Tuple[int, str], float]

    def relative_response(self, batch_size: int, variant: str) -> float:
        """One bar of Figure 9 (1.0 = identical to full Nimblock)."""
        return self.relative[(batch_size, variant)]


def _ablation_sequences(
    settings: ExperimentSettings, batch_size: int
):
    low, high = STRESS.delay_range_ms
    delay = (low + high) / 2.0
    return [
        EventGenerator(seed, benchmarks=ABLATION_BENCHMARKS).sequence(
            num_events=settings.num_events,
            delay_range_ms=(delay, delay),
            fixed_batch=batch_size,
            label=(
                f"ablation-b{batch_size}-n{settings.num_events}-seed{seed}"
            ),
        )
        for seed in settings.seeds()
    ]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    batch_sizes: Sequence[int] = ABLATION_BATCH_SIZES,
    variants: Sequence[str] = ABLATION_NAMES,
) -> Fig9Result:
    """Run the ablation grid: fixed batches x Nimblock variants."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    per_batch = {
        batch_size: _ablation_sequences(settings, batch_size)
        for batch_size in batch_sizes
    }
    cache.prewarm(
        ("nimblock", *variants),
        [seq for seqs in per_batch.values() for seq in seqs],
        jobs=jobs,
    )
    relative: Dict[Tuple[int, str], float] = {}
    for batch_size in batch_sizes:
        sequences = per_batch[batch_size]
        full = cache.combined("nimblock", sequences)
        for variant in variants:
            results = cache.combined(variant, sequences)
            ratios = normalized_responses(full, results)
            relative[(batch_size, variant)] = sum(ratios) / len(ratios)
    return Fig9Result(
        batch_sizes=tuple(batch_sizes),
        variants=tuple(variants),
        relative=relative,
    )


def format_result(result: Fig9Result) -> str:
    """Figure 9 as a text table (rows = batch sizes)."""
    headers = ["batch"] + list(result.variants)
    rows: List[List[object]] = []
    for batch_size in result.batch_sizes:
        row: List[object] = [batch_size]
        row.extend(
            result.relative_response(batch_size, variant)
            for variant in result.variants
        )
        rows.append(row)
    title = (
        "Figure 9: response time relative to full Nimblock "
        "(stress arrivals, fixed batch; higher = worse)"
    )
    return f"{title}\n{format_table(headers, rows)}"
