"""Figure 8: run / partial-reconfiguration / wait time proportions.

Under the Nimblock scheduler in the standard scenario, each application's
total time is decomposed into summed task run time, total partial
reconfiguration time, and queueing wait — each expressed as a proportion
of the application's total (arrival to retirement) time and averaged per
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.metrics.breakdown import TimeBreakdown, breakdown_by_benchmark
from repro.workload.scenarios import STANDARD, scenario_sequence


@dataclass(frozen=True)
class Fig8Result:
    """Per-benchmark time breakdown under Nimblock."""

    scheduler: str
    breakdowns: Dict[str, TimeBreakdown]

    def fractions(self, benchmark: str) -> Tuple[float, float, float]:
        """(run, reconfig, wait) fractions for one benchmark."""
        b = self.breakdowns[benchmark]
        return (b.run_fraction, b.reconfig_fraction, b.wait_fraction)


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    scheduler: str = "nimblock",
) -> Fig8Result:
    """Break down application time under one scheduler (standard test)."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    sequences = [
        scenario_sequence(STANDARD, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    cache.prewarm((scheduler,), sequences, jobs=jobs)
    results = cache.combined(scheduler, sequences)
    return Fig8Result(
        scheduler=scheduler, breakdowns=breakdown_by_benchmark(results)
    )


def format_result(result: Fig8Result) -> str:
    """Figure 8 as a text table."""
    headers = ["benchmark", "samples", "run", "PR", "wait"]
    rows: List[List[object]] = []
    for name, b in result.breakdowns.items():
        rows.append(
            [name, b.samples, b.run_fraction, b.reconfig_fraction,
             b.wait_fraction]
        )
    title = (
        f"Figure 8: time proportions under {result.scheduler} "
        "(run/PR/wait as fraction of total application time)"
    )
    return f"{title}\n{format_table(headers, rows)}"
