"""Extension study: PS-routed vs NoC inter-slot transfers (paper §7).

The paper's future work proposes a Network-on-Chip because the prototype
routes all inter-slot data through the ARM core. This experiment re-runs a
stress workload under Nimblock with transfer costs modeled explicitly and
compares three interconnects: free transfers (the reproduction default,
transfer folded into task latencies), PS-routed, and a NoC.

Expected shape: PS routing inflates response times relative to the free
model — the penalty the prototype silently pays inside its measured task
latencies — while the NoC recovers almost all of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.runner import (
    ExperimentSettings,
    format_table,
)
from repro.hypervisor.hypervisor import Hypervisor
from repro.overlay.interconnect import make_interconnect
from repro.schedulers.registry import make_scheduler
from repro.workload.generator import EventGenerator
from repro.workload.scenarios import STRESS

#: Interconnect models compared, in report order.
INTERCONNECTS: Tuple[str, ...] = ("zero_cost", "ps_routed", "noc")

#: Transfer-sensitive benchmarks: per-task latencies within an order of
#: magnitude of a megabyte-scale PS transfer. Digit recognition's 65 s
#: items would drown the effect entirely.
STUDY_BENCHMARKS: Tuple[str, ...] = ("imgc", "lenet", "3dr")


@dataclass(frozen=True)
class InterconnectResult:
    """Mean response per interconnect model under one workload."""

    scheduler: str
    mean_response_ms: Dict[str, float]

    def overhead_vs_free(self, model: str) -> float:
        """Mean response relative to free transfers (1.0 = no penalty)."""
        return self.mean_response_ms[model] / self.mean_response_ms["zero_cost"]


#: Inter-task activation payload for the study. Much larger than the
#: bookkeeping default: vision-pipeline activations are megabytes, which
#: is what makes PS-routed transfers visible against task latencies.
STUDY_PAYLOAD_BYTES = 8 * 1024 * 1024


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,  # accepted for harness uniformity; runs are not cacheable
    *,
    jobs=None,
    mode: str = "full",
    scheduler: str = "nimblock",
) -> InterconnectResult:
    """Run the same stimuli under each interconnect model."""
    settings = settings or ExperimentSettings.from_env()
    sequences = [
        EventGenerator(seed, benchmarks=STUDY_BENCHMARKS).sequence(
            num_events=settings.num_events,
            delay_range_ms=STRESS.delay_range_ms,
            label=f"interconnect-n{settings.num_events}-seed{seed}",
        )
        for seed in settings.seeds()
    ]
    means: Dict[str, float] = {}
    for model_name in INTERCONNECTS:
        responses: List[float] = []
        for sequence in sequences:
            hypervisor = Hypervisor(
                make_scheduler(scheduler),
                interconnect=make_interconnect(model_name),
                item_buffer_bytes=STUDY_PAYLOAD_BYTES,
                buffer_capacity_bytes=256 * 1024**3,
            )
            for request in sequence.to_requests():
                hypervisor.submit(request)
            hypervisor.run()
            responses.extend(
                result.response_ms for result in hypervisor.results()
            )
        means[model_name] = sum(responses) / len(responses)
    return InterconnectResult(scheduler=scheduler, mean_response_ms=means)


def format_result(result: InterconnectResult) -> str:
    """Extension table: interconnect vs mean response."""
    headers = ["interconnect", "mean response (s)", "vs free"]
    rows: List[List[object]] = []
    for model in INTERCONNECTS:
        rows.append(
            [
                model,
                result.mean_response_ms[model] / 1000.0,
                f"{result.overhead_vs_free(model):.3f}x",
            ]
        )
    title = (
        f"Extension: inter-slot interconnect models under "
        f"{result.scheduler} (stress workload)"
    )
    return f"{title}\n{format_table(headers, rows)}"
