"""Table 2: benchmark sizes (tasks and edges per application).

Regenerated from the application catalog; the counts must match the paper
exactly since the graphs are structural reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.catalog import BENCHMARK_NAMES, get_benchmark
from repro.experiments.runner import format_table

#: The paper's Table 2, for verification: name -> (tasks, edges).
PAPER_TABLE2: Dict[str, Tuple[int, int]] = {
    "lenet": (3, 2),
    "alexnet": (38, 184),
    "imgc": (6, 5),
    "of": (9, 8),
    "3dr": (3, 2),
    "dr": (3, 2),
}


@dataclass(frozen=True)
class Table2Result:
    """Measured benchmark shapes alongside the paper's numbers."""

    rows: Tuple[Tuple[str, int, int, int, int], ...]

    @property
    def all_match(self) -> bool:
        """True if every benchmark matches the paper exactly."""
        return all(
            tasks == paper_tasks and edges == paper_edges
            for _, tasks, edges, paper_tasks, paper_edges in self.rows
        )


def run(settings=None, cache=None, *, jobs=None, mode="full") -> Table2Result:
    """Measure every catalog benchmark's task/edge counts.

    Uniform experiment signature; a static study, so ``settings``,
    ``cache`` and ``jobs`` are ignored.
    """
    rows = []
    for name in BENCHMARK_NAMES:
        app = get_benchmark(name)
        paper_tasks, paper_edges = PAPER_TABLE2[name]
        rows.append(
            (name, app.num_tasks, app.num_edges, paper_tasks, paper_edges)
        )
    return Table2Result(rows=tuple(rows))


def format_result(result: Table2Result) -> str:
    """Table 2 as text."""
    headers = ["benchmark", "tasks", "edges", "paper tasks", "paper edges"]
    rows: List[List[object]] = [list(row) for row in result.rows]
    title = "Table 2: benchmark sizes"
    return (
        f"{title}\n{format_table(headers, rows)}\n"
        f"all match paper: {result.all_match}"
    )
