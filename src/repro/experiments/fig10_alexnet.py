"""Figure 10: AlexNet response time vs batch size across ablations (§5.6).

Reuses the Figure 9 ablation runs, filtered to AlexNet events. Paper
shapes: at batch size 1 the variants coincide; at larger batches removing
pipelining hurts most, with NimblockNoPipe and NimblockNoPreemptNoPipe
overlapping; response time grows sublinearly with batch size thanks to
multi-slot parallelization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.variants import ABLATION_NAMES
from repro.errors import ExperimentError
from repro.experiments.fig9_ablation import _ablation_sequences
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.workload.scenarios import ABLATION_BATCH_SIZES

#: The benchmark Figure 10/11 zoom in on.
TARGET_BENCHMARK = "alexnet"


@dataclass(frozen=True)
class Fig10Result:
    """Mean AlexNet response (s) per (batch size, variant)."""

    batch_sizes: Tuple[int, ...]
    variants: Tuple[str, ...]
    response_s: Dict[Tuple[int, str], float]
    samples: Dict[int, int]

    def response(self, batch_size: int, variant: str) -> float:
        """One point of Figure 10, in seconds."""
        return self.response_s[(batch_size, variant)]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    batch_sizes: Sequence[int] = ABLATION_BATCH_SIZES,
    variants: Sequence[str] = ABLATION_NAMES,
) -> Fig10Result:
    """Collect AlexNet responses from the ablation runs."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    per_batch = {
        batch_size: _ablation_sequences(settings, batch_size)
        for batch_size in batch_sizes
    }
    cache.prewarm(
        variants,
        [seq for seqs in per_batch.values() for seq in seqs],
        jobs=jobs,
    )
    response: Dict[Tuple[int, str], float] = {}
    samples: Dict[int, int] = {}
    for batch_size in batch_sizes:
        sequences = per_batch[batch_size]
        for variant in variants:
            results = [
                r for r in cache.combined(variant, sequences)
                if r.name == TARGET_BENCHMARK
            ]
            if not results:
                raise ExperimentError(
                    f"no {TARGET_BENCHMARK} events in the stimuli; increase "
                    "REPRO_SEQUENCES or REPRO_EVENTS"
                )
            samples[batch_size] = len(results)
            response[(batch_size, variant)] = sum(
                r.response_ms for r in results
            ) / len(results) / 1000.0
    return Fig10Result(
        batch_sizes=tuple(batch_sizes),
        variants=tuple(variants),
        response_s=response,
        samples=samples,
    )


def format_result(result: Fig10Result) -> str:
    """Figure 10 as a text table."""
    headers = ["batch", "samples"] + [f"{v} (s)" for v in result.variants]
    rows: List[List[object]] = []
    for batch_size in result.batch_sizes:
        row: List[object] = [batch_size, result.samples[batch_size]]
        row.extend(
            result.response(batch_size, variant)
            for variant in result.variants
        )
        rows.append(row)
    title = "Figure 10: AlexNet response time under ablation variants"
    return f"{title}\n{format_table(headers, rows)}"
