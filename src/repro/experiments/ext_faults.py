"""Extension study: scheduler resilience under fault injection.

Sweeps a chaos scenario's ``fault_rate`` over every scheduler and reports
per-scheduler **degradation curves** (mean response ratio vs the
fault-free run of the same stimuli) plus the reliability metrics of
:mod:`repro.metrics.reliability` (goodput, MTTR, work lost).

Expected shapes: schedulers that can relocate work (Nimblock, whose
batch-boundary rollback doubles as the recovery checkpoint) degrade more
gracefully than static designs; round-robin suffers from queue stranding
until dead-slot migration kicks in; the no-sharing baseline pays the full
serialization penalty for every retried reconfiguration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultConfig, FaultStats
from repro.faults.recovery import RecoveryPolicy
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.results import AppResult
from repro.metrics.reliability import (
    degradation_factor,
    goodput_items_per_s,
    recovery_times_ms,
    work_lost_ms,
)
from repro.schedulers.registry import ALL_SCHEDULERS, make_scheduler
from repro.sim.trace import Trace
from repro.workload.events import EventSequence
from repro.workload.scenarios import (
    ChaosScenario,
    MIXED_FAULTS,
    SCENARIOS,
    Scenario,
    STRESS,
    chaos_scenario,
    scenario_sequence,
)

#: Fault-rate sweep of the degradation curves (0 = fault-free reference).
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1)


def run_chaos_sequence(
    scheduler_name: str,
    sequence: EventSequence,
    fault_config: Optional[FaultConfig] = None,
    config: Optional[SystemConfig] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> Tuple[List[AppResult], Trace, FaultStats]:
    """Run one event sequence under one scheduler with fault injection.

    A disabled (or absent) ``fault_config`` attaches no injector at all,
    so the run is byte-identical to the fault-free path.
    """
    injector = None
    if fault_config is not None and fault_config.enabled:
        injector = FaultInjector(fault_config)
    hypervisor = Hypervisor(
        make_scheduler(scheduler_name), config=config,
        faults=injector, recovery=recovery,
    )
    for request in sequence.to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    if not hypervisor.all_retired:
        raise ExperimentError(
            f"scheduler {scheduler_name!r} failed to retire all applications "
            f"on sequence {sequence.label!r} under faults "
            f"({len(hypervisor.retired)}/{len(hypervisor.apps)}, "
            f"{hypervisor.fault_stats.total_faults} faults injected)"
        )
    return hypervisor.results(), hypervisor.trace, hypervisor.fault_stats


@dataclass(frozen=True)
class FaultStudyResult:
    """Degradation curves and reliability metrics for one chaos scenario."""

    scenario: str
    workload: str
    fault_rates: Tuple[float, ...]
    schedulers: Tuple[str, ...]
    degradation: Dict[Tuple[str, float], float]
    goodput: Dict[Tuple[str, float], float]
    mttr: Dict[Tuple[str, float], float]
    work_lost: Dict[Tuple[str, float], float]
    fault_counts: Dict[Tuple[str, float], int]

    def curve(self, scheduler: str) -> List[float]:
        """The scheduler's degradation curve over the swept fault rates."""
        return [self.degradation[(scheduler, r)] for r in self.fault_rates]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    scenario: ChaosScenario = MIXED_FAULTS,
    workload: Scenario = STRESS,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
) -> FaultStudyResult:
    """Sweep fault rates over all schedulers under one chaos scenario.

    The (scheduler, rate, sequence) grid fans out over ``jobs`` worker
    processes (see :mod:`repro.experiments.parallel`); each worker rebuilds
    its injector from the picklable :class:`FaultConfig`, so the seeded
    fault RNG streams — and therefore every aggregate — are identical to a
    serial run.
    """
    from repro.experiments import parallel

    settings = settings or ExperimentSettings.from_env()
    config = cache.config if cache is not None else SystemConfig()
    rates = tuple(fault_rates)
    if not rates:
        raise ExperimentError("fault_rates must be non-empty")
    degradation: Dict[Tuple[str, float], float] = {}
    goodput: Dict[Tuple[str, float], float] = {}
    mttr: Dict[Tuple[str, float], float] = {}
    work_lost: Dict[Tuple[str, float], float] = {}
    fault_counts: Dict[Tuple[str, float], int] = {}
    sequences = [
        scenario_sequence(workload, seed, settings.num_events)
        for seed in settings.seeds()
    ]
    seeds = settings.seeds()
    tasks = [
        (
            scheduler,
            sequence,
            scenario.fault_config(rate, seed=seeds[index]),
            config,
        )
        for scheduler in schedulers
        for rate in rates
        for index, sequence in enumerate(sequences)
    ]
    cells = iter(
        parallel.chaos_cells(tasks, jobs=parallel.resolve_jobs(jobs, cache))
    )
    for scheduler in schedulers:
        reference: List[List[AppResult]] = []
        for rate in rates:
            ratios: List[float] = []
            goodputs: List[float] = []
            recoveries: List[float] = []
            lost = 0.0
            faults = 0
            for index in range(len(sequences)):
                cell = next(cells)
                results = list(cell.results)
                if len(reference) <= index:
                    # First (lowest) rate doubles as this scheduler's
                    # fault-free-or-mildest reference for the curves.
                    reference.append(results)
                ratios.append(
                    degradation_factor(reference[index], results)
                )
                goodputs.append(cell.goodput_items_per_s)
                recoveries.extend(cell.recovery_times_ms)
                lost += cell.work_lost_ms
                faults += cell.total_faults
            key = (scheduler, rate)
            degradation[key] = sum(ratios) / len(ratios)
            goodput[key] = sum(goodputs) / len(goodputs)
            mttr[key] = (
                sum(recoveries) / len(recoveries)
                if recoveries else float("nan")
            )
            work_lost[key] = lost
            fault_counts[key] = faults
    return FaultStudyResult(
        scenario=scenario.name,
        workload=workload.name,
        fault_rates=rates,
        schedulers=tuple(schedulers),
        degradation=degradation,
        goodput=goodput,
        mttr=mttr,
        work_lost=work_lost,
        fault_counts=fault_counts,
    )


def format_result(result: FaultStudyResult) -> str:
    """Degradation-curve table plus reliability table at the top rate."""
    blocks = []
    headers = ["scheduler"] + [f"rate {r:g}" for r in result.fault_rates]
    rows: List[List[object]] = []
    for scheduler in result.schedulers:
        rows.append([scheduler] + list(result.curve(scheduler)))
    blocks.append(
        f"Extension: response degradation under '{result.scenario}' faults "
        f"({result.workload} workload; 1.00 = fault-free response)\n"
        + format_table(headers, rows)
    )

    top = result.fault_rates[-1]
    headers = ["scheduler", "goodput (items/s)", "MTTR (ms)",
               "work lost (ms)", "faults"]
    rows = []
    for scheduler in result.schedulers:
        key = (scheduler, top)
        mttr = result.mttr[key]
        rows.append([
            scheduler,
            result.goodput[key],
            "n/a" if math.isnan(mttr) else f"{mttr:.1f}",
            result.work_lost[key],
            result.fault_counts[key],
        ])
    blocks.append(
        f"Extension: reliability at fault rate {top:g}\n"
        + format_table(headers, rows)
    )
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# `repro chaos` CLI entry point
# ---------------------------------------------------------------------------
def chaos_report(
    scenario_name: str = "mixed",
    fault_rate: float = 0.05,
    seed: int = 1,
    num_events: int = 20,
    workload_name: str = "stress",
    schedulers: Sequence[str] = ALL_SCHEDULERS,
) -> str:
    """One-shot chaos drill: every scheduler, one sequence, one fault rate.

    Reports goodput, MTTR, work lost and degradation versus the
    fault-free run of the same stimuli (so ``--fault-rate 0`` reads as
    exactly 1.00 degradation with zero faults).
    """
    scenario = chaos_scenario(scenario_name)
    workload = next(
        (s for s in SCENARIOS if s.name == workload_name), None
    )
    if workload is None:
        raise ExperimentError(
            f"unknown workload scenario {workload_name!r}; known: "
            f"{sorted(s.name for s in SCENARIOS)}"
        )
    sequence = scenario_sequence(workload, seed, num_events)
    fault_config = scenario.fault_config(fault_rate, seed=seed)
    headers = ["scheduler", "response deg.", "goodput (items/s)",
               "MTTR (ms)", "work lost (ms)", "faults"]
    rows: List[List[object]] = []
    for scheduler in schedulers:
        clean_results, _, _ = run_chaos_sequence(scheduler, sequence)
        results, trace, stats = run_chaos_sequence(
            scheduler, sequence, fault_config
        )
        mttr_values = recovery_times_ms(trace)
        mttr = (
            f"{sum(mttr_values) / len(mttr_values):.1f}"
            if mttr_values else "n/a"
        )
        rows.append([
            scheduler,
            degradation_factor(clean_results, results),
            goodput_items_per_s(trace),
            mttr,
            work_lost_ms(trace),
            stats.total_faults,
        ])
    title = (
        f"Chaos drill: scenario={scenario.name} fault_rate={fault_rate:g} "
        f"workload={workload.name} seed={seed} events={num_events}"
    )
    return title + "\n" + format_table(headers, rows)
