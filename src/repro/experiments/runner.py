"""Shared experiment infrastructure: settings, run cache, table rendering.

The paper evaluates each algorithm on the same 10 distinct 20-event
sequences. Those are the defaults here; ``ExperimentSettings`` honours the
``REPRO_SEQUENCES`` and ``REPRO_EVENTS`` environment variables so the
benchmark harness can be scaled down for quick runs or up for full
fidelity without code changes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.results import AppResult
from repro.schedulers.registry import make_scheduler
from repro.workload.events import EventSequence

#: Paper defaults: 10 distinct sequences of 20 events each.
DEFAULT_SEQUENCES = 10
DEFAULT_EVENTS = 20

#: Base seed for sequence generation; sequence ``i`` uses ``BASE_SEED + i``.
BASE_SEED = 20230617  # ISCA'23 started June 17 2023


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ExperimentError(f"{name} must be an integer, got {raw!r}")
    if value < 1:
        raise ExperimentError(f"{name} must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class ExperimentSettings:
    """How many sequences/events each experiment runs."""

    num_sequences: int = DEFAULT_SEQUENCES
    num_events: int = DEFAULT_EVENTS
    base_seed: int = BASE_SEED

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        """Settings honouring REPRO_SEQUENCES / REPRO_EVENTS overrides."""
        return cls(
            num_sequences=_env_int("REPRO_SEQUENCES", DEFAULT_SEQUENCES),
            num_events=_env_int("REPRO_EVENTS", DEFAULT_EVENTS),
        )

    def seeds(self) -> List[int]:
        """Seed per sequence."""
        return [self.base_seed + i for i in range(self.num_sequences)]


def run_sequence(
    scheduler_name: str,
    sequence: EventSequence,
    config: Optional[SystemConfig] = None,
) -> List[AppResult]:
    """Run one event sequence under one scheduler to completion."""
    hypervisor = Hypervisor(make_scheduler(scheduler_name), config=config)
    for request in sequence.to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    if not hypervisor.all_retired:
        raise ExperimentError(
            f"scheduler {scheduler_name!r} failed to retire all applications "
            f"on sequence {sequence.label!r} "
            f"({len(hypervisor.retired)}/{len(hypervisor.apps)})"
        )
    return hypervisor.results()


class RunCache:
    """Memoizes simulation runs per (scheduler, stimulus, platform).

    Figures 5-8 all consume the same stimuli; within one harness instance
    each (scheduler, sequence) pair simulates exactly once.
    """

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config or SystemConfig()
        self._runs: Dict[Tuple[str, str], List[AppResult]] = {}
        self.simulations = 0

    def _key(self, scheduler_name: str, sequence: EventSequence) -> Tuple[str, str]:
        if not sequence.label:
            raise ExperimentError(
                "cached runs need labelled sequences (set EventSequence.label)"
            )
        return (scheduler_name, sequence.label)

    def results(
        self, scheduler_name: str, sequence: EventSequence
    ) -> List[AppResult]:
        """Results for one run, simulating on first request."""
        key = self._key(scheduler_name, sequence)
        cached = self._runs.get(key)
        if cached is None:
            cached = run_sequence(scheduler_name, sequence, self.config)
            self._runs[key] = cached
            self.simulations += 1
        return cached

    def combined(
        self, scheduler_name: str, sequences: Sequence[EventSequence]
    ) -> List[AppResult]:
        """Concatenated results across several sequences (stable order)."""
        combined: List[AppResult] = []
        for sequence in sequences:
            combined.extend(self.results(scheduler_name, sequence))
        return combined


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [
                f"{value:.2f}" if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
